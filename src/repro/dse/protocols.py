"""Formal evaluator protocols — the contracts the DSE layer is typed against.

Historically every search and campaign component took the concrete
:class:`~repro.dse.evaluator.ArchitectureEvaluator`, even though all any
of them ever call is ``evaluate(config, max_cycles=...)``. That implicit
duck type is now written down:

* :class:`Evaluator` — anything that can evaluate one configuration.
  Satisfied by :class:`~repro.dse.evaluator.ArchitectureEvaluator`,
  :class:`~repro.dse.campaign.CampaignRunner`,
  :class:`~repro.dse.campaign.PoisonedEvaluator`, the
  :class:`~repro.dse.parallel.ParallelCampaignRunner`, and any test stub
  with the right method.
* :class:`BatchEvaluator` — an evaluator that can additionally evaluate a
  *batch* of configurations at once (typically concurrently). Explorers
  probe for this with :func:`supports_batching` and, when present, expand
  a whole search frontier in one call instead of one configuration at a
  time.

Both protocols are ``runtime_checkable``, so ``isinstance(x, Evaluator)``
works, with the usual caveat that only method *presence* is checked.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:  # avoid a module cycle with repro.dse.evaluator
    from repro.dse.config import ArchitectureConfiguration
    from repro.dse.evaluator import EvaluationResult


@runtime_checkable
class Evaluator(Protocol):
    """Evaluates one architecture configuration.

    ``max_cycles`` caps the simulation; exhausting it raises
    :class:`~repro.errors.CycleBudgetError`. Implementations signal a
    failed evaluation by raising a
    :class:`~repro.errors.SimulationError` subclass; searches treat that
    as a dead end, not a crash.
    """

    def evaluate(self, config: "ArchitectureConfiguration", *,
                 max_cycles: Optional[int] = None) -> "EvaluationResult":
        ...


@runtime_checkable
class BatchEvaluator(Protocol):
    """An :class:`Evaluator` that can also evaluate many configurations
    in one call (typically fanned out over a worker pool).

    ``evaluate_batch`` never raises for an individual configuration: the
    returned list is aligned with the input, with ``None`` standing in
    for each configuration whose evaluation failed.
    """

    def evaluate(self, config: "ArchitectureConfiguration", *,
                 max_cycles: Optional[int] = None) -> "EvaluationResult":
        ...

    def evaluate_batch(self, configs: Sequence["ArchitectureConfiguration"]
                       ) -> List[Optional["EvaluationResult"]]:
        ...


def supports_batching(evaluator: object) -> bool:
    """True when *evaluator* exposes batch evaluation.

    A plain ``isinstance(..., BatchEvaluator)`` is unreliable for
    wrappers with a forwarding ``__getattr__`` (the lookup can succeed
    even though the wrapped evaluator lacks the method), so resolve the
    attribute and require it to be callable.
    """
    return callable(getattr(evaluator, "evaluate_batch", None))
