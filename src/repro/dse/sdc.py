"""SDC-sweep campaigns: datapath vulnerability across a design space.

The reliability counterpart of the performance sweeps: for every
architecture configuration, run many seeded soft-error injection trials
(one per ``(site, trial index)``), classify each against the
fault-free golden run with the :class:`~repro.verify.DifferentialOracle`,
and distil a per-configuration vulnerability row — SDC rate, detection
coverage, mean faults-to-failure.

Everything hard-won by the performance campaigns is reused, not
reinvented:

* **journal + resume** — every classified trial is appended to the same
  fsync'd JSONL journal format (:func:`~repro.dse.campaign.load_journal`
  parses it unchanged), so a killed sweep resumes without repeating a
  single simulation and its final ``--output`` JSON is byte-identical;
* **parallelism** — trials fan out over a process pool; each worker
  keeps a per-process oracle cache so the golden reference for a
  configuration is simulated once per worker, not once per trial. A
  broken pool degrades to in-parent evaluation of the remaining trials
  instead of aborting the sweep;
* **determinism** — trial seeds derive from
  :func:`~repro.faults.seeds.derive_seed`\\ ``(seed, config_key, site,
  index)``, so results do not depend on job count, completion order, or
  which trials were resumed from the journal;
* **observability** — injection and outcome counters are published in
  the parent at persist time only, so sequential, parallel, and resumed
  sweeps account identically.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import BrokenExecutor
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.dse.campaign import (
    JOURNAL_VERSION,
    _record_line,
    config_from_dict,
    config_key,
    config_to_dict,
    load_journal,
    write_atomic,
)
from repro.dse.config import ArchitectureConfiguration
from repro.dse.parallel import default_start_method
from repro.errors import CampaignError, ReproError
from repro.estimation.lookup import estimate_protection_overhead
from repro.faults.datapath import FAULT_SITES
from repro.faults.memory import MEMORY_SITES
from repro.faults.seeds import derive_seed
from repro.obs import get_registry
from repro.routing import TABLE_KINDS, make_table
from repro.routing.entry import RouteEntry
from repro.routing.protected import PROTECTION_MODES
from repro.verify.oracle import (
    OUTCOMES,
    DifferentialOracle,
    MemoryDifferentialOracle,
)
from repro.workload import generate_routes, worst_case_workload
from repro.workload.fib import synthesize_fib, zipf_addresses

DEFAULT_TRIALS = 8
DEFAULT_RATE = 0.002

DEFAULT_MEMORY_LOOKUPS = 200
DEFAULT_MEMORY_FLIPS = 1
DEFAULT_FIB_SEED = 2026
DEFAULT_TRAFFIC_SEED = 77


# -- trials ------------------------------------------------------------------------


@dataclass(frozen=True)
class SdcTrial:
    """One scheduled injection trial."""

    config: ArchitectureConfiguration
    site: str
    index: int
    seed: int
    rate: float
    max_faults: Optional[int]

    @property
    def key(self) -> str:
        """Canonical journal identity of this trial."""
        return json.dumps({
            "config": config_key(self.config),
            "site": self.site,
            "trial": self.index,
            "seed": self.seed,
            "rate": self.rate,
            "max_faults": self.max_faults,
        }, sort_keys=True, separators=(",", ":"))


def plan_trials(configs: Sequence[ArchitectureConfiguration],
                sites: Sequence[str], trials: int, rate: float,
                seed: int, max_faults: Optional[int]) -> List[SdcTrial]:
    """Deterministic trial enumeration: config-major, then site, then
    index. Seeds derive from the *identity* of the trial, never its
    position in the plan, so adding a site or config cannot re-roll any
    other trial."""
    plan: List[SdcTrial] = []
    for config in configs:
        key = config_key(config)
        for site in sites:
            for index in range(trials):
                plan.append(SdcTrial(
                    config=config, site=site, index=index,
                    seed=derive_seed(seed, key, site, index),
                    rate=rate, max_faults=max_faults))
    return plan


def _classify_trial(oracle: DifferentialOracle,
                    trial: SdcTrial) -> Dict[str, object]:
    """One trial -> one journal record (never raises for ReproError)."""
    base: Dict[str, object] = {
        "v": JOURNAL_VERSION,
        "key": trial.key,
        "config": config_to_dict(trial.config),
        "site": trial.site,
        "trial": trial.index,
        "seed": trial.seed,
        "rate": trial.rate,
        "max_faults": trial.max_faults,
    }
    try:
        outcome = oracle.classify(
            seed=trial.seed, rate=trial.rate, sites=(trial.site,),
            max_faults=trial.max_faults)
    except ReproError as exc:
        base["status"] = "failed"
        base["error"] = type(exc).__name__
        base["message"] = str(exc)
        return base
    base["status"] = "ok"
    base["outcome"] = outcome.to_dict()
    return base


# -- worker side -------------------------------------------------------------------

_worker_workload: Optional[Tuple[list, list, Optional[int],
                                 Optional[str]]] = None
_worker_oracles: Dict[str, DifferentialOracle] = {}


def _init_sdc_worker(routes, packets, max_cycles,
                     backend: Optional[str] = None) -> None:
    global _worker_workload
    _worker_workload = (routes, packets, max_cycles, backend)
    _worker_oracles.clear()


def _classify_chunk(payloads: List[Dict[str, object]]
                    ) -> List[Dict[str, object]]:
    """Classify a chunk of trial payloads in a pool worker.

    The per-process oracle cache means one golden simulation per
    configuration per worker, amortised over every trial in its chunks.
    """
    routes, packets, max_cycles, backend = _worker_workload
    records = []
    for payload in payloads:
        config = ArchitectureConfiguration(**payload["config"])
        trial = SdcTrial(
            config=config, site=payload["site"], index=payload["trial"],
            seed=payload["seed"], rate=payload["rate"],
            max_faults=payload["max_faults"])
        cache_key = config_key(config)
        oracle = _worker_oracles.get(cache_key)
        if oracle is None:
            oracle = DifferentialOracle(config, routes, packets,
                                        max_cycles=max_cycles,
                                        backend=backend)
            _worker_oracles[cache_key] = oracle
        records.append(_classify_trial(oracle, trial))
    return records


# -- results -----------------------------------------------------------------------


def vulnerability_row(config: ArchitectureConfiguration,
                      records: Sequence[Dict[str, object]]
                      ) -> Dict[str, object]:
    """Distil one configuration's trial records into its table row."""
    counts = {outcome: 0 for outcome in OUTCOMES}
    by_site: Dict[str, Dict[str, int]] = {}
    failed = 0
    faults_total = 0
    failure_faults: List[int] = []
    for record in records:
        if record["status"] != "ok":
            failed += 1
            continue
        outcome = record["outcome"]
        klass = outcome["outcome"]
        counts[klass] += 1
        faults = outcome["faults_injected"]
        faults_total += faults
        site = record["site"]
        site_counts = by_site.setdefault(
            site, {o: 0 for o in OUTCOMES})
        site_counts[klass] += 1
        if klass != "masked":
            failure_faults.append(faults)
    ok = sum(counts.values())
    not_masked = ok - counts["masked"]
    caught = counts["detected"] + counts["crash"] + counts["hang"]
    return {
        "table": config.table_kind,
        "config": config.label(),
        "trials": ok,
        "failed": failed,
        "outcomes": dict(counts),
        "by_site": {site: dict(site_counts)
                    for site, site_counts in sorted(by_site.items())},
        "faults_injected": faults_total,
        "sdc_rate": counts["sdc"] / ok if ok else None,
        "detection_coverage": caught / not_masked if not_masked else None,
        "mean_faults_to_failure":
            sum(failure_faults) / len(failure_faults)
            if failure_faults else None,
    }


@dataclass
class SdcSweepResult:
    """Outcome of one (possibly resumed) SDC sweep."""

    records: List[Dict[str, object]]  # plan order, one per trial
    rows: List[Dict[str, object]]     # one per configuration
    sites: Tuple[str, ...]
    trials_per_site: int
    rate: float
    seed: int
    resumed: int = 0
    discarded_records: int = 0

    @property
    def outcome_totals(self) -> Dict[str, int]:
        totals = {outcome: 0 for outcome in OUTCOMES}
        for row in self.rows:
            for outcome, count in row["outcomes"].items():
                totals[outcome] += count
        return totals

    def render(self) -> str:
        """Deterministic text artifact — byte-identical whether the
        sweep ran through, ran parallel, or was killed and resumed."""
        from repro.reporting.reliability import render_vulnerability_table
        return render_vulnerability_table(self)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view. Deliberately free of resume/journal
        bookkeeping (``resumed``, ``discarded_records`` stay on the
        object): the saved document must be byte-identical whether the
        sweep ran through, ran parallel, or was killed and resumed."""
        return {
            "sites": list(self.sites),
            "trials_per_site": self.trials_per_site,
            "rate": self.rate,
            "seed": self.seed,
            "rows": list(self.rows),
            "outcome_totals": self.outcome_totals,
            "records": list(self.records),
        }

    def write_output(self, path: str) -> None:
        write_atomic(path, self.render() + "\n")


# -- the runner --------------------------------------------------------------------


class SdcSweepRunner:
    """Journal-backed, optionally parallel SDC-sweep driver.

    *routes*/*packets* default to the same deterministic workload the
    performance evaluator uses (``generate_routes`` +
    ``worst_case_workload``), so vulnerability numbers are measured on
    exactly the workload the performance numbers were.
    """

    def __init__(self,
                 routes: Optional[Sequence[RouteEntry]] = None,
                 packets: Optional[Sequence[Tuple[int, bytes]]] = None,
                 entries: int = 20,
                 packet_batch: int = 4,
                 sites: Optional[Sequence[str]] = None,
                 trials: int = DEFAULT_TRIALS,
                 rate: float = DEFAULT_RATE,
                 seed: int = 0,
                 max_faults: Optional[int] = None,
                 max_cycles: Optional[int] = None,
                 jobs: int = 1,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None,
                 backend: Optional[str] = None):
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        if trials < 1:
            raise CampaignError(f"trials must be >= 1, got {trials}")
        chosen = tuple(sites) if sites is not None else FAULT_SITES
        unknown = sorted(set(chosen) - set(FAULT_SITES))
        if unknown:
            raise CampaignError(
                f"unknown fault sites {unknown}; "
                f"valid sites are {sorted(FAULT_SITES)}")
        self.routes = list(routes) if routes is not None \
            else generate_routes(entries)
        self.packets = list(packets) if packets is not None \
            else worst_case_workload(self.routes, packet_batch)
        self.sites = tuple(s for s in FAULT_SITES if s in chosen)
        self.trials = trials
        self.rate = rate
        self.seed = seed
        self.max_faults = max_faults
        self.max_cycles = max_cycles
        #: simulation engine, inherited by every pool worker
        self.backend = backend
        self.jobs = jobs
        self.journal_path = journal_path
        self.chunk_size = chunk_size
        self.start_method = start_method or default_start_method()
        self.resumed = 0
        self.discarded_records = 0
        self._records: Dict[str, Dict[str, object]] = {}
        self._replayed_keys: set = set()
        self._oracles: Dict[str, DifferentialOracle] = {}
        if resume:
            if journal_path is None:
                raise CampaignError("resume requested without a journal")
            if os.path.exists(journal_path):
                records, discarded = load_journal(journal_path)
                self.discarded_records = discarded
                for record in records:
                    self._records[record["key"]] = record
                self._replayed_keys = set(self._records)
                if discarded:
                    write_atomic(journal_path, "".join(
                        _record_line(r) + "\n" for r in records))
        elif journal_path is not None and os.path.exists(journal_path) \
                and os.path.getsize(journal_path) > 0:
            raise CampaignError(
                f"journal {journal_path!r} already exists; resume the "
                f"sweep (resume=True / --resume) or remove the file")

    # -- sweep driver -------------------------------------------------------------

    def run(self, configs: Sequence[ArchitectureConfiguration]
            ) -> SdcSweepResult:
        """Sweep every ``config x site x trial``; never raises for a
        configuration whose golden run fails (those trials are recorded
        ``failed`` and excluded from the rates)."""
        registry = get_registry()
        plan = plan_trials(configs, self.sites, self.trials, self.rate,
                           self.seed, self.max_faults)
        pending: List[SdcTrial] = []
        for trial in plan:
            key = trial.key
            if key in self._records:
                if key in self._replayed_keys:
                    self._replayed_keys.discard(key)
                    self.resumed += 1
                    if registry.enabled:
                        registry.counter(
                            "sdc_resumed_total",
                            "injection trials replayed from a journal"
                        ).inc()
            else:
                pending.append(trial)
        if pending and self.jobs > 1:
            pending = self._run_pool(pending)
        for trial in pending:
            if trial.key not in self._records:
                self._persist(trial.key, _classify_trial(
                    self._oracle(trial.config), trial))

        ordered = [self._records[trial.key] for trial in plan]
        rows = []
        offset = 0
        per_config = len(self.sites) * self.trials
        for config in configs:
            rows.append(vulnerability_row(
                config, ordered[offset:offset + per_config]))
            offset += per_config
        return SdcSweepResult(
            records=ordered, rows=rows, sites=self.sites,
            trials_per_site=self.trials, rate=self.rate, seed=self.seed,
            resumed=self.resumed,
            discarded_records=self.discarded_records)

    # -- internals ----------------------------------------------------------------

    def _oracle(self, config: ArchitectureConfiguration
                ) -> DifferentialOracle:
        key = config_key(config)
        oracle = self._oracles.get(key)
        if oracle is None:
            oracle = DifferentialOracle(config, self.routes, self.packets,
                                        max_cycles=self.max_cycles,
                                        backend=self.backend)
            self._oracles[key] = oracle
        return oracle

    def _run_pool(self, pending: List[SdcTrial]) -> List[SdcTrial]:
        """Fan *pending* out over a process pool; returns the trials the
        pool never finished (evaluated in-parent by the caller)."""
        chunks = self._chunked(pending)
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_init_sdc_worker,
            initargs=(self.routes, self.packets, self.max_cycles,
                      self.backend))
        try:
            futures = []
            for chunk in chunks:
                payloads = [{
                    "config": config_to_dict(trial.config),
                    "site": trial.site, "trial": trial.index,
                    "seed": trial.seed, "rate": trial.rate,
                    "max_faults": trial.max_faults,
                } for trial in chunk]
                futures.append((pool.submit(_classify_chunk, payloads),
                                chunk))
            for future, chunk in futures:
                try:
                    records = future.result()
                except BrokenExecutor:
                    # pool died: the caller classifies what's left
                    # in-process — slower, never wrong
                    break
                for trial, record in zip(chunk, records):
                    self._persist(trial.key, record)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [trial for trial in pending
                if trial.key not in self._records]

    def _chunked(self, pending: Sequence[SdcTrial]) -> List[List[SdcTrial]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(pending) // (self.jobs * 4))
        return [list(pending[i:i + size])
                for i in range(0, len(pending), size)]

    def _persist(self, key: str,
                 record: Dict[str, object]) -> Dict[str, object]:
        self._records[key] = record
        self._publish_record_metrics(record)
        if self.journal_path is not None:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(_record_line(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return record

    @staticmethod
    def _publish_record_metrics(record: Dict[str, object]) -> None:
        """Injection/outcome counters for one fresh trial record.

        Published in the parent only — pool workers never touch the
        registry — so sequential and parallel sweeps account
        identically and a resumed trial is never double-counted.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "sdc_trials_total",
            "classified injection trials by status", ("status",)
        ).inc(status=record["status"])
        if record["status"] != "ok":
            return
        outcome = record["outcome"]
        registry.counter(
            "sdc_outcomes_total",
            "injection trials by oracle classification", ("outcome",)
        ).inc(outcome=outcome["outcome"])
        injections = registry.counter(
            "sdc_injections_total",
            "datapath faults actually applied", ("site",))
        for site, count in sorted(outcome["faults_by_site"].items()):
            injections.inc(count, site=site)


def run_sdc_sweep(configs: Sequence[ArchitectureConfiguration],
                  **kwargs) -> SdcSweepResult:
    """One-shot convenience over :class:`SdcSweepRunner`.

    Keyword arguments are the runner's; ``journal_path``/``resume``
    and ``jobs`` behave exactly as in the performance campaigns.
    """
    return SdcSweepRunner(**kwargs).run(configs)


# ===================================================================================
# Memory-state (table FIB) vulnerability sweep
# ===================================================================================
#
# The datapath sweep above strikes bits *in flight*; this sweep strikes
# bits *at rest* — the stored FIB of any routing structure at any scale,
# under any protection mode — using the MemoryDifferentialOracle. Same
# journal format, same resume semantics, same parent-side metrics
# discipline, same sequential == parallel == resumed byte-identity.


def memory_sites_for(kind: str) -> Tuple[str, ...]:
    """The memory sites a table kind physically has."""
    return make_table(kind, capacity=1).memory_sites()


@dataclass(frozen=True)
class MemoryTrial:
    """One scheduled table-state injection trial."""

    kind: str
    protection: str
    site: str
    index: int
    seed: int
    flips: int

    @property
    def key(self) -> str:
        """Canonical journal identity of this trial."""
        return json.dumps({
            "mode": "memory",
            "kind": self.kind,
            "protection": self.protection,
            "site": self.site,
            "trial": self.index,
            "seed": self.seed,
            "flips": self.flips,
        }, sort_keys=True, separators=(",", ":"))


def plan_memory_trials(kinds: Sequence[str], protections: Sequence[str],
                       trials: int, flips: int,
                       seed: int) -> List[MemoryTrial]:
    """Deterministic enumeration: kind-major, then protection, then
    site, then index. Seeds derive from the trial's identity, never its
    position, so adding a kind or protection re-rolls nothing."""
    plan: List[MemoryTrial] = []
    for kind in kinds:
        for protection in protections:
            for site in memory_sites_for(kind):
                for index in range(trials):
                    plan.append(MemoryTrial(
                        kind=kind, protection=protection, site=site,
                        index=index,
                        seed=derive_seed(seed, "memory", kind, protection,
                                         site, index),
                        flips=flips))
    return plan


def _classify_memory_trial(oracle: MemoryDifferentialOracle,
                           trial: MemoryTrial) -> Dict[str, object]:
    """One trial -> one journal record (never raises for ReproError)."""
    base: Dict[str, object] = {
        "v": JOURNAL_VERSION,
        "key": trial.key,
        "mode": "memory",
        "kind": trial.kind,
        "protection": trial.protection,
        "site": trial.site,
        "trial": trial.index,
        "seed": trial.seed,
        "flips": trial.flips,
    }
    try:
        outcome = oracle.classify(seed=trial.seed, site=trial.site,
                                  flips=trial.flips)
    except ReproError as exc:
        base["status"] = "failed"
        base["error"] = type(exc).__name__
        base["message"] = str(exc)
        return base
    base["status"] = "ok"
    base["outcome"] = outcome.to_dict()
    return base


# -- worker side -------------------------------------------------------------------

_memory_worker_workload: Optional[Tuple[int, int, int, int]] = None
_memory_worker_oracles: Dict[Tuple[str, str], MemoryDifferentialOracle] = {}


def _init_memory_worker(prefixes: int, fib_seed: int, lookups: int,
                        traffic_seed: int) -> None:
    # Workers re-synthesize the FIB deterministically from the scalar
    # parameters instead of shipping ~N route objects per process.
    global _memory_worker_workload
    _memory_worker_workload = (prefixes, fib_seed, lookups, traffic_seed)
    _memory_worker_oracles.clear()


def _memory_workload(prefixes: int, fib_seed: int, lookups: int,
                     traffic_seed: int):
    routes = synthesize_fib(prefixes, seed=fib_seed)
    addresses = zipf_addresses(routes, lookups, seed=traffic_seed)
    return routes, addresses


def _classify_memory_chunk(payloads: List[Dict[str, object]]
                           ) -> List[Dict[str, object]]:
    """Classify a chunk of memory-trial payloads in a pool worker.

    The per-process oracle cache means one clean golden build per
    (kind, protection) cell per worker."""
    prefixes, fib_seed, lookups, traffic_seed = _memory_worker_workload
    routes, addresses = _memory_workload(prefixes, fib_seed, lookups,
                                         traffic_seed)
    records = []
    for payload in payloads:
        trial = MemoryTrial(
            kind=payload["kind"], protection=payload["protection"],
            site=payload["site"], index=payload["trial"],
            seed=payload["seed"], flips=payload["flips"])
        cache_key = (trial.kind, trial.protection)
        oracle = _memory_worker_oracles.get(cache_key)
        if oracle is None:
            oracle = MemoryDifferentialOracle(
                trial.kind, trial.protection, routes, addresses)
            _memory_worker_oracles[cache_key] = oracle
        records.append(_classify_memory_trial(oracle, trial))
    return records


# -- results -----------------------------------------------------------------------


def memory_vulnerability_row(kind: str, protection: str,
                             records: Sequence[Dict[str, object]],
                             protection_cost: Optional[Dict[str, object]]
                             ) -> Dict[str, object]:
    """Distil one (kind, protection) cell into its table row."""
    counts = {outcome: 0 for outcome in OUTCOMES}
    by_site: Dict[str, Dict[str, int]] = {}
    failed = 0
    flips_total = 0
    for record in records:
        if record["status"] != "ok":
            failed += 1
            continue
        outcome = record["outcome"]
        klass = outcome["outcome"]
        counts[klass] += 1
        flips_total += outcome["faults_injected"]
        site_counts = by_site.setdefault(
            record["site"], {o: 0 for o in OUTCOMES})
        site_counts[klass] += 1
    ok = sum(counts.values())
    not_masked = ok - counts["masked"]
    caught = counts["detected"] + counts["crash"] + counts["hang"]
    return {
        "kind": kind,
        "protection": protection,
        "trials": ok,
        "failed": failed,
        "outcomes": dict(counts),
        # canonical physical order, not alphabetical, so cross-kind
        # rows list their sites the way MEMORY_SITES declares them
        "by_site": {site: dict(by_site[site])
                    for site in MEMORY_SITES if site in by_site},
        "flips_injected": flips_total,
        "sdc_rate": counts["sdc"] / ok if ok else None,
        "detection_coverage": caught / not_masked if not_masked else None,
        "protection_cost": protection_cost,
    }


@dataclass
class MemorySweepResult:
    """Outcome of one (possibly resumed) table-state sweep."""

    records: List[Dict[str, object]]  # plan order, one per trial
    rows: List[Dict[str, object]]     # one per (kind, protection) cell
    kinds: Tuple[str, ...]
    protections: Tuple[str, ...]
    trials_per_site: int
    flips: int
    seed: int
    prefix_count: int
    lookups: int
    fib_seed: int
    resumed: int = 0
    discarded_records: int = 0

    @property
    def outcome_totals(self) -> Dict[str, int]:
        totals = {outcome: 0 for outcome in OUTCOMES}
        for row in self.rows:
            for outcome, count in row["outcomes"].items():
                totals[outcome] += count
        return totals

    def render(self) -> str:
        """Deterministic text artifact — byte-identical whether the
        sweep ran through, ran parallel, or was killed and resumed."""
        from repro.reporting.reliability import (
            render_memory_vulnerability_table,
        )
        return render_memory_vulnerability_table(self)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view, free of resume/journal bookkeeping (the
        saved document must be byte-identical whether the sweep ran
        through, ran parallel, or was killed and resumed)."""
        return {
            "mode": "memory",
            "kinds": list(self.kinds),
            "protections": list(self.protections),
            "trials_per_site": self.trials_per_site,
            "flips": self.flips,
            "seed": self.seed,
            "prefix_count": self.prefix_count,
            "lookups": self.lookups,
            "fib_seed": self.fib_seed,
            "rows": list(self.rows),
            "outcome_totals": self.outcome_totals,
            "records": list(self.records),
        }

    def write_output(self, path: str) -> None:
        write_atomic(path, self.render() + "\n")


# -- the runner --------------------------------------------------------------------


class MemorySweepRunner:
    """Journal-backed, optionally parallel table-state sweep driver."""

    def __init__(self,
                 kinds: Optional[Sequence[str]] = None,
                 protections: Optional[Sequence[str]] = None,
                 prefixes: int = 1000,
                 lookups: int = DEFAULT_MEMORY_LOOKUPS,
                 trials: int = DEFAULT_TRIALS,
                 flips: int = DEFAULT_MEMORY_FLIPS,
                 seed: int = 0,
                 fib_seed: int = DEFAULT_FIB_SEED,
                 traffic_seed: int = DEFAULT_TRAFFIC_SEED,
                 jobs: int = 1,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None):
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        if trials < 1:
            raise CampaignError(f"trials must be >= 1, got {trials}")
        if prefixes < 1:
            raise CampaignError(f"prefixes must be >= 1, got {prefixes}")
        if lookups < 1:
            raise CampaignError(f"lookups must be >= 1, got {lookups}")
        if flips < 1:
            raise CampaignError(f"flips must be >= 1, got {flips}")
        chosen_kinds = tuple(kinds) if kinds is not None \
            else tuple(TABLE_KINDS)
        unknown = sorted(set(chosen_kinds) - set(TABLE_KINDS))
        if unknown:
            raise CampaignError(
                f"unknown table kinds {unknown}; "
                f"valid kinds are {sorted(TABLE_KINDS)}")
        chosen_protections = tuple(protections) if protections is not None \
            else PROTECTION_MODES
        unknown = sorted(set(chosen_protections) - set(PROTECTION_MODES))
        if unknown:
            raise CampaignError(
                f"unknown protection modes {unknown}; "
                f"valid modes are {sorted(PROTECTION_MODES)}")
        self.kinds = tuple(k for k in TABLE_KINDS if k in chosen_kinds)
        self.protections = tuple(p for p in PROTECTION_MODES
                                 if p in chosen_protections)
        self.prefixes = prefixes
        self.lookups = lookups
        self.trials = trials
        self.flips = flips
        self.seed = seed
        self.fib_seed = fib_seed
        self.traffic_seed = traffic_seed
        self.jobs = jobs
        self.journal_path = journal_path
        self.chunk_size = chunk_size
        self.start_method = start_method or default_start_method()
        self.resumed = 0
        self.discarded_records = 0
        self._records: Dict[str, Dict[str, object]] = {}
        self._replayed_keys: set = set()
        self._oracles: Dict[Tuple[str, str], MemoryDifferentialOracle] = {}
        self._workload: Optional[tuple] = None
        if resume:
            if journal_path is None:
                raise CampaignError("resume requested without a journal")
            if os.path.exists(journal_path):
                records, discarded = load_journal(journal_path)
                self.discarded_records = discarded
                for record in records:
                    self._records[record["key"]] = record
                self._replayed_keys = set(self._records)
                if discarded:
                    write_atomic(journal_path, "".join(
                        _record_line(r) + "\n" for r in records))
        elif journal_path is not None and os.path.exists(journal_path) \
                and os.path.getsize(journal_path) > 0:
            raise CampaignError(
                f"journal {journal_path!r} already exists; resume the "
                f"sweep (resume=True / --resume) or remove the file")

    # -- sweep driver -------------------------------------------------------------

    def run(self) -> MemorySweepResult:
        """Sweep every ``kind x protection x site x trial``."""
        registry = get_registry()
        plan = plan_memory_trials(self.kinds, self.protections,
                                  self.trials, self.flips, self.seed)
        pending: List[MemoryTrial] = []
        for trial in plan:
            key = trial.key
            if key in self._records:
                if key in self._replayed_keys:
                    self._replayed_keys.discard(key)
                    self.resumed += 1
                    if registry.enabled:
                        registry.counter(
                            "sdc_resumed_total",
                            "injection trials replayed from a journal"
                        ).inc()
            else:
                pending.append(trial)
        if pending and self.jobs > 1:
            pending = self._run_pool(pending)
        for trial in pending:
            if trial.key not in self._records:
                self._persist(trial.key, _classify_memory_trial(
                    self._oracle(trial.kind, trial.protection), trial))

        ordered = [self._records[trial.key] for trial in plan]
        rows = []
        offset = 0
        for kind in self.kinds:
            per_cell = len(memory_sites_for(kind)) * self.trials
            for protection in self.protections:
                rows.append(memory_vulnerability_row(
                    kind, protection,
                    ordered[offset:offset + per_cell],
                    self._protection_cost(kind, protection)))
                offset += per_cell
        return MemorySweepResult(
            records=ordered, rows=rows, kinds=self.kinds,
            protections=self.protections, trials_per_site=self.trials,
            flips=self.flips, seed=self.seed, prefix_count=self.prefixes,
            lookups=self.lookups, fib_seed=self.fib_seed,
            resumed=self.resumed,
            discarded_records=self.discarded_records)

    # -- internals ----------------------------------------------------------------

    def _get_workload(self):
        if self._workload is None:
            self._workload = _memory_workload(
                self.prefixes, self.fib_seed, self.lookups,
                self.traffic_seed)
        return self._workload

    def _oracle(self, kind: str,
                protection: str) -> MemoryDifferentialOracle:
        cell = (kind, protection)
        oracle = self._oracles.get(cell)
        if oracle is None:
            routes, addresses = self._get_workload()
            oracle = MemoryDifferentialOracle(
                kind, protection, routes, addresses)
            self._oracles[cell] = oracle
        return oracle

    def _protection_cost(self, kind: str,
                         protection: str) -> Dict[str, object]:
        """Table-1-style pricing of the cell's protection hardware,
        measured on the clean golden build (deterministic, so rows are
        byte-identical across sequential/parallel/resumed runs)."""
        oracle = self._oracle(kind, protection)
        _ = oracle.golden
        return estimate_protection_overhead(
            kind, protection, self.prefixes,
            oracle.mean_lookup_steps, oracle.table_memory_bytes,
            oracle.protected_records if protection != "none" else 0)

    def _run_pool(self, pending: List[MemoryTrial]) -> List[MemoryTrial]:
        """Fan *pending* out over a process pool; returns the trials the
        pool never finished (evaluated in-parent by the caller)."""
        chunks = self._chunked(pending)
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_init_memory_worker,
            initargs=(self.prefixes, self.fib_seed, self.lookups,
                      self.traffic_seed))
        try:
            futures = []
            for chunk in chunks:
                payloads = [{
                    "kind": trial.kind, "protection": trial.protection,
                    "site": trial.site, "trial": trial.index,
                    "seed": trial.seed, "flips": trial.flips,
                } for trial in chunk]
                futures.append((pool.submit(_classify_memory_chunk,
                                            payloads), chunk))
            for future, chunk in futures:
                try:
                    records = future.result()
                except BrokenExecutor:
                    # pool died: the caller classifies what's left
                    # in-process — slower, never wrong
                    break
                for trial, record in zip(chunk, records):
                    self._persist(trial.key, record)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [trial for trial in pending
                if trial.key not in self._records]

    def _chunked(self, pending: Sequence[MemoryTrial]
                 ) -> List[List[MemoryTrial]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(pending) // (self.jobs * 4))
        return [list(pending[i:i + size])
                for i in range(0, len(pending), size)]

    def _persist(self, key: str,
                 record: Dict[str, object]) -> Dict[str, object]:
        self._records[key] = record
        self._publish_record_metrics(record)
        if self.journal_path is not None:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(_record_line(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return record

    @staticmethod
    def _publish_record_metrics(record: Dict[str, object]) -> None:
        """Parent-side, persist-time-only metrics (same discipline as
        the datapath sweep: resumed trials never double-count)."""
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "sdc_trials_total",
            "classified injection trials by status", ("status",)
        ).inc(status=record["status"])
        if record["status"] != "ok":
            return
        outcome = record["outcome"]
        registry.counter(
            "sdc_outcomes_total",
            "injection trials by oracle classification", ("outcome",)
        ).inc(outcome=outcome["outcome"])
        injections = registry.counter(
            "sdc_memory_injections_total",
            "table-state bit flips actually applied",
            ("memory_site", "protection"))
        for site, count in sorted(outcome["faults_by_site"].items()):
            injections.inc(count, memory_site=site,
                           protection=record["protection"])


def run_memory_sweep(**kwargs) -> MemorySweepResult:
    """One-shot convenience over :class:`MemorySweepRunner`."""
    return MemorySweepRunner(**kwargs).run()
