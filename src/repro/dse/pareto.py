"""Pareto analysis and constraint-based selection of evaluated designs.

"In the end we select for synthesis a configuration that is able to
perform the target application within given power and area constraints"
(§1). Feasibility means the required clock fits the library; among
feasible designs, lower area and lower power dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dse.evaluator import EvaluationResult


@dataclass(frozen=True)
class DesignConstraints:
    """Selection limits: a design must fit all of them."""

    max_area_mm2: Optional[float] = None
    max_power_w: Optional[float] = None
    #: count the external CAM chip's power against the budget?
    include_cam_power: bool = True

    def admits(self, result: EvaluationResult) -> bool:
        if not result.feasible or result.area is None or result.power is None:
            return False
        if self.max_area_mm2 is not None and \
                result.area.total_mm2 > self.max_area_mm2:
            return False
        power = (result.power.system_w if self.include_cam_power
                 else result.power.processor_w)
        if self.max_power_w is not None and power > self.max_power_w:
            return False
        return True


def _objectives(result: EvaluationResult,
                include_cam_power: bool) -> "tuple[float, float, float]":
    power = (result.power.system_w if include_cam_power
             else result.power.processor_w)
    return (result.required_clock_hz, result.area.total_mm2, power)


def pareto_front(results: Sequence[EvaluationResult],
                 include_cam_power: bool = True) -> List[EvaluationResult]:
    """Non-dominated feasible designs over (clock, area, power)."""
    feasible = [r for r in results if r.feasible and r.area and r.power]
    front: List[EvaluationResult] = []
    for candidate in feasible:
        c = _objectives(candidate, include_cam_power)
        dominated = False
        for other in feasible:
            if other is candidate:
                continue
            o = _objectives(other, include_cam_power)
            if all(a <= b for a, b in zip(o, c)) and o != c:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


def select_best(results: Sequence[EvaluationResult],
                constraints: Optional[DesignConstraints] = None
                ) -> Optional[EvaluationResult]:
    """The paper's final selection: cheapest admissible design by power,
    area breaking ties."""
    constraints = constraints or DesignConstraints()
    admissible = [r for r in results if constraints.admits(r)]
    if not admissible:
        return None
    return min(admissible, key=lambda r: (
        r.power.system_w if constraints.include_cam_power
        else r.power.processor_w,
        r.area.total_mm2))
