"""Crash-safe, resumable design-space campaigns with fault isolation.

A *campaign* is a long-running sweep of evaluations — an exhaustive
enumeration, a Table 1 regeneration, or a heuristic explorer's walk. The
bare :class:`~repro.dse.evaluator.Evaluator` raises on the first bad
configuration, which forfeits every result a long sweep already earned.
:class:`CampaignRunner` wraps an evaluator with the resilience a
production sweep needs:

* **fault isolation** — a failing configuration becomes a structured
  :class:`EvaluationFailure` record (error class, message, cycle/pc,
  retries, loop signature) instead of an exception that aborts the sweep;
* **cycle-budget deadlines** — each evaluation runs under a cycle budget;
  a budget-class failure (:class:`~repro.errors.CycleBudgetError`) is
  retried once at a larger budget before the configuration is declared
  runaway;
* **quarantine** — configurations that fail deterministically (functional
  mismatches, structural errors, exhausted retries) are quarantined:
  recorded, reported, and never re-evaluated;
* **crash-safe persistence** — every outcome is appended to a JSONL
  journal, fsync'd per record, so a killed campaign loses at most the
  record being written;
* **resume** — replaying the journal skips every already-evaluated
  configuration (a torn trailing record is discarded and the journal is
  compacted via atomic temp-file + rename); a resumed campaign's final
  output is byte-identical to an uninterrupted run's.

Journal records carry the evaluation's *inputs* to the physical
estimation (cycles, utilisation, required clock, program-store footprint),
so replayed results are reconstructed exactly through the same pure
estimation functions rather than approximated.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.config import (
    ArchitectureConfiguration,
    TABLE_KINDS,
    paper_configurations,
)
from repro.dse.evaluator import (
    DEFAULT_EVALUATION_MAX_CYCLES,
    ArchitectureEvaluator,
    EvaluationResult,
)
from repro.dse.protocols import Evaluator
from repro.dse.table1 import PAPER_TABLE1, Table1Row
from repro.errors import (
    CampaignError,
    CycleBudgetError,
    EvaluationFailureError,
    ReproError,
)
from repro.estimation.area import estimate_area
from repro.estimation.power import estimate_power
from repro.obs import get_registry

JOURNAL_VERSION = 1


# -- configuration (de)serialisation -----------------------------------------------


def config_to_dict(config: ArchitectureConfiguration) -> Dict[str, object]:
    return dataclasses.asdict(config)


def config_from_dict(payload: Dict[str, object]) -> ArchitectureConfiguration:
    return ArchitectureConfiguration(**payload)


def config_key(config: ArchitectureConfiguration) -> str:
    """Canonical identity of the *requested* configuration.

    The CAM search latency is normalised away: it is an output of the
    evaluator's clock/latency fixed point, not part of the request.
    """
    payload = config_to_dict(config.with_cam_latency(1))
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- journal I/O -------------------------------------------------------------------


def write_atomic_bytes(path: str, data: bytes) -> None:
    """Write *data* to *path* via fsync'd temp file + atomic rename.

    A crash at any point leaves either the old file or the new one —
    never a torn hybrid, and never a zero-length stub. The containing
    directory is fsync'd too, so the rename itself survives power loss.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".campaign-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def write_atomic(path: str, text: str) -> None:
    """Write *text* to *path* via fsync'd temp file + atomic rename."""
    write_atomic_bytes(path, text.encode("utf-8"))


def _record_line(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def load_journal(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Parse a journal, tolerating a crash-torn *tail* record only.

    Returns ``(records, discarded)``. A crash while appending can tear at
    most the final line, so an unparseable or incomplete **last** line is
    an expected artifact: it is counted in *discarded* (and the
    configuration simply re-evaluated). An invalid line anywhere
    **before** the last one cannot be produced by a crash — it means the
    journal itself is damaged (truncated editor save, disk corruption,
    concurrent writer) and silently re-evaluating would mask data loss,
    so it raises :class:`~repro.errors.CampaignError` naming the bad
    line numbers.
    """
    records: List[Dict[str, object]] = []
    bad_lines: List[Tuple[int, str]] = []
    last_content_line = 0
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    for number, line in enumerate(raw.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        last_content_line = number
        try:
            record = json.loads(line)
        except ValueError:
            bad_lines.append((number, "unparseable JSON"))
            continue
        if not isinstance(record, dict) or record.get("v") != JOURNAL_VERSION \
                or "key" not in record or "status" not in record:
            bad_lines.append((number, "not a journal record"))
            continue
        records.append(record)
    mid_file = [(n, why) for n, why in bad_lines if n != last_content_line]
    if mid_file:
        where = ", ".join(f"line {n}: {why}" for n, why in mid_file)
        raise CampaignError(
            f"journal {path!r} is damaged mid-file ({where}); a crash can "
            f"only tear the final record, so this is journal corruption, "
            f"not a crash artifact — repair or remove the journal before "
            f"resuming")
    return records, len(bad_lines)


# -- structured outcomes -----------------------------------------------------------


@dataclass(frozen=True)
class EvaluationFailure:
    """One configuration's diagnosed, contained failure."""

    config: ArchitectureConfiguration
    error: str  # exception class name
    message: str
    retries: int = 0
    cycle_budget: Optional[int] = None
    cycles_executed: Optional[int] = None
    pc: Optional[int] = None
    loop: Optional[str] = None
    mismatches: Tuple[str, ...] = ()
    quarantined: bool = True

    def render(self) -> str:
        parts = [f"{self.config.describe()}: {self.error}"]
        if self.retries:
            parts.append(f"after {self.retries} retry(ies), final budget "
                         f"{self.cycle_budget} cycles")
        if self.loop:
            parts.append(self.loop)
        if self.mismatches:
            parts.append(f"{len(self.mismatches)} mismatch(es)")
        return "; ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return failure_to_record(self)


@dataclass
class CampaignResult:
    """Outcome of one (possibly resumed) campaign sweep."""

    records: List[Dict[str, object]]  # input order, one per configuration
    results: List[EvaluationResult]
    failures: List[EvaluationFailure]
    resumed: int = 0
    discarded_records: int = 0

    @property
    def quarantined(self) -> List[ArchitectureConfiguration]:
        return [f.config for f in self.failures if f.quarantined]

    def render(self) -> str:
        """The campaign's final artifact: one deterministic text table.

        Rendered purely from journal records, so a resumed campaign
        reproduces an uninterrupted run byte for byte.
        """
        from repro.reporting.tables import render_rows
        rows: List[List[object]] = []
        for record in self.records:
            config = config_from_dict(record["config"])
            if record["status"] == "ok":
                result = result_from_record(record)
                area = (f"{result.area_mm2:.2f}"
                        if result.area_mm2 is not None else "NA")
                power = (f"{result.power_w:.3f}"
                         if result.power_w is not None else "NA")
                rows.append([
                    config.table_kind, config.label(), "ok",
                    f"{result.required_clock_hz / 1e6:.1f}",
                    f"{result.bus_utilization * 100:.1f}",
                    area, power])
            else:
                rows.append([config.table_kind, config.label(),
                             "QUARANTINED", record.get("error", "?"),
                             "", "", ""])
        table = render_rows(
            ["Table", "Configuration", "Status", "Clock MHz", "Bus%",
             "Area mm2", "Power W"], rows)
        # Deliberately free of resume/journal bookkeeping: the artifact
        # must be byte-identical whether the campaign ran through or was
        # killed and resumed.
        footer = (f"{len(self.results)} evaluated, "
                  f"{len(self.quarantined)} quarantined")
        return table + "\n" + footer

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: journal records in input order plus totals."""
        return {
            "records": list(self.records),
            "evaluated": len(self.results),
            "quarantined": [config_to_dict(c) for c in self.quarantined],
            "resumed": self.resumed,
            "discarded_records": self.discarded_records,
        }

    def write_output(self, path: str) -> None:
        write_atomic(path, self.render() + "\n")


# -- record <-> result conversion --------------------------------------------------


def result_to_record(result: EvaluationResult,
                     requested: ArchitectureConfiguration
                     ) -> Dict[str, object]:
    record: Dict[str, object] = {
        "v": JOURNAL_VERSION,
        "key": config_key(requested),
        "status": "ok",
        "config": config_to_dict(requested),
        "resolved": config_to_dict(result.config),
        "cycles_per_packet": result.cycles_per_packet,
        "bus_utilization": result.bus_utilization,
        "required_clock_hz": result.required_clock_hz,
        "feasible": result.feasible,
        "program_store_kbyte":
            ArchitectureEvaluator._program_store_kbyte(result.run),
    }
    if result.run is not None and result.run.hazard_report is not None:
        record["hazards"] = result.run.hazard_report.by_kind()
    return record


def result_from_record(record: Dict[str, object]) -> EvaluationResult:
    """Reconstruct a result exactly from its journal record.

    The record stores the estimation *inputs*; area and power are
    recomputed through the same pure estimation functions, so every float
    matches the live evaluation bit for bit.
    """
    config = config_from_dict(record["resolved"])
    clock = record["required_clock_hz"]
    feasible = record["feasible"]
    area = power = None
    if feasible:
        area = estimate_area(
            config, clock,
            program_store_kbyte=record["program_store_kbyte"])
        power = estimate_power(
            config, clock, bus_utilization=record["bus_utilization"],
            area=area)
    return EvaluationResult(
        config=config,
        cycles_per_packet=record["cycles_per_packet"],
        bus_utilization=record["bus_utilization"],
        required_clock_hz=clock, feasible=feasible,
        area=area, power=power, run=None)


def failure_to_record(failure: EvaluationFailure) -> Dict[str, object]:
    return {
        "v": JOURNAL_VERSION,
        "key": config_key(failure.config),
        "status": "failed",
        "config": config_to_dict(failure.config),
        "error": failure.error,
        "message": failure.message,
        "retries": failure.retries,
        "cycle_budget": failure.cycle_budget,
        "cycles_executed": failure.cycles_executed,
        "pc": failure.pc,
        "loop": failure.loop,
        "mismatches": list(failure.mismatches),
        "quarantined": failure.quarantined,
    }


def failure_from_record(record: Dict[str, object]) -> EvaluationFailure:
    return EvaluationFailure(
        config=config_from_dict(record["config"]),
        error=record["error"],
        message=record["message"],
        retries=record.get("retries", 0),
        cycle_budget=record.get("cycle_budget"),
        cycles_executed=record.get("cycles_executed"),
        pc=record.get("pc"),
        loop=record.get("loop"),
        mismatches=tuple(record.get("mismatches", ())),
        quarantined=record.get("quarantined", True),
    )


# -- the runner --------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignPolicy:
    """Deadline and retry policy for one campaign."""

    cycle_budget: int = DEFAULT_EVALUATION_MAX_CYCLES
    retry_budget_factor: int = 4
    max_retries: int = 1


def evaluate_guarded(evaluator: Evaluator,
                     config: ArchitectureConfiguration,
                     policy: CampaignPolicy) -> Dict[str, object]:
    """One evaluation under the campaign deadline/retry policy.

    Returns the journal record (``status`` ``ok`` or ``failed``) and never
    raises for the failure classes a campaign contains
    (:class:`~repro.errors.ReproError`). This is the unit of work shared
    by the sequential :class:`CampaignRunner` and the process-pool workers
    of :class:`~repro.dse.parallel.ParallelCampaignRunner` — each worker
    enforces the cycle budget locally, exactly like the sequential path.
    """
    budget = policy.cycle_budget
    retries = 0
    while True:
        try:
            result = evaluator.evaluate(config, max_cycles=budget)
        except CycleBudgetError as exc:
            if retries < policy.max_retries:
                retries += 1
                budget *= policy.retry_budget_factor
                continue
            failure = EvaluationFailure(
                config=config, error=type(exc).__name__,
                message=str(exc), retries=retries, cycle_budget=budget,
                cycles_executed=exc.cycles, pc=exc.pc,
                loop=exc.loop.render() if exc.loop else None)
            return failure_to_record(failure)
        except ReproError as exc:
            # Deterministic failure classes (functional mismatch,
            # structural/configuration errors): no retry can help.
            run = getattr(exc, "run", None)
            failure = EvaluationFailure(
                config=config, error=type(exc).__name__,
                message=str(exc), retries=retries,
                cycles_executed=(run.report.cycles
                                 if run is not None else None),
                mismatches=tuple(run.mismatches)
                if run is not None else ())
            return failure_to_record(failure)
        return result_to_record(result, config)


class CampaignRunner:
    """Journal-backed, fault-isolating wrapper around an evaluator.

    Duck-type compatible with :class:`Evaluator` (``evaluate(config)``),
    so explorers run on top of it unchanged: journal hits short-circuit,
    fresh evaluations are guarded and persisted, and failures surface as
    :class:`~repro.errors.EvaluationFailureError` (which the explorers
    treat as a dead end, not a crash).
    """

    def __init__(self, evaluator: Evaluator,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 policy: Optional[CampaignPolicy] = None):
        self.evaluator = evaluator
        self.journal_path = journal_path
        self.policy = policy or CampaignPolicy()
        self.resumed = 0
        self.discarded_records = 0
        self._records: Dict[str, Dict[str, object]] = {}
        self._replayed_keys: set = set()
        if resume:
            if journal_path is None:
                raise CampaignError("resume requested without a journal")
            if os.path.exists(journal_path):
                records, discarded = load_journal(journal_path)
                self.discarded_records = discarded
                for record in records:
                    self._records[record["key"]] = record
                self._replayed_keys = set(self._records)
                if discarded:
                    # Compact away the torn tail so the journal is clean
                    # before new records are appended after it.
                    write_atomic(journal_path, "".join(
                        _record_line(r) + "\n" for r in records))
        elif journal_path is not None and os.path.exists(journal_path) \
                and os.path.getsize(journal_path) > 0:
            raise CampaignError(
                f"journal {journal_path!r} already exists; resume the "
                f"campaign (resume=True / --resume) or remove the file")

    # -- evaluator-compatible surface ---------------------------------------------

    def evaluate(self, config: ArchitectureConfiguration, *,
                 max_cycles: Optional[int] = None) -> EvaluationResult:
        """Journal-aware, fault-isolated evaluation of one configuration.

        Raises :class:`EvaluationFailureError` (carrying the structured
        failure) instead of the evaluator's raw errors; the failure is
        already recorded and quarantined by the time it is raised.
        *max_cycles* overrides the policy's cycle budget for this call.
        """
        key = config_key(config)
        record = self._records.get(key)
        if record is None:
            record = self._evaluate_fresh(config, key,
                                          max_cycles=max_cycles)
        elif key in self._replayed_keys:
            self._replayed_keys.discard(key)
            self.resumed += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "dse_resumed_total",
                    "evaluations replayed from a journal").inc()
        if record["status"] == "ok":
            return result_from_record(record)
        raise EvaluationFailureError(record["message"],
                                     failure=failure_from_record(record))

    def seed_record(self, key: str, record: Dict[str, object]) -> None:
        """Install an externally recovered record (evaluation cache hit,
        cross-campaign import) as if it had been journalled by this run.

        The record is appended to the journal like a fresh evaluation —
        so a later ``--resume`` replays it — but none of the fresh-
        evaluation metrics fire: the caller accounts for its own source
        (e.g. cache-hit counters).
        """
        if record.get("v") != JOURNAL_VERSION or record.get("key") != key \
                or "status" not in record:
            raise CampaignError(
                f"refusing to seed a malformed record for key {key!r}")
        self._records[key] = record
        if self.journal_path is not None:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(_record_line(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def failure_reason(self, config: ArchitectureConfiguration
                       ) -> Optional[str]:
        """The error class name of a recorded *failed* evaluation of
        *config* (``"WorkerCrashError"``, ``"CycleBudgetError"``, ...),
        or ``None`` if it has no record or succeeded. Lets callers
        classify contained failures without parsing exceptions."""
        record = self._records.get(config_key(config))
        if record is None or record["status"] == "ok":
            return None
        return record["error"]

    def forget_failure(self, config: ArchitectureConfiguration) -> bool:
        """Drop a recorded *failed* evaluation so the next evaluate of
        *config* runs fresh; returns whether anything was dropped.

        The journal keeps the failed record — history is append-only —
        and the retry's record is appended after it, which wins on
        replay (last record per key). Successful records are never
        dropped: retrying a success would break byte-identical resume.
        """
        key = config_key(config)
        record = self._records.get(key)
        if record is None or record["status"] == "ok":
            return False
        del self._records[key]
        self._replayed_keys.discard(key)
        return True

    def evaluate_batch(self, configs: Sequence[ArchitectureConfiguration]
                       ) -> List[Optional[EvaluationResult]]:
        """Aligned results for *configs*; ``None`` marks a failure."""
        self.run(configs)
        out: List[Optional[EvaluationResult]] = []
        for config in configs:
            record = self._records[config_key(config)]
            out.append(result_from_record(record)
                       if record["status"] == "ok" else None)
        return out

    # -- sweep driver -------------------------------------------------------------

    def run(self, configs: Sequence[ArchitectureConfiguration]
            ) -> CampaignResult:
        """Sweep *configs* in order; never raises on a bad configuration."""
        ordered: List[Dict[str, object]] = []
        results: List[EvaluationResult] = []
        failures: List[EvaluationFailure] = []
        for config in configs:
            try:
                results.append(self.evaluate(config))
            except EvaluationFailureError as exc:
                failures.append(exc.failure)
            ordered.append(self._records[config_key(config)])
        return CampaignResult(records=ordered, results=results,
                              failures=failures, resumed=self.resumed,
                              discarded_records=self.discarded_records)

    @property
    def quarantined(self) -> List[ArchitectureConfiguration]:
        return [failure_from_record(r).config
                for r in self._records.values()
                if r["status"] == "failed" and r.get("quarantined", True)]

    def hazard_counts(self) -> Dict[str, int]:
        """Hazard occurrences summed over every recorded evaluation."""
        counts: Dict[str, int] = {}
        for record in self._records.values():
            for kind, count in record.get("hazards", {}).items():
                counts[kind] = counts.get(kind, 0) + count
        return counts

    # -- internals ----------------------------------------------------------------

    def _evaluate_fresh(self, config: ArchitectureConfiguration,
                        key: str,
                        max_cycles: Optional[int] = None
                        ) -> Dict[str, object]:
        policy = self.policy if max_cycles is None else \
            dataclasses.replace(self.policy, cycle_budget=max_cycles)
        registry = get_registry()
        t0 = registry.time() if registry.enabled else 0.0
        record = evaluate_guarded(self.evaluator, config, policy)
        if registry.enabled:
            registry.histogram(
                "dse_evaluation_seconds",
                "wall-clock latency per in-process evaluation",
                ("status",)
            ).observe(registry.time() - t0, status=record["status"])
        return self._persist(key, record)

    def _persist(self, key: str,
                 record: Dict[str, object]) -> Dict[str, object]:
        self._records[key] = record
        self._publish_record_metrics(record)
        if self.journal_path is not None:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(_record_line(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return record

    @staticmethod
    def _publish_record_metrics(record: Dict[str, object]) -> None:
        """Status/retry/quarantine counters for one fresh record; shared
        by the sequential path and the parallel runner's pool results."""
        registry = get_registry()
        if not registry.enabled:
            return
        status = record["status"]
        registry.counter(
            "dse_evaluations_total",
            "campaign evaluations by outcome", ("status",)
        ).inc(status=status)
        retries = record.get("retries", 0)
        if retries:
            registry.counter(
                "dse_retries_total",
                "cycle-budget retries across all evaluations").inc(retries)
        if status == "failed" and record.get("quarantined", True):
            registry.counter(
                "dse_quarantined_total",
                "configurations quarantined after contained failures"
            ).inc()


class PoisonedEvaluator:
    """Evaluator wrapper that fails deterministically on chosen configs.

    The fault-injection fixture for campaign resilience (experiment E5 and
    the campaign tests): evaluations of *poisoned* configurations raise
    the given error class; everything else passes through untouched.
    """

    def __init__(self, evaluator: Evaluator,
                 poisoned: Sequence[ArchitectureConfiguration],
                 error: type = None):
        from repro.errors import FunctionalMismatchError
        self.evaluator = evaluator
        self._poisoned = {config_key(c) for c in poisoned}
        self._error = error or FunctionalMismatchError

    def evaluate(self, config: ArchitectureConfiguration,
                 max_cycles: Optional[int] = None) -> EvaluationResult:
        if config_key(config) in self._poisoned:
            raise self._error(
                f"poisoned configuration {config.describe()}")
        return self.evaluator.evaluate(config, max_cycles=max_cycles)

    def __getattr__(self, name):
        # Never forward dunder lookups: pickle/copy probe for protocol
        # hooks (__getstate__, __setstate__, __reduce_ex__, ...) before
        # the instance __dict__ is populated, and forwarding them through
        # ``self.evaluator`` would recurse into __getattr__ forever —
        # which is fatal for wrappers shipped to a process pool.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        evaluator = self.__dict__.get("evaluator")
        if evaluator is None:
            raise AttributeError(name)
        return getattr(evaluator, name)


# -- Table 1 over a campaign -------------------------------------------------------


def run_table1_campaign(runner: CampaignRunner,
                        kinds: Sequence[str] = TABLE_KINDS
                        ) -> Tuple[List[Table1Row], CampaignResult]:
    """Regenerate Table 1 under campaign resilience.

    Returns the rows for every configuration that evaluated successfully
    (paired with the paper's values, in paper order) plus the full
    campaign result; quarantined configurations are simply absent from
    the rows and present in ``result.failures``.
    """
    configs = [config for kind in kinds
               for config in paper_configurations(kind)]
    campaign = runner.run(configs)
    paper_by_key = {(r.table_kind, r.config_label): r for r in PAPER_TABLE1}
    rows = [Table1Row(paper=paper_by_key.get((result.config.table_kind,
                                              result.config.label())),
                      measured=result)
            for result in campaign.results]
    return rows, campaign
