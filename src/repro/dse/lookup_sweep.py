"""Scaling lookup sweep: every table kind against 10²–10⁶-prefix FIBs.

The paper's Table 1 fixes the FIB at 100 entries — realistic for 2003
edge equipment, three orders of magnitude short of a modern default-free
zone. This campaign extends the comparison along the prefix-count axis:
for every ``(kind, prefix_count)`` cell it

1. synthesizes a realistic FIB (:func:`repro.workload.fib.synthesize_fib`
   — BGP-shaped prefix-length histogram, aggregatable allocations),
2. bulk-loads it into the structure under test,
3. measures mean lookup steps under Zipf-skewed traffic
   (:func:`repro.workload.fib.zipf_addresses`) via ``lookup_batch``,
4. converts the measurement to required clock / area / power through the
   calibrated analytic models
   (:func:`repro.estimation.lookup.estimate_lookup_point`).

The full cycle-accurate TTA simulation backs the models' calibration at
feasible sizes (``table1 --prefixes``); it cannot execute a sequential
scan over 10⁶ entries per datagram, which is exactly the regime this
sweep is for.

Campaign semantics match every other sweep in :mod:`repro.dse`: cells
journal to the same fsync'd JSONL format (:func:`load_journal` parses it
unchanged), a killed sweep resumes without repeating a measurement,
``--jobs N`` fans cells out over a process pool, and sequential /
parallel / resumed runs render and serialise byte-identically. Worker
processes never touch the metrics registry; the parent publishes each
cell's routing counters at persist time from the record itself, so the
observability story is also identical across execution modes.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import BrokenExecutor
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.dse.campaign import (
    JOURNAL_VERSION,
    _record_line,
    load_journal,
    write_atomic,
)
from repro.dse.config import (
    ALL_TABLE_KINDS,
    ArchitectureConfiguration,
)
from repro.dse.parallel import default_start_method
from repro.errors import CampaignError, ReproError
from repro.estimation.lookup import LookupEstimate, estimate_lookup_point
from repro.obs import get_registry
from repro.routing import make_table
from repro.workload.fib import synthesize_fib, zipf_addresses

#: default prefix-count axis: two to six decades
DEFAULT_PREFIX_COUNTS = (100, 1_000, 10_000, 100_000, 1_000_000)

#: Zipf-skewed probe addresses measured per cell
DEFAULT_LOOKUPS = 2_000

#: the sweep's architecture anchor: the paper's most parallel Table-1
#: configuration, giving the software-searched structures their best
#: case (three concurrent search strands)
SWEEP_BUS_COUNT = 3
SWEEP_FU_SETS = 3


@dataclass(frozen=True)
class LookupCell:
    """One scheduled ``(kind, prefix_count)`` measurement."""

    kind: str
    prefix_count: int
    lookups: int
    seed: int

    @property
    def key(self) -> str:
        """Canonical journal identity of this cell."""
        return json.dumps({
            "kind": self.kind,
            "prefix_count": self.prefix_count,
            "lookups": self.lookups,
            "seed": self.seed,
        }, sort_keys=True, separators=(",", ":"))

    def config(self) -> ArchitectureConfiguration:
        return ArchitectureConfiguration(
            bus_count=SWEEP_BUS_COUNT, matchers=SWEEP_FU_SETS,
            counters=SWEEP_FU_SETS, comparators=SWEEP_FU_SETS,
            table_kind=self.kind)


def plan_cells(kinds: Sequence[str], prefix_counts: Sequence[int],
               lookups: int, seed: int) -> List[LookupCell]:
    """Deterministic cell enumeration: kind-major, then prefix count.

    Every cell's workload derives from ``(seed, prefix_count)`` only, so
    all kinds at one size measure the *same* FIB and the same traffic —
    the comparison is apples to apples by construction, and adding a
    kind cannot re-roll any other cell.
    """
    for kind in kinds:
        if kind not in ALL_TABLE_KINDS:
            raise CampaignError(
                f"unknown table kind {kind!r}; "
                f"choose from {ALL_TABLE_KINDS}")
    for count in prefix_counts:
        if count < 1:
            raise CampaignError(f"prefix count must be >= 1, got {count}")
    if lookups < 1:
        raise CampaignError(f"lookups must be >= 1, got {lookups}")
    return [LookupCell(kind=kind, prefix_count=count,
                       lookups=lookups, seed=seed)
            for kind in kinds for count in sorted(prefix_counts)]


# -- measurement (runs in the parent or a pool worker) ------------------------------


def measure_cell(cell: LookupCell) -> Dict[str, object]:
    """One cell -> one journal record (never raises for ReproError).

    The metrics registry is disabled for the duration: the parent
    publishes this record's counters at persist time, so sequential and
    parallel sweeps account identically (pool workers could not publish
    into the parent's registry anyway).
    """
    base: Dict[str, object] = {
        "v": JOURNAL_VERSION,
        "key": cell.key,
        "kind": cell.kind,
        "prefix_count": cell.prefix_count,
        "lookups": cell.lookups,
        "seed": cell.seed,
    }
    registry = get_registry()
    was_enabled = registry.enabled
    registry.disable()
    try:
        routes = synthesize_fib(cell.prefix_count, seed=cell.seed)
        table = make_table(cell.kind, capacity=len(routes))
        table.load(routes)
        addresses = zipf_addresses(routes, cell.lookups,
                                   seed=cell.seed + 7919)
        results = table.lookup_batch(addresses)
        stats = table.stats
        base["status"] = "ok"
        base["route_count"] = len(routes)
        base["mean_lookup_steps"] = \
            stats.total_lookup_steps / cell.lookups
        base["hit_rate"] = sum(r is not None for r in results) \
            / cell.lookups
        base["table_memory_bytes"] = table.table_memory_bytes()
        base["update_steps"] = stats.total_update_steps
    except ReproError as exc:
        base["status"] = "failed"
        base["error"] = type(exc).__name__
        base["message"] = str(exc)
    finally:
        if was_enabled:
            registry.enable()
    return base


def measure_chunk(payloads: List[Dict[str, object]]
                  ) -> List[Dict[str, object]]:
    """Measure a chunk of cell payloads in a pool worker."""
    return [measure_cell(LookupCell(
        kind=payload["kind"], prefix_count=payload["prefix_count"],
        lookups=payload["lookups"], seed=payload["seed"]))
        for payload in payloads]


def estimate_from_record(record: Dict[str, object]) -> LookupEstimate:
    """Reconstruct a cell's physical estimate exactly from its record.

    The record stores the measurement *inputs*; clock, area and power
    are recomputed through the same pure estimation functions, so every
    float matches the live sweep bit for bit — the same idiom as
    :func:`repro.dse.campaign.result_from_record`.
    """
    cell = LookupCell(kind=record["kind"],
                      prefix_count=record["prefix_count"],
                      lookups=record["lookups"], seed=record["seed"])
    return estimate_lookup_point(
        cell.config(), record["prefix_count"],
        record["mean_lookup_steps"], record["table_memory_bytes"])


# -- results -----------------------------------------------------------------------


@dataclass
class LookupSweepResult:
    """Outcome of one (possibly resumed) scaling sweep."""

    records: List[Dict[str, object]]  # plan order, one per cell
    kinds: Tuple[str, ...]
    prefix_counts: Tuple[int, ...]
    lookups: int
    seed: int
    resumed: int = 0
    discarded_records: int = 0

    def estimates(self) -> List[Optional[LookupEstimate]]:
        """Aligned estimates for the records; ``None`` marks a failure."""
        return [estimate_from_record(r) if r["status"] == "ok" else None
                for r in self.records]

    def render(self) -> str:
        """Deterministic text artifact — byte-identical whether the
        sweep ran through, ran parallel, or was killed and resumed."""
        from repro.reporting.tables import render_rows
        rows: List[List[object]] = []
        for record in self.records:
            if record["status"] != "ok":
                rows.append([record["kind"],
                             f"{record['prefix_count']:,}", "FAILED",
                             record.get("error", "?"), "", "", "", ""])
                continue
            estimate = estimate_from_record(record)
            clock = estimate.required_clock_hz
            clock_text = f"{clock / 1e9:.2f} GHz" if clock >= 1e9 \
                else f"{clock / 1e6:.0f} MHz"
            if not estimate.feasible:
                clock_text += " (NA)"
            rows.append([
                record["kind"], f"{record['prefix_count']:,}", "ok",
                f"{record['mean_lookup_steps']:.1f}",
                f"{record['hit_rate'] * 100:.1f}",
                clock_text,
                f"{estimate.area.total_mm2:.1f}",
                f"{estimate.power.system_w:.2f}",
            ])
        table = render_rows(
            ["Table", "Prefixes", "Status", "Steps", "Hit%",
             "Req. clock", "Area mm2", "Power W"], rows)
        ok = sum(r["status"] == "ok" for r in self.records)
        feasible = sum(e is not None and e.feasible
                       for e in self.estimates())
        footer = (f"{ok} cell(s) measured, {feasible} feasible at the "
                  f"0.18 um library limit")
        return table + "\n" + footer

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view. Deliberately free of resume/journal
        bookkeeping: the saved document must be byte-identical whether
        the sweep ran through, ran parallel, or was killed and
        resumed."""
        cells: List[Dict[str, object]] = []
        for record, estimate in zip(self.records, self.estimates()):
            cell = dict(record)
            if estimate is not None:
                cell["estimate"] = estimate.to_dict()
            cells.append(cell)
        return {
            "kinds": list(self.kinds),
            "prefix_counts": list(self.prefix_counts),
            "lookups": self.lookups,
            "seed": self.seed,
            "cells": cells,
        }

    def write_output(self, path: str) -> None:
        write_atomic(path, self.render() + "\n")


# -- the runner --------------------------------------------------------------------


class LookupSweepRunner:
    """Journal-backed, optionally parallel scaling-sweep driver."""

    def __init__(self,
                 kinds: Optional[Sequence[str]] = None,
                 prefix_counts: Optional[Sequence[int]] = None,
                 lookups: int = DEFAULT_LOOKUPS,
                 seed: int = 2026,
                 jobs: int = 1,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None):
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        self.kinds = tuple(kinds) if kinds is not None else ALL_TABLE_KINDS
        self.prefix_counts = tuple(sorted(prefix_counts)) \
            if prefix_counts is not None else DEFAULT_PREFIX_COUNTS
        self.lookups = lookups
        self.seed = seed
        self.jobs = jobs
        self.journal_path = journal_path
        self.chunk_size = chunk_size
        self.start_method = start_method or default_start_method()
        self.resumed = 0
        self.discarded_records = 0
        self._records: Dict[str, Dict[str, object]] = {}
        self._replayed_keys: set = set()
        if resume:
            if journal_path is None:
                raise CampaignError("resume requested without a journal")
            if os.path.exists(journal_path):
                records, discarded = load_journal(journal_path)
                self.discarded_records = discarded
                for record in records:
                    self._records[record["key"]] = record
                self._replayed_keys = set(self._records)
                if discarded:
                    write_atomic(journal_path, "".join(
                        _record_line(r) + "\n" for r in records))
        elif journal_path is not None and os.path.exists(journal_path) \
                and os.path.getsize(journal_path) > 0:
            raise CampaignError(
                f"journal {journal_path!r} already exists; resume the "
                f"sweep (resume=True / --resume) or remove the file")

    # -- sweep driver -------------------------------------------------------------

    def run(self) -> LookupSweepResult:
        """Measure every planned cell; never raises for a cell whose
        structure rejects the workload (recorded ``failed``)."""
        registry = get_registry()
        plan = plan_cells(self.kinds, self.prefix_counts,
                          self.lookups, self.seed)
        pending: List[LookupCell] = []
        for cell in plan:
            key = cell.key
            if key in self._records:
                if key in self._replayed_keys:
                    self._replayed_keys.discard(key)
                    self.resumed += 1
                    if registry.enabled:
                        registry.counter(
                            "lookup_sweep_resumed_total",
                            "sweep cells replayed from a journal").inc()
            else:
                pending.append(cell)
        if pending and self.jobs > 1:
            pending = self._run_pool(pending)
        for cell in pending:
            if cell.key not in self._records:
                self._persist(cell.key, measure_cell(cell))
        ordered = [self._records[cell.key] for cell in plan]
        return LookupSweepResult(
            records=ordered, kinds=self.kinds,
            prefix_counts=self.prefix_counts, lookups=self.lookups,
            seed=self.seed, resumed=self.resumed,
            discarded_records=self.discarded_records)

    # -- internals ----------------------------------------------------------------

    def _run_pool(self, pending: List[LookupCell]) -> List[LookupCell]:
        """Fan *pending* out over a process pool; returns the cells the
        pool never finished (measured in-parent by the caller)."""
        chunks = self._chunked(pending)
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=multiprocessing.get_context(self.start_method))
        try:
            futures = []
            for chunk in chunks:
                payloads = [{
                    "kind": cell.kind,
                    "prefix_count": cell.prefix_count,
                    "lookups": cell.lookups,
                    "seed": cell.seed,
                } for cell in chunk]
                futures.append((pool.submit(measure_chunk, payloads),
                                chunk))
            for future, chunk in futures:
                try:
                    records = future.result()
                except BrokenExecutor:
                    # pool died: the caller measures what's left
                    # in-process — slower, never wrong
                    break
                for cell, record in zip(chunk, records):
                    self._persist(cell.key, record)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [cell for cell in pending
                if cell.key not in self._records]

    def _chunked(self, pending: Sequence[LookupCell]
                 ) -> List[List[LookupCell]]:
        size = self.chunk_size
        if size is None:
            # One cell per chunk by default: cells differ in cost by
            # orders of magnitude (10² vs 10⁶ prefixes), so fine-grained
            # scheduling beats amortisation here.
            size = 1
        return [list(pending[i:i + size])
                for i in range(0, len(pending), size)]

    def _persist(self, key: str,
                 record: Dict[str, object]) -> Dict[str, object]:
        self._records[key] = record
        self._publish_record_metrics(record)
        if self.journal_path is not None:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(_record_line(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return record

    @staticmethod
    def _publish_record_metrics(record: Dict[str, object]) -> None:
        """Routing/cell counters for one fresh record.

        Published in the parent only — the measurement itself runs with
        the registry disabled — so sequential and parallel sweeps
        account identically and a resumed cell is never double-counted.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "lookup_sweep_cells_total",
            "scaling-sweep cells by outcome", ("status",)
        ).inc(status=record["status"])
        if record["status"] != "ok":
            return
        kind = record["kind"]
        lookups = record["lookups"]
        hits = round(record["hit_rate"] * lookups)
        lookup_counter = registry.counter(
            "routing_lookups_total", "LPM lookups by table kind",
            ("kind", "outcome"))
        lookup_counter.inc(hits, kind=kind, outcome="hit")
        lookup_counter.inc(lookups - hits, kind=kind, outcome="miss")
        registry.counter(
            "routing_lookup_steps_total",
            "cumulative LPM search steps", ("kind",)
        ).inc(round(record["mean_lookup_steps"] * lookups), kind=kind)
        registry.counter(
            "routing_updates_total", "table mutations", ("kind", "op")
        ).inc(record["route_count"], kind=kind, op="insert")
        registry.counter(
            "routing_update_steps_total",
            "cumulative table update steps", ("kind",)
        ).inc(record["update_steps"], kind=kind)
