"""Design-space exploration: configurations, evaluation, Table 1, search."""

from repro.dse.campaign import (
    CampaignPolicy,
    CampaignResult,
    CampaignRunner,
    EvaluationFailure,
    PoisonedEvaluator,
    config_from_dict,
    config_key,
    config_to_dict,
    evaluate_guarded,
    load_journal,
    run_table1_campaign,
    write_atomic,
    write_atomic_bytes,
)
from repro.dse.config import (
    ArchitectureConfiguration,
    PAPER_CONFIGURATIONS,
    paper_configurations,
)
from repro.dse.evaluator import (
    ArchitectureEvaluator,
    EvaluationResult,
    Evaluator,
)
from repro.dse.explorer import (
    ExhaustiveExplorer,
    ExplorationOutcome,
    GreedyExplorer,
)
from repro.dse.lookup_sweep import (
    LookupCell,
    LookupSweepResult,
    LookupSweepRunner,
    plan_cells,
)
from repro.dse.parallel import ParallelCampaignRunner
from repro.dse.pareto import DesignConstraints, pareto_front, select_best
from repro.dse.sdc import (
    SdcSweepResult,
    SdcSweepRunner,
    SdcTrial,
    plan_trials,
    run_sdc_sweep,
    vulnerability_row,
)
from repro.dse.protocols import (
    BatchEvaluator,
    supports_batching,
)
from repro.dse.protocols import Evaluator as EvaluatorProtocol
from repro.dse.space import DesignSpace, paper_space
from repro.dse.table1 import (
    PAPER_TABLE1,
    Table1Row,
    generate_table1,
    render_table1,
    shape_checks,
)

__all__ = [
    "CampaignPolicy", "CampaignResult", "CampaignRunner",
    "EvaluationFailure", "PoisonedEvaluator", "load_journal",
    "run_table1_campaign", "write_atomic", "write_atomic_bytes",
    "config_from_dict", "config_key", "config_to_dict", "evaluate_guarded",
    "ArchitectureConfiguration", "PAPER_CONFIGURATIONS",
    "paper_configurations",
    "ArchitectureEvaluator", "EvaluationResult", "Evaluator",
    "EvaluatorProtocol", "BatchEvaluator", "supports_batching",
    "ExhaustiveExplorer", "ExplorationOutcome", "GreedyExplorer",
    "ParallelCampaignRunner",
    "LookupCell", "LookupSweepResult", "LookupSweepRunner", "plan_cells",
    "SdcSweepResult", "SdcSweepRunner", "SdcTrial",
    "plan_trials", "run_sdc_sweep", "vulnerability_row",
    "DesignConstraints", "pareto_front", "select_best",
    "DesignSpace", "paper_space",
    "PAPER_TABLE1", "Table1Row", "generate_table1", "render_table1",
    "shape_checks",
]
