"""Architecture configurations: the points of the design space.

"Architecture instances are constructed by varying the number of modules of
the same type in the processor as well as varying the internal data
transport capacity [bus count] of the instances" (paper §2).

The paper's Table 1 uses three configurations per routing-table option;
:data:`PAPER_CONFIGURATIONS` reproduces them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: the paper's three Table-1 options (the default sweep grid)
TABLE_KINDS = ("sequential", "balanced-tree", "cam")

#: post-paper structures that scale to million-prefix FIBs
EXTENDED_TABLE_KINDS = ("multibit-trie", "bloom")

#: every kind a configuration may carry
ALL_TABLE_KINDS = TABLE_KINDS + EXTENDED_TABLE_KINDS

#: kinds whose search is a hardware operation of the RTU itself (the
#: forwarding program triggers one search instead of walking memory)
HARDWARE_SEARCH_KINDS = ("cam", "multibit-trie", "bloom")


@dataclass(frozen=True)
class ArchitectureConfiguration:
    """One TACO architecture instance plus its routing-table option."""

    bus_count: int = 1
    matchers: int = 1
    counters: int = 1
    comparators: int = 1
    shifters: int = 1
    maskers: int = 1
    checksums: int = 1
    gpr_registers: int = 16
    table_kind: str = "sequential"
    #: CAM search latency in processor cycles (resolved against the clock
    #: by the evaluator's fixed-point iteration; 1 at low clocks)
    cam_search_latency: int = 1

    def __post_init__(self) -> None:
        counts = {
            "bus_count": self.bus_count, "matchers": self.matchers,
            "counters": self.counters, "comparators": self.comparators,
            "shifters": self.shifters, "maskers": self.maskers,
            "checksums": self.checksums, "gpr_registers": self.gpr_registers,
            "cam_search_latency": self.cam_search_latency,
        }
        for name, value in counts.items():
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.table_kind not in ALL_TABLE_KINDS:
            raise ConfigurationError(
                f"unknown table kind {self.table_kind!r}; "
                f"choose from {ALL_TABLE_KINDS}")

    @property
    def search_fu_sets(self) -> int:
        """How many parallel search strands the FU mix supports."""
        return min(self.matchers, self.counters, self.comparators)

    def fu_counts(self) -> Dict[str, int]:
        """FU-type inventory (for the physical estimation model)."""
        return {
            "matcher": self.matchers,
            "counter": self.counters,
            "comparator": self.comparators,
            "shifter": self.shifters,
            "masker": self.maskers,
            "checksum": self.checksums,
        }

    def with_cam_latency(self, cycles: int) -> "ArchitectureConfiguration":
        return replace(self, cam_search_latency=cycles)

    def label(self) -> str:
        """Table 1 row label, e.g. ``1BUS/1FU`` or ``3BUS/3CNT,3CMP,3M``."""
        sets = self.search_fu_sets
        if sets == 1 and self.matchers == self.counters == self.comparators == 1:
            return f"{self.bus_count}BUS/1FU"
        return (f"{self.bus_count}BUS/{self.counters}CNT,"
                f"{self.comparators}CMP,{self.matchers}M")

    def describe(self) -> str:
        return f"{self.label()} + {self.table_kind} routing table"


def paper_configurations(table_kind: str) -> Tuple[ArchitectureConfiguration, ...]:
    """The three per-table-option configurations evaluated in Table 1."""
    return (
        ArchitectureConfiguration(bus_count=1, table_kind=table_kind),
        ArchitectureConfiguration(bus_count=3, table_kind=table_kind),
        ArchitectureConfiguration(bus_count=3, matchers=3, counters=3,
                                  comparators=3, table_kind=table_kind),
    )


PAPER_CONFIGURATIONS: Dict[str, Tuple[ArchitectureConfiguration, ...]] = {
    kind: paper_configurations(kind) for kind in TABLE_KINDS
}
