"""Evaluate one architecture instance: simulate + estimate + co-analyse.

This is one turn of the paper's Y-chart loop (§1.1, §2): simulate the
tuned application on the instance (cycle count, bus utilisation), derive
the minimum clock from the throughput constraint, then estimate area and
power at that clock. Configurations whose required clock exceeds the
0.18 µm library limit get no physical estimate — the paper's "NA" rows.

The CAM option needs a fixed point: the CAM's 40 ns search occupies more
*cycles* at higher clocks, and more cycles raise the required clock. We
iterate latency → simulate → clock → latency until stable (it converges in
a handful of rounds because latency enters cycles additively).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dse.config import ArchitectureConfiguration
from repro.errors import FunctionalMismatchError
from repro.estimation.area import AreaBreakdown, estimate_area
from repro.estimation.frequency import ThroughputConstraint
from repro.estimation.power import PowerBreakdown, estimate_power
from repro.estimation.technology import MAX_CLOCK_HZ
from repro.programs.runner import (
    ForwardingRunResult,
    RunOptions,
    run_forwarding,
)
from repro.routing.cam import CAM_SEARCH_TIME_NS
from repro.routing.entry import RouteEntry
from repro.tta.simulator import DEFAULT_RUN_MAX_CYCLES
from repro.workload import generate_routes, worst_case_workload

DEFAULT_PACKET_BATCH = 12
#: the evaluator shares the runner's (and the CLI's) cycle ceiling — a
#: CAM fixed point at latency > 1 must not be classified differently
#: depending on which entry point launched it
DEFAULT_EVALUATION_MAX_CYCLES = DEFAULT_RUN_MAX_CYCLES
_MAX_FIXED_POINT_ROUNDS = 12


@dataclass(frozen=True)
class EvaluationResult:
    """Everything Table 1 reports about one configuration."""

    config: ArchitectureConfiguration
    cycles_per_packet: float
    bus_utilization: float
    required_clock_hz: float
    feasible: bool
    area: Optional[AreaBreakdown]
    power: Optional[PowerBreakdown]
    #: None when the result was reconstructed from a campaign journal
    #: (the scalar metrics above are preserved; the raw run is not)
    run: Optional[ForwardingRunResult]

    @property
    def area_mm2(self) -> Optional[float]:
        return self.area.total_mm2 if self.area else None

    @property
    def power_w(self) -> Optional[float]:
        return self.power.processor_w if self.power else None

    @property
    def system_power_w(self) -> Optional[float]:
        return self.power.system_w if self.power else None

    def energy_per_packet_nj(self, packet_rate_pps: float) -> Optional[float]:
        """System energy per forwarded datagram in nanojoules.

        The natural figure of merit for comparing feasible designs: at a
        fixed line rate, power divides out into joules per datagram.
        """
        if self.power is None or packet_rate_pps <= 0:
            return None
        return self.power.system_w / packet_rate_pps * 1e9

    def summary(self) -> str:
        clock = f"{self.required_clock_hz / 1e9:.2f} GHz" \
            if self.required_clock_hz >= 1e9 \
            else f"{self.required_clock_hz / 1e6:.0f} MHz"
        area = f"{self.area_mm2:.1f} mm2" if self.area else "NA"
        power = f"{self.power_w:.2f} W" if self.power else "NA"
        return (f"{self.config.describe()}: {clock} required "
                f"({self.cycles_per_packet:.0f} cyc/pkt, "
                f"bus {self.bus_utilization * 100:.0f}%), {area}, {power}")

    def render(self) -> str:
        return self.summary()

    def to_dict(self) -> dict:
        """JSON-ready scalar view (the common ``render``/``to_dict`` pair)."""
        return {
            "config": dataclasses.asdict(self.config),
            "label": self.config.label(),
            "table_kind": self.config.table_kind,
            "cycles_per_packet": self.cycles_per_packet,
            "bus_utilization": self.bus_utilization,
            "required_clock_hz": self.required_clock_hz,
            "feasible": self.feasible,
            "area_mm2": self.area_mm2,
            "power_w": self.power_w,
            "system_power_w": self.system_power_w,
        }


class ArchitectureEvaluator:
    """Evaluates configurations against one workload + constraint."""

    def __init__(self, routes: Optional[Sequence[RouteEntry]] = None,
                 packets: Optional[Sequence[Tuple[int, bytes]]] = None,
                 constraint: Optional[ThroughputConstraint] = None,
                 packet_batch: int = DEFAULT_PACKET_BATCH,
                 table_entries: int = 100,
                 detect_hazards: bool = False,
                 backend: Optional[str] = None):
        self.routes = list(routes) if routes is not None else \
            generate_routes(table_entries)
        self.packets = list(packets) if packets is not None else \
            worst_case_workload(self.routes, packet_batch)
        self.constraint = constraint or ThroughputConstraint()
        self.detect_hazards = detect_hazards
        #: simulation engine for every run this evaluator makes
        #: (None = registry default; see :mod:`repro.tta.backends`)
        self.backend = backend
        self.evaluations = 0

    # -- public -------------------------------------------------------------------

    def evaluate(self, config: ArchitectureConfiguration,
                 max_cycles: Optional[int] = None) -> EvaluationResult:
        """Evaluate one configuration.

        *max_cycles* caps the simulation; exhausting it raises
        :class:`~repro.errors.CycleBudgetError` (campaign runners use this
        as a per-evaluation deadline). A functional mismatch raises
        :class:`~repro.errors.FunctionalMismatchError` with the failed
        :class:`ForwardingRunResult` attached as ``run`` so callers can
        inspect the mismatch without re-simulating.
        """
        if config.table_kind == "cam":
            run, config = self._run_cam_fixed_point(config, max_cycles)
        else:
            run = self._run(config, max_cycles)
        if not run.correct:
            raise FunctionalMismatchError(
                f"functional mismatch on {config.describe()}: "
                f"{run.mismatches} ({run.report.cycles} cycles executed)",
                run=run)
        cycles = run.cycles_per_packet
        clock = self.constraint.required_clock(cycles)
        feasible = clock <= MAX_CLOCK_HZ
        area = power = None
        if feasible:
            # The paper did not estimate configurations beyond the library
            # limit ("NA ... due to its high clock frequency requirement").
            area = estimate_area(
                config, clock,
                program_store_kbyte=self._program_store_kbyte(run))
            power = estimate_power(config, clock,
                                   bus_utilization=run.bus_utilization,
                                   area=area)
        return EvaluationResult(
            config=config, cycles_per_packet=cycles,
            bus_utilization=run.bus_utilization,
            required_clock_hz=clock, feasible=feasible,
            area=area, power=power, run=run)

    def evaluate_all(self, configs: Sequence[ArchitectureConfiguration]
                     ) -> List[EvaluationResult]:
        return [self.evaluate(c) for c in configs]

    # -- internals --------------------------------------------------------------------

    def _run(self, config: ArchitectureConfiguration,
             max_cycles: Optional[int] = None) -> ForwardingRunResult:
        self.evaluations += 1
        return run_forwarding(
            config, self.routes, self.packets,
            options=RunOptions(
                backend=self.backend,
                max_cycles=max_cycles or DEFAULT_EVALUATION_MAX_CYCLES,
                detect_hazards=self.detect_hazards))

    @staticmethod
    def _program_store_kbyte(run: ForwardingRunResult) -> float:
        """Exact instruction-memory footprint of the tuned program."""
        if run.machine is None or run.program_length == 0:
            return 1.0
        from repro.asm.encoding import EncodingScheme
        scheme = EncodingScheme.for_processor(run.machine.processor)
        return scheme.program_bytes(run.program_length) / 1024.0

    def _run_cam_fixed_point(self, config: ArchitectureConfiguration,
                             max_cycles: Optional[int] = None,
                             ) -> Tuple[ForwardingRunResult,
                                        ArchitectureConfiguration]:
        latency = 1
        run = None
        for _ in range(_MAX_FIXED_POINT_ROUNDS):
            candidate = config.with_cam_latency(latency)
            run = self._run(candidate, max_cycles)
            clock = self.constraint.required_clock(run.cycles_per_packet)
            next_latency = max(
                1, math.ceil(CAM_SEARCH_TIME_NS * 1e-9 * clock))
            if next_latency == latency:
                return run, candidate
            latency = next_latency
        assert run is not None
        return run, config.with_cam_latency(latency)


#: Backwards-compatible name — the concrete class predates the formal
#: :class:`repro.dse.protocols.Evaluator` protocol it now satisfies.
Evaluator = ArchitectureEvaluator
