"""Regenerate the paper's Table 1.

Nine rows: {sequential, balanced tree, CAM} × {1BUS/1FU, 3BUS/1FU,
3BUS/3CNT,3CMP,3M}, each with the minimum clock to sustain 10 Gbps with a
100-entry routing table, the measured bus utilisation, and the estimated
area and average power (NA where the required clock exceeds the library).

:data:`PAPER_TABLE1` records the values readable from the published table
(clock anchors for all nine rows, 100 % utilisation for the single-bus
rows; the remaining utilisation/area/power cells did not survive the
text extraction of our source and are ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.config import (
    ArchitectureConfiguration,
    TABLE_KINDS,
    paper_configurations,
)
from repro.dse.evaluator import EvaluationResult, Evaluator

ROW_LABELS = ("1BUS/1FU", "3BUS/1FU", "3BUS/3CNT,3CMP,3M")


@dataclass(frozen=True)
class PaperRow:
    """What the published Table 1 reports for one row."""

    table_kind: str
    config_label: str
    required_clock_hz: float
    bus_utilization: Optional[float] = None
    area_mm2: Optional[float] = None
    power_w: Optional[float] = None
    estimated: bool = True  # False = the paper printed NA


PAPER_TABLE1: Tuple[PaperRow, ...] = (
    PaperRow("sequential", "1BUS/1FU", 6.0e9, 1.00, estimated=False),
    PaperRow("sequential", "3BUS/1FU", 2.0e9, 1.00, estimated=False),
    PaperRow("sequential", "3BUS/3CNT,3CMP,3M", 1.0e9),
    PaperRow("balanced-tree", "1BUS/1FU", 1.2e9, 1.00, estimated=False),
    PaperRow("balanced-tree", "3BUS/1FU", 600e6),
    PaperRow("balanced-tree", "3BUS/3CNT,3CMP,3M", 250e6),
    PaperRow("cam", "1BUS/1FU", 118e6),
    PaperRow("cam", "3BUS/1FU", 40e6),
    PaperRow("cam", "3BUS/3CNT,3CMP,3M", 35e6),
)


@dataclass(frozen=True)
class Table1Row:
    """One measured row next to its paper counterpart.

    Rows for the post-paper table kinds (multibit-trie, Bloom) have no
    published counterpart: ``paper`` is ``None`` and the paper-relative
    fields degrade gracefully.
    """

    paper: Optional[PaperRow]
    measured: EvaluationResult

    @property
    def table_kind(self) -> str:
        return self.measured.config.table_kind

    @property
    def config_label(self) -> str:
        return self.measured.config.label()

    @property
    def clock_ratio_vs_paper(self) -> Optional[float]:
        if self.paper is None:
            return None
        return self.measured.required_clock_hz / self.paper.required_clock_hz

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict
        return {
            "paper": asdict(self.paper) if self.paper is not None else None,
            "measured": self.measured.to_dict(),
            "clock_ratio_vs_paper": self.clock_ratio_vs_paper,
        }


def table1_to_dict(rows: Sequence["Table1Row"],
                   violations: Optional[Sequence[str]] = None
                   ) -> Dict[str, object]:
    """JSON-ready document for a generated Table 1."""
    payload: Dict[str, object] = {
        "rows": [row.to_dict() for row in rows]}
    if violations is not None:
        payload["shape_violations"] = list(violations)
    return payload


def generate_table1(evaluator: Optional[Evaluator] = None,
                    kinds: Sequence[str] = TABLE_KINDS) -> List[Table1Row]:
    """Evaluate all nine configurations and pair them with paper values."""
    evaluator = evaluator or Evaluator()
    rows: List[Table1Row] = []
    paper_by_key: Dict[Tuple[str, str], PaperRow] = {
        (r.table_kind, r.config_label): r for r in PAPER_TABLE1}
    for kind in kinds:
        for config in paper_configurations(kind):
            result = evaluator.evaluate(config)
            paper = paper_by_key.get((kind, config.label()))
            rows.append(Table1Row(paper=paper, measured=result))
    return rows


def format_clock(clock_hz: float) -> str:
    if clock_hz >= 1e9:
        return f"{clock_hz / 1e9:.2f} GHz"
    return f"{clock_hz / 1e6:.0f} MHz"


def render_table1(rows: Sequence[Table1Row]) -> str:
    """A text rendering mirroring the paper's column layout."""
    header = (f"{'Routing table':<14} {'Configuration':<20} "
              f"{'Req. clock':>10} {'(paper)':>10} "
              f"{'Bus%':>5} {'Area mm2':>9} {'Power W':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        m = row.measured
        area = f"{m.area_mm2:9.1f}" if m.area_mm2 is not None else f"{'NA':>9}"
        power = f"{m.power_w:8.2f}" if m.power_w is not None else f"{'NA':>8}"
        paper_clock = (format_clock(row.paper.required_clock_hz)
                       if row.paper is not None else "—")
        lines.append(
            f"{row.table_kind:<14} {row.config_label:<20} "
            f"{format_clock(m.required_clock_hz):>10} "
            f"{paper_clock:>10} "
            f"{m.bus_utilization * 100:5.0f} {area} {power}")
    return "\n".join(lines)


def shape_checks(rows: Sequence[Table1Row]) -> List[str]:
    """Qualitative conclusions of §4; returns violated claims (empty = ok).

    1. Within every table option, more buses never require a higher clock,
       and the 3-FU configuration never beats tripled buses by less than
       the single-bus baseline (monotone ordering).
    2. Tree beats sequential, CAM beats tree, in every configuration.
    3. CAM barely benefits from FU multiplication (< 25 % clock change).
    4. The sequential option is infeasible (beyond the library) except at
       most its most parallel configuration.
    """
    violations: List[str] = []
    by_kind: Dict[str, List[Table1Row]] = {}
    for row in rows:
        # The paper's qualitative claims only cover its own three
        # options; extended kinds ride along without shape constraints.
        if row.table_kind in TABLE_KINDS:
            by_kind.setdefault(row.table_kind, []).append(row)
    if any(len(by_kind.get(kind, [])) != 3 for kind in TABLE_KINDS):
        return ["incomplete paper grid: need all nine "
                "{sequential, balanced-tree, cam} x configuration rows"]

    for kind, group in by_kind.items():
        clocks = [r.measured.required_clock_hz for r in group]
        if not (clocks[0] >= clocks[1] >= clocks[2] * 0.999):
            violations.append(
                f"{kind}: clocks not monotone over configurations: {clocks}")
    for i in range(3):
        seq = by_kind["sequential"][i].measured.required_clock_hz
        tree = by_kind["balanced-tree"][i].measured.required_clock_hz
        cam = by_kind["cam"][i].measured.required_clock_hz
        if not seq > tree > cam:
            violations.append(
                f"row {i}: expected sequential > tree > CAM, got "
                f"{seq:.3g} / {tree:.3g} / {cam:.3g}")
    cam_rows = by_kind["cam"]
    three_bus = cam_rows[1].measured.required_clock_hz
    three_fu = cam_rows[2].measured.required_clock_hz
    if abs(three_bus - three_fu) / three_bus > 0.25:
        violations.append(
            "CAM: FU multiplication changed the required clock by more "
            f"than 25% ({three_bus:.3g} -> {three_fu:.3g})")
    return violations
