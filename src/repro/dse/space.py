"""The design space: enumerable sets of architecture configurations."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Sequence

from repro.dse.config import ArchitectureConfiguration, TABLE_KINDS


@dataclass(frozen=True)
class DesignSpace:
    """Cartesian space over bus counts, FU-set counts, and table kinds.

    FU sets vary the matcher/counter/comparator triple together, which is
    how the paper varies them ("3 matchers, 3 counters and 3 comparers");
    the single-instance units (shifter, masker, checksum) stay at one.
    """

    bus_counts: Sequence[int] = (1, 2, 3, 4)
    fu_set_counts: Sequence[int] = (1, 2, 3)
    table_kinds: Sequence[str] = TABLE_KINDS

    def __iter__(self) -> Iterator[ArchitectureConfiguration]:
        for kind, buses, sets in product(self.table_kinds, self.bus_counts,
                                         self.fu_set_counts):
            yield ArchitectureConfiguration(
                bus_count=buses, matchers=sets, counters=sets,
                comparators=sets, table_kind=kind)

    def configurations(self) -> List[ArchitectureConfiguration]:
        return list(self)

    def size(self) -> int:
        return (len(self.bus_counts) * len(self.fu_set_counts)
                * len(self.table_kinds))


def paper_space() -> DesignSpace:
    """The subspace Table 1 samples."""
    return DesignSpace(bus_counts=(1, 3), fu_set_counts=(1, 3))
