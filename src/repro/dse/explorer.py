"""Automated design-space exploration — the paper's stated future work.

"We would like to develop a tool that automates the design space
exploration phase, which based on some heuristics will suggest good
solutions, with respect to performance requirements and physical
constraints" (§5). Two searchers over a :class:`DesignSpace`:

* :class:`ExhaustiveExplorer` — evaluate everything (the ground truth);
* :class:`GreedyExplorer` — the heuristic tool: start from the cheapest
  instance of each table option and take the single locally best move
  (add a bus / add an FU set / switch table option) until a feasible,
  constraint-satisfying design stops improving. Evaluations are cached,
  so its cost is the number of *distinct* designs visited.

The E1 benchmark shows the heuristic reaches the exhaustive optimum with
a fraction of the evaluations on the paper's space.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dse.config import ArchitectureConfiguration
from repro.dse.evaluator import EvaluationResult
from repro.dse.pareto import DesignConstraints, select_best
from repro.dse.protocols import Evaluator, supports_batching
from repro.dse.space import DesignSpace
from repro.errors import EvaluationFailureError, SimulationError

#: failure classes caused by the *infrastructure* (a worker process
#: died or wedged), not by the configuration itself — worth one retry
#: before the configuration is written off
_TRANSIENT_FAILURES = frozenset({"WorkerCrashError", "WorkerStallError"})


@dataclass
class ExplorationOutcome:
    best: Optional[EvaluationResult]
    evaluated: List[EvaluationResult] = field(default_factory=list)
    evaluations_used: int = 0
    #: configurations whose evaluation failed and were skipped by the
    #: search instead of aborting it
    failed: List[ArchitectureConfiguration] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"evaluations used: {self.evaluations_used}"]
        for config in self.failed:
            lines.append(f"quarantined: {config.describe()}")
        if self.best is None:
            lines.append("no configuration satisfies the constraints")
        else:
            lines.append(f"selected: {self.best.summary()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "best": self.best.to_dict() if self.best is not None else None,
            "evaluations_used": self.evaluations_used,
            "evaluated": [result.to_dict() for result in self.evaluated],
            "failed": [dataclasses.asdict(config)
                       for config in self.failed],
        }


def _score(result: EvaluationResult,
           constraints: DesignConstraints) -> Tuple[int, float]:
    """Lower is better: infeasible designs rank by how far the required
    clock overshoots; admissible ones by power."""
    if constraints.admits(result):
        power = (result.power.system_w if constraints.include_cam_power
                 else result.power.processor_w)
        return (0, power)
    return (1, result.required_clock_hz)


class ExhaustiveExplorer:
    def __init__(self, evaluator: Evaluator,
                 constraints: Optional[DesignConstraints] = None):
        self.evaluator = evaluator
        self.constraints = constraints or DesignConstraints()

    def explore(self, space: DesignSpace) -> ExplorationOutcome:
        configs = space.configurations()
        results: List[EvaluationResult] = []
        failed: List[ArchitectureConfiguration] = []
        if supports_batching(self.evaluator):
            # one call for the whole space: a pool-backed evaluator
            # (ParallelCampaignRunner) sweeps it concurrently
            for config, result in zip(
                    configs, self.evaluator.evaluate_batch(configs)):
                if result is None:
                    failed.append(config)
                else:
                    results.append(result)
        else:
            for config in configs:
                try:
                    results.append(self.evaluator.evaluate(config))
                except SimulationError:
                    failed.append(config)
        return ExplorationOutcome(
            best=select_best(results, self.constraints),
            evaluated=results,
            evaluations_used=len(configs),
            failed=failed)


class GreedyExplorer:
    """Hill climbing with restarts from each table option's cheapest point.

    Failures are classified before they become dead ends: a *transient*
    failure (a pool worker crashed or stalled under this configuration —
    infrastructure, not design) gets exactly one backoff retry; a
    *structural* one (budget overrun, functional mismatch, estimation
    error — properties of the design itself) is cached as a permanent
    ``None`` sentinel and never retried. *sleep_fn* is injectable so
    tests replay the backoff without waiting.
    """

    def __init__(self, evaluator: Evaluator,
                 constraints: Optional[DesignConstraints] = None,
                 retry_backoff_seconds: float = 0.05,
                 sleep_fn: Callable[[float], None] = time.sleep):
        self.evaluator = evaluator
        self.constraints = constraints or DesignConstraints()
        self.retry_backoff_seconds = retry_backoff_seconds
        self.sleep_fn = sleep_fn
        #: transient-failure retries attempted (at most one per config)
        self.transient_retries = 0
        #: keyed by the *logical* configuration (CAM search latency
        #: normalised away — the evaluator's fixed point re-resolves it),
        #: so restarts and repeated explore() calls reuse every result;
        #: ``None`` marks a configuration whose evaluation failed.
        self._cache: Dict[ArchitectureConfiguration,
                          Optional[EvaluationResult]] = {}
        self._retried: Set[ArchitectureConfiguration] = set()

    def explore(self, space: DesignSpace) -> ExplorationOutcome:
        best: Optional[EvaluationResult] = None
        starts = [ArchitectureConfiguration(
            bus_count=min(space.bus_counts),
            matchers=min(space.fu_set_counts),
            counters=min(space.fu_set_counts),
            comparators=min(space.fu_set_counts),
            table_kind=kind) for kind in space.table_kinds]
        # frontier expansion: a batch-capable evaluator (process pool)
        # takes all restart points in one concurrent call
        self._prefetch(starts)
        for start in starts:
            candidate = self._climb(start, space)
            if candidate is None:
                continue
            if best is None or (_score(candidate, self.constraints)
                                < _score(best, self.constraints)):
                best = candidate
        evaluated = [r for r in self._cache.values() if r is not None]
        failed = [c for c, r in self._cache.items() if r is None]
        final = best if best is not None and \
            self.constraints.admits(best) else None
        return ExplorationOutcome(best=final, evaluated=evaluated,
                                  evaluations_used=len(self._cache),
                                  failed=failed)

    # -- internals --------------------------------------------------------------------

    @staticmethod
    def _key(config: ArchitectureConfiguration) -> ArchitectureConfiguration:
        return config.with_cam_latency(1)

    def _prefetch(self, configs: Sequence[ArchitectureConfiguration]) -> None:
        """Evaluate every uncached configuration in one batch call.

        A no-op unless the evaluator supports batching, in which case a
        whole search frontier (all restart points, all neighbours of the
        current best) is evaluated concurrently instead of one at a time.
        """
        if not supports_batching(self.evaluator):
            return
        missing = []
        for config in configs:
            key = self._key(config)
            if key not in self._cache and key not in missing:
                missing.append(key)
        if not missing:
            return
        for key, result in zip(missing,
                               self.evaluator.evaluate_batch(missing)):
            self._cache[key] = result  # None marks a contained failure
        retryable = [key for key in missing
                     if self._cache[key] is None
                     and self._transient_reason(key) is not None
                     and key not in self._retried]
        if not retryable:
            return
        self._retried.update(retryable)
        self.transient_retries += len(retryable)
        self.sleep_fn(self.retry_backoff_seconds)
        for key in retryable:
            self.evaluator.forget_failure(key)
        for key, result in zip(retryable,
                               self.evaluator.evaluate_batch(retryable)):
            self._cache[key] = result  # still None => now structural

    def _transient_reason(self, key: ArchitectureConfiguration
                          ) -> Optional[str]:
        """The transient error class a batch evaluator recorded for
        *key*, when it exposes one (journal-backed runners do)."""
        reason_of = getattr(self.evaluator, "failure_reason", None)
        if reason_of is None or \
                not hasattr(self.evaluator, "forget_failure"):
            return None
        reason = reason_of(key)
        return reason if reason in _TRANSIENT_FAILURES else None

    def _evaluate(self, config: ArchitectureConfiguration
                  ) -> Optional[EvaluationResult]:
        key = self._key(config)
        if key not in self._cache:
            try:
                self._cache[key] = self.evaluator.evaluate(key)
            except SimulationError as exc:
                # One bad configuration must not abort the whole climb:
                # let the search route around it. Infrastructure-class
                # failures get a single backoff retry first; anything
                # structural becomes a permanent dead-end sentinel.
                self._cache[key] = None
                if self._should_retry(key, exc):
                    self.transient_retries += 1
                    self.sleep_fn(self.retry_backoff_seconds)
                    self.evaluator.forget_failure(key)
                    try:
                        self._cache[key] = self.evaluator.evaluate(key)
                    except SimulationError:
                        self._cache[key] = None
        return self._cache[key]

    def _should_retry(self, key: ArchitectureConfiguration,
                      exc: SimulationError) -> bool:
        if key in self._retried:
            return False
        self._retried.add(key)
        return (isinstance(exc, EvaluationFailureError)
                and exc.failure is not None
                and exc.failure.error in _TRANSIENT_FAILURES
                and hasattr(self.evaluator, "forget_failure"))

    def _neighbours(self, config: ArchitectureConfiguration,
                    space: DesignSpace) -> List[ArchitectureConfiguration]:
        out = []
        buses = sorted(space.bus_counts)
        sets = sorted(space.fu_set_counts)
        if config.bus_count in buses:
            i = buses.index(config.bus_count)
            if i + 1 < len(buses):
                out.append(replace(config, bus_count=buses[i + 1]))
        if config.matchers in sets:
            i = sets.index(config.matchers)
            if i + 1 < len(sets):
                n = sets[i + 1]
                out.append(replace(config, matchers=n, counters=n,
                                   comparators=n))
        return out

    def _climb(self, start: ArchitectureConfiguration,
               space: DesignSpace) -> Optional[EvaluationResult]:
        current = self._evaluate(start)
        if current is None:
            return None
        while True:
            neighbours = self._neighbours(current.config, space)
            self._prefetch(neighbours)  # all moves evaluated concurrently
            moves = [m for m in
                     (self._evaluate(n) for n in neighbours)
                     if m is not None]
            if not moves:
                return current
            best_move = min(moves, key=lambda r: _score(r, self.constraints))
            if _score(best_move, self.constraints) < _score(current,
                                                            self.constraints):
                current = best_move
            else:
                return current
