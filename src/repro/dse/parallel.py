"""Parallel design-space campaigns over a multiprocessing pool.

The paper's point is *fast* evaluation of protocol-processor design
spaces, and a sweep is embarrassingly parallel: every simulate+estimate
turn is independent of every other. :class:`ParallelCampaignRunner` fans
a sweep out over a process pool while keeping every guarantee of the
sequential :class:`~repro.dse.campaign.CampaignRunner` it extends:

* **one evaluator per worker** — the pool initializer builds the
  evaluator (workload, routes, golden router) once per process, so the
  per-configuration cost is simulation, not setup;
* **cheap transport** — configurations travel to workers as the existing
  :func:`~repro.dse.campaign.config_to_dict` payloads and results come
  back as journal records; area/power are reconstructed in the parent
  through the same pure estimation functions, so a parallel sweep is
  bit-for-bit identical to a sequential one;
* **chunked dispatch** — work is handed out in chunks to amortise IPC,
  with a bounded in-flight window so a pool crash only voids the work
  actually running;
* **per-worker cycle-budget enforcement** — each worker runs the same
  :func:`~repro.dse.campaign.evaluate_guarded` deadline/retry loop the
  sequential runner uses;
* **crashed workers are survivable** — if a worker process dies (signal,
  ``os._exit``, OOM kill), the pool is torn down, the configurations
  that were in flight are re-probed one at a time in a fresh
  single-worker pool, and any configuration that kills its prober is
  quarantined as an :class:`~repro.dse.campaign.EvaluationFailure` with
  error :class:`~repro.errors.WorkerCrashError`; everything else
  continues in a refilled pool;
* **deterministic output** — results are re-ordered to input order, so a
  parallel Table 1 renders byte-identically to the sequential one;
* **journal + resume keep working** — journal writes stay in the parent
  (fsync'd, append-only, exactly as before), and ``resume=True`` skips
  every already-journalled configuration *before* anything is
  dispatched to the pool.

With ``jobs=1`` no pool is created and the behaviour is exactly the
sequential runner's.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.campaign import (
    CampaignPolicy,
    CampaignResult,
    CampaignRunner,
    EvaluationFailure,
    config_key,
    config_to_dict,
    evaluate_guarded,
    failure_from_record,
    failure_to_record,
    result_from_record,
)
from repro.dse.config import ArchitectureConfiguration
from repro.dse.evaluator import EvaluationResult
from repro.errors import CampaignError, WorkerCrashError
from repro.obs import get_registry

#: work item: (journal key, configuration) — the key is precomputed in
#: the parent so workers never need to agree on canonicalisation
_Item = Tuple[str, ArchitectureConfiguration]

_worker_evaluator = None
_worker_policy = None


def _init_worker(factory, policy: CampaignPolicy) -> None:
    """Pool initializer: build the evaluator once per worker process."""
    global _worker_evaluator, _worker_policy
    _worker_evaluator = factory()
    _worker_policy = policy


def _evaluate_chunk(payloads: List[Dict[str, object]]
                    ) -> List[Dict[str, object]]:
    """Evaluate a chunk of config payloads; returns journal records.

    Runs in a worker. Every contained failure class is already folded
    into a ``failed`` record by :func:`evaluate_guarded`, so a returned
    list is always aligned with the input chunk.
    """
    records = []
    for payload in payloads:
        config = ArchitectureConfiguration(**payload)
        records.append(evaluate_guarded(_worker_evaluator, config,
                                        _worker_policy))
    return records


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the imported package);
    otherwise the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ParallelCampaignRunner(CampaignRunner):
    """A :class:`CampaignRunner` whose sweeps fan out over a process pool.

    Takes an *evaluator factory* rather than an evaluator so each worker
    (and the parent, for single ``evaluate`` calls) can build its own
    instance; the factory must be picklable — a top-level callable or a
    ``functools.partial`` over one.

    Satisfies both the :class:`~repro.dse.protocols.Evaluator` and
    :class:`~repro.dse.protocols.BatchEvaluator` protocols, so explorers
    running on top of it expand whole search frontiers concurrently.
    """

    def __init__(self, evaluator_factory,
                 jobs: int = 2,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 policy: Optional[CampaignPolicy] = None,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None):
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise CampaignError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if not callable(evaluator_factory):
            raise CampaignError(
                "evaluator_factory must be a callable returning an "
                "evaluator (it is invoked once per worker process)")
        super().__init__(evaluator_factory(), journal_path=journal_path,
                         resume=resume, policy=policy)
        self.evaluator_factory = evaluator_factory
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.start_method = start_method or default_start_method()
        #: worker deaths observed (pool teardowns), for reporting
        self.worker_crashes = 0
        # cumulative worker-busy seconds (sum of chunk latencies), the
        # numerator of the pool-utilisation gauge published per sweep
        self._busy_seconds = 0.0

    # -- sweep driver -------------------------------------------------------------

    def run(self, configs: Sequence[ArchitectureConfiguration]
            ) -> CampaignResult:
        """Sweep *configs*; results come back in input order regardless
        of completion order, so the rendered artifact is byte-identical
        to a sequential run's."""
        registry = get_registry()
        t0 = registry.time() if registry.enabled else 0.0
        self._busy_seconds = 0.0
        pending: List[_Item] = []
        dispatched = set()
        for config in configs:
            key = config_key(config)
            if key in self._records:
                if key in self._replayed_keys:
                    self._replayed_keys.discard(key)
                    self.resumed += 1
                    if registry.enabled:
                        registry.counter(
                            "dse_resumed_total",
                            "evaluations replayed from a journal").inc()
            elif key not in dispatched:
                dispatched.add(key)
                pending.append((key, config))
        if pending and self.jobs > 1:
            self._run_pool(pending)
            if registry.enabled:
                wall = registry.time() - t0
                if wall > 0:
                    registry.gauge(
                        "dse_worker_utilization",
                        "fraction of pool worker-seconds spent evaluating "
                        "during the most recent sweep"
                    ).set(min(self._busy_seconds / (wall * self.jobs), 1.0))
        for key, config in pending:
            # jobs == 1, or stragglers a dying pool never reached
            if key not in self._records:
                self._evaluate_fresh(config, key)

        ordered: List[Dict[str, object]] = []
        results: List[EvaluationResult] = []
        failures: List[EvaluationFailure] = []
        for config in configs:
            record = self._records[config_key(config)]
            ordered.append(record)
            if record["status"] == "ok":
                results.append(result_from_record(record))
            else:
                failures.append(failure_from_record(record))
        return CampaignResult(records=ordered, results=results,
                              failures=failures, resumed=self.resumed,
                              discarded_records=self.discarded_records)

    # -- pool orchestration -------------------------------------------------------

    def _run_pool(self, pending: List[_Item]) -> None:
        """Drive *pending* to completion across pool generations.

        Each generation either finishes cleanly or dies with a bounded
        set of in-flight suspects; suspects are resolved one by one in
        single-worker pools (crash -> quarantine, success -> record), so
        every generation makes strict progress and a deterministic
        crasher cannot deadlock or starve the sweep.
        """
        while pending:
            suspects = self._dispatch(pending)
            for key, config in suspects:
                self._probe(key, config)
            if suspects:
                self._after_broken_generation(len(suspects))
            pending = [(key, config) for key, config in pending
                       if key not in self._records]

    def _dispatch(self, pending: List[_Item]) -> List[_Item]:
        """One pool generation. Persists every completed record; returns
        the items that were in flight when the pool broke ([] = clean)."""
        registry = get_registry()
        chunk_seconds = registry.histogram(
            "dse_chunk_seconds",
            "wall-clock latency per dispatched pool chunk"
        ) if registry.enabled else None
        queue_depth = registry.gauge(
            "dse_inflight_chunks",
            "chunks dispatched to the pool and not yet completed"
        ) if registry.enabled else None
        chunks = self._chunked(pending)
        in_flight: Dict[object, List[_Item]] = {}
        submitted_at: Dict[object, float] = {}
        suspects: List[_Item] = []
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_init_worker,
            initargs=(self.evaluator_factory, self.policy))
        try:
            broken = False
            stalled = False
            while (chunks or in_flight) and not broken:
                # bounded window: at most one queued chunk per worker, so
                # a pool death voids little and suspects stay few
                while chunks and len(in_flight) < 2 * self.jobs:
                    chunk = chunks.pop(0)
                    try:
                        future = pool.submit(_evaluate_chunk, [
                            config_to_dict(config) for _, config in chunk])
                    except BrokenExecutor:
                        broken = True
                        suspects.extend(chunk)
                        break
                    in_flight[future] = chunk
                    if registry.enabled:
                        submitted_at[future] = registry.time()
                        registry.counter(
                            "dse_chunks_dispatched_total",
                            "chunks handed to the process pool").inc()
                if queue_depth is not None:
                    queue_depth.set(len(in_flight))
                if not in_flight:
                    break
                done, _ = wait(in_flight,
                               timeout=self._heartbeat_seconds(),
                               return_when=FIRST_COMPLETED)
                if not done:
                    # heartbeat deadline passed with zero completions: a
                    # supervisor may declare the pool stalled (terminate
                    # it and resolve the in-flight work via probes); the
                    # unsupervised default keeps waiting forever, which
                    # is the pre-supervision behaviour.
                    if self._handle_stall(pool, in_flight):
                        broken = True
                        stalled = True
                        for chunk in in_flight.values():
                            suspects.extend(chunk)
                        in_flight.clear()
                    continue
                # persist clean completions first: a future that finished
                # before the pool died still carries a usable result
                for future in done:
                    if future.exception() is None:
                        chunk = in_flight.pop(future)
                        self._observe_chunk(future, submitted_at,
                                            chunk_seconds, registry)
                        for (key, _), record in zip(chunk, future.result()):
                            self._persist(key, record)
                for future in done:
                    if future not in in_flight:
                        continue
                    chunk = in_flight.pop(future)
                    self._observe_chunk(future, submitted_at,
                                        chunk_seconds, registry)
                    exc = future.exception()
                    if isinstance(exc, BrokenExecutor):
                        broken = True
                        suspects.extend(chunk)
                    else:
                        # an exception escaped the worker's guarded loop
                        # (not a ReproError): contain it per config
                        for key, config in chunk:
                            self._persist(key, failure_to_record(
                                EvaluationFailure(
                                    config=config,
                                    error=type(exc).__name__,
                                    message=str(exc))))
            if broken:
                if not stalled:
                    # a stall is counted by its supervisor, not as a crash
                    self.worker_crashes += 1
                    if registry.enabled:
                        registry.counter(
                            "dse_worker_crashes_total",
                            "pool teardowns after a worker process died"
                        ).inc()
                for chunk in in_flight.values():
                    suspects.extend(chunk)
        finally:
            if queue_depth is not None:
                queue_depth.set(0)
            pool.shutdown(wait=False, cancel_futures=True)
        return suspects

    def _observe_chunk(self, future, submitted_at, chunk_seconds,
                       registry) -> None:
        t0 = submitted_at.pop(future, None)
        if t0 is None or chunk_seconds is None:
            return
        elapsed = registry.time() - t0
        self._busy_seconds += elapsed
        chunk_seconds.observe(elapsed)

    # -- supervision seams (no-ops here; see repro.service.supervisor) ------------

    def _heartbeat_seconds(self) -> Optional[float]:
        """Longest silence (no chunk completion) tolerated before the
        stall handler is consulted; ``None`` waits forever."""
        return None

    def _probe_timeout_seconds(self) -> Optional[float]:
        """Wall-clock ceiling for a single-config probe; ``None`` waits
        forever (a probe can only end by completing or dying)."""
        return None

    def _handle_stall(self, pool: ProcessPoolExecutor,
                      in_flight: Dict[object, List[_Item]]) -> bool:
        """Called when a heartbeat deadline passes with zero completions.

        Return True to declare the pool stalled: the dispatcher then
        treats every in-flight item as a suspect (exactly like a worker
        death) and the caller is expected to have terminated the stuck
        workers. The base runner never declares a stall.
        """
        return False

    def _after_broken_generation(self, suspects: int) -> None:
        """Called once per pool generation that ended broken (crash or
        stall), after its suspects were resolved. Supervisors use this
        for backoff and pool shrinking; the base runner does nothing."""

    @staticmethod
    def _terminate_pool_processes(pool: ProcessPoolExecutor) -> int:
        """Best-effort SIGTERM of a pool's worker processes.

        Needed when workers are *stuck*, not dead: ``shutdown`` would
        join them (blocking on the very stall being escaped), so the
        supervisor kills them first and lets the executor observe the
        deaths as a broken pool. Returns the number of processes
        signalled.
        """
        processes = getattr(pool, "_processes", None) or {}
        terminated = 0
        for process in list(processes.values()):
            try:
                process.terminate()
                terminated += 1
            except (OSError, ValueError):  # already dead / closed
                pass
        return terminated

    def _probe(self, key: str, config: ArchitectureConfiguration) -> None:
        """Re-run one crash suspect alone in a fresh single-worker pool.

        A clean result clears the suspect; a second death convicts it and
        it is quarantined as a :class:`WorkerCrashError` failure; a probe
        that exceeds the probe timeout (supervised runners only) is
        terminated and quarantined as a :class:`WorkerStallError`.
        """
        from repro.errors import WorkerStallError
        pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_init_worker,
            initargs=(self.evaluator_factory, self.policy))
        try:
            future = pool.submit(_evaluate_chunk, [config_to_dict(config)])
            try:
                [record] = future.result(
                    timeout=self._probe_timeout_seconds())
            except FuturesTimeoutError:
                self._terminate_pool_processes(pool)
                record = failure_to_record(EvaluationFailure(
                    config=config, error=WorkerStallError.__name__,
                    message=(f"probe of {config.describe()} made no "
                             f"progress within "
                             f"{self._probe_timeout_seconds()}s and was "
                             f"terminated")))
            except BrokenExecutor as exc:
                self.worker_crashes += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "dse_worker_crashes_total",
                        "pool teardowns after a worker process died").inc()
                record = failure_to_record(EvaluationFailure(
                    config=config, error=WorkerCrashError.__name__,
                    message=(f"worker process died evaluating "
                             f"{config.describe()}: {exc}")))
            except Exception as exc:
                record = failure_to_record(EvaluationFailure(
                    config=config, error=type(exc).__name__,
                    message=str(exc)))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        self._persist(key, record)

    def _chunked(self, pending: Sequence[_Item]) -> List[List[_Item]]:
        size = self.chunk_size
        if size is None:
            # aim for ~4 chunks per worker: coarse enough to amortise
            # IPC, fine enough to keep the pool busy to the end
            size = max(1, len(pending) // (self.jobs * 4))
        return [list(pending[i:i + size])
                for i in range(0, len(pending), size)]
