"""Process-level fault hooks: worker kills, stalls, and torn files.

The link-level (:mod:`repro.faults.model`) and datapath-level
(:mod:`repro.faults.datapath`) injectors attack the *simulated* system;
this module attacks the *execution substrate* the campaign service runs
on — worker processes and persisted state — so the service-level chaos
harness (:mod:`repro.service.chaos`) can prove recovery, not just hope
for it. Three fault families:

* :class:`ChaosEvaluatorFactory` — a picklable evaluator factory whose
  evaluators kill their own worker process (``os._exit``) or stall past
  a heartbeat deadline (``time.sleep``) on chosen configurations.
  "Once" semantics are kept across process boundaries with sentinel
  files: the first worker to reach the target config trips the fault and
  leaves a marker, so re-probes and retries then succeed — modelling a
  transient environmental fault (OOM kill, CPU starvation) rather than a
  deterministic crasher;
* :func:`corrupt_file` — seeded in-place bit flips, the model for disk
  bit rot in cache entries and journals;
* :func:`truncate_file` — cut a file short, the model for a torn write
  that an fsync'd rename would have prevented.

Everything is deterministic: bit flips derive from
:func:`repro.faults.seeds.derive_seed`, and sentinel files make the
kill/stall schedule independent of pool scheduling order.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.errors import FaultInjectionError
from repro.faults.seeds import derive_seed, make_rng


class _ChaosEvaluator:
    """Evaluator wrapper that injects process-level faults on targets.

    Built by :class:`ChaosEvaluatorFactory` inside the worker process;
    ``evaluate`` consults the sentinel directory before every injection
    so each fault fires at most once per campaign (across *all* workers,
    probes, and pool generations).
    """

    def __init__(self, evaluator, kill_key: Optional[str],
                 stall_key: Optional[str], stall_seconds: float,
                 sentinel_dir: str, exit_code: int):
        self.evaluator = evaluator
        self.kill_key = kill_key
        self.stall_key = stall_key
        self.stall_seconds = stall_seconds
        self.sentinel_dir = sentinel_dir
        self.exit_code = exit_code

    def _trip_once(self, kind: str) -> bool:
        """Atomically claim the one-shot fault *kind*; True if we won."""
        path = os.path.join(self.sentinel_dir, f"{kind}.tripped")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def evaluate(self, config, max_cycles=None):
        from repro.dse.campaign import config_key
        key = config_key(config)
        if self.kill_key is not None and key == self.kill_key \
                and self._trip_once("kill"):
            os._exit(self.exit_code)
        if self.stall_key is not None and key == self.stall_key \
                and self._trip_once("stall"):
            time.sleep(self.stall_seconds)
        return self.evaluator.evaluate(config, max_cycles=max_cycles)

    def __getattr__(self, name):
        # Same dunder guard as PoisonedEvaluator: pickle probes protocol
        # hooks before __dict__ exists, and forwarding them would recurse.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        evaluator = self.__dict__.get("evaluator")
        if evaluator is None:
            raise AttributeError(name)
        return getattr(evaluator, name)


class ChaosEvaluatorFactory:
    """Picklable factory of fault-injecting evaluators for pool workers.

    ``kill_config`` makes the first worker that evaluates it die with
    ``os._exit`` (a crash the pool sees as :class:`BrokenExecutor`, not
    a Python exception); ``stall_config`` makes the first worker that
    evaluates it sleep *stall_seconds* — long enough, by construction,
    to miss a supervised runner's heartbeat deadline. Both are one-shot
    via sentinel files under *sentinel_dir*, so the follow-up probe
    succeeds and the campaign can prove it recovered the result.
    """

    def __init__(self, inner_factory, *, sentinel_dir: str,
                 kill_config=None, stall_config=None,
                 stall_seconds: float = 5.0, exit_code: int = 13):
        if not callable(inner_factory):
            raise FaultInjectionError(
                "inner_factory must be a callable returning an evaluator")
        if kill_config is None and stall_config is None:
            raise FaultInjectionError(
                "ChaosEvaluatorFactory needs a kill_config and/or a "
                "stall_config to inject anything")
        from repro.dse.campaign import config_key
        self.inner_factory = inner_factory
        self.sentinel_dir = sentinel_dir
        self.kill_key = config_key(kill_config) \
            if kill_config is not None else None
        self.stall_key = config_key(stall_config) \
            if stall_config is not None else None
        self.stall_seconds = stall_seconds
        self.exit_code = exit_code
        os.makedirs(sentinel_dir, exist_ok=True)

    def __call__(self):
        return _ChaosEvaluator(self.inner_factory(), self.kill_key,
                               self.stall_key, self.stall_seconds,
                               self.sentinel_dir, self.exit_code)


def corrupt_file(path: str, *, seed: int, flips: int = 8,
                 stream: str = "file-corruption") -> int:
    """Flip *flips* seeded random bits of the file at *path* in place.

    Returns the number of bits actually flipped (less than *flips* only
    for an empty file). The flip positions derive from ``(seed, stream,
    path basename)``, so a chaos scenario corrupts the same bits on
    every machine.
    """
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        return 0
    rng = make_rng(derive_seed(seed, stream, os.path.basename(path)))
    flipped = 0
    for _ in range(flips):
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
        flipped += 1
    with open(path, "wb") as handle:
        handle.write(data)
    return flipped


def truncate_file(path: str, *, keep_fraction: float = 0.5) -> int:
    """Cut the file at *path* to ``keep_fraction`` of its size in place.

    Models a torn write / interrupted download. Returns the number of
    bytes removed. ``keep_fraction`` must be in ``[0, 1)`` — keeping the
    whole file would inject nothing.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise FaultInjectionError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}")
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return size - keep
