"""Shared seed derivation for every fault-injection stream.

All randomness in the fault layer flows from per-site ``random.Random``
generators whose seeds are *derived* from one experiment root seed. Two
properties matter:

* **stability** — the stream a site gets depends only on the root seed
  and the site's identity, never on registration order, dict iteration
  order, or how many other sites exist. Adding a fault site to an
  experiment must not silently reshuffle every other site's stream;
* **independence** — adjacent root seeds, and sibling sites under one
  root, get streams that do not overlap in practice.

Two derivation forms exist because they predate each other:

* :func:`spread_seed` is the legacy affine form
  (``root * SEED_STRIDE + index``) that :class:`~repro.faults.scenario.ChaosScenario`
  has always used for per-link models. It is pinned by regression test —
  changing it would silently re-roll every recorded chaos experiment;
* :func:`derive_seed` is the labelled form for named sites (the datapath
  injector's ``bus``/``operand``/... streams, sweep trials): a SHA-256
  digest of the root plus the label path, so any hashable-as-string
  identity gets a stable 64-bit seed with no ordering assumptions at all.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

#: spreads per-index seeds apart so index i and index i+1 never share a
#: random stream even for adjacent root seeds (legacy affine derivation)
SEED_STRIDE = 100003

_SeedPart = Union[int, str]


def spread_seed(root: int, index: int) -> int:
    """Legacy per-index derivation: ``root * SEED_STRIDE + index``.

    Kept bit-compatible with the original :class:`ChaosScenario` link
    seeding; the chaos-stream regression test pins this formula.
    """
    return root * SEED_STRIDE + index


def derive_seed(root: int, *parts: _SeedPart) -> int:
    """Stable 64-bit seed for the site identified by *parts* under *root*.

    Order of *parts* is significant (it is a path: ``("bus",)``,
    ``("trial", 3)``...), but the result never depends on what other
    sites exist or when they were registered. Uses SHA-256, not
    :func:`hash`, so the value is identical across processes and
    interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    text = "\x1f".join([str(int(root))] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int) -> random.Random:
    """The one constructor for fault-layer generators.

    Centralised so every injector draws from the same PRNG family; a
    future swap (e.g. to ``random.Random`` with a different algorithm)
    happens in exactly one place, guarded by the stream-pinning tests.
    """
    return random.Random(seed)
