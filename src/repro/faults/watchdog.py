"""Convergence watchdog: explain *why* a simulation is not converging.

``Network.run_until_converged`` used to answer non-convergence with a
bare ``converged=False``. The watchdog samples the network every round
and, on demand, produces a :class:`WatchdogDiagnosis` naming the routers
that are still emitting RIPng updates and the prefixes whose metrics
keep changing — the two observable symptoms of control-plane churn
(slow count-to-infinity, a flapping link, or a fault model eating
updates faster than they can refresh routes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.ipv6.ripng import METRIC_INFINITY

#: (router name, prefix text) -> last observed metric (INFINITY if expired)
_MetricKey = Tuple[str, str]


@dataclass
class WatchdogDiagnosis:
    """Why the control plane is (or was) still churning."""

    rounds_observed: int
    window_rounds: int
    churning_routers: Dict[str, int] = field(default_factory=dict)
    oscillating_prefixes: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def quiet(self) -> bool:
        return not self.churning_routers and not self.oscillating_prefixes

    def summary(self) -> str:
        if self.quiet:
            return (f"control plane quiet over the last "
                    f"{self.window_rounds} rounds")
        lines = [f"control plane churning (last {self.window_rounds} of "
                 f"{self.rounds_observed} observed rounds):"]
        for name, count in sorted(self.churning_routers.items()):
            lines.append(f"  {name}: emitted RIPng updates in "
                         f"{count} round(s)")
        for prefix, routers in sorted(self.oscillating_prefixes.items()):
            lines.append(f"  {prefix}: metric oscillating at "
                         f"{', '.join(sorted(routers))}")
        return "\n".join(lines)


class SimulationWatchdog:
    """Samples a :class:`~repro.router.network.Network` once per round.

    Call :meth:`observe` after every ``network.step()`` (or pass the
    watchdog to ``run_until_converged``, which does it for you), then
    :meth:`diagnose` to get the churn picture for the trailing window.
    """

    #: a prefix is "oscillating" when its metric changed at least this
    #: many times at one router inside the window
    OSCILLATION_THRESHOLD = 2

    def __init__(self, network, window_rounds: int = 64):
        self.network = network
        self.window_rounds = window_rounds
        self.rounds_observed = 0
        self._updates_sent: Dict[str, int] = {}
        self._metrics: Dict[_MetricKey, int] = {}
        # trailing window of per-round events
        self._churn_window: Deque[Set[str]] = deque(maxlen=window_rounds)
        self._change_window: Deque[List[_MetricKey]] = deque(
            maxlen=window_rounds)

    def observe(self) -> None:
        """Record one round: who sent updates, which metrics moved."""
        self.rounds_observed += 1
        churned: Set[str] = set()
        changed: List[_MetricKey] = []
        live: Set[_MetricKey] = set()
        for name, router in self.network.routers.items():
            engine = router.ripng
            if engine is None:
                continue
            sent = engine.updates_sent
            if sent != self._updates_sent.get(name, 0):
                churned.add(name)
                self._updates_sent[name] = sent
            for prefix, route in engine.routes.items():
                key = (name, str(prefix))
                live.add(key)
                metric = METRIC_INFINITY if route.expired else route.metric
                previous = self._metrics.get(key)
                if previous is not None and previous != metric:
                    changed.append(key)
                self._metrics[key] = metric
        # garbage collection removing a route is a metric change too
        for key in list(self._metrics):
            if key not in live:
                del self._metrics[key]
                changed.append(key)
        self._churn_window.append(churned)
        self._change_window.append(changed)

    def diagnose(self) -> WatchdogDiagnosis:
        """Summarise churn over the trailing window."""
        churning: Dict[str, int] = {}
        for round_set in self._churn_window:
            for name in round_set:
                churning[name] = churning.get(name, 0) + 1
        changes: Dict[_MetricKey, int] = {}
        for round_changes in self._change_window:
            for key in round_changes:
                changes[key] = changes.get(key, 0) + 1
        oscillating: Dict[str, List[str]] = {}
        for (name, prefix), count in changes.items():
            if count >= self.OSCILLATION_THRESHOLD:
                oscillating.setdefault(prefix, []).append(name)
        return WatchdogDiagnosis(
            rounds_observed=self.rounds_observed,
            window_rounds=min(self.window_rounds, self.rounds_observed),
            churning_routers=churning,
            oscillating_prefixes=oscillating)
