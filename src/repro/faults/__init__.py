"""Fault injection and resilience experiments for the router network.

The perfect-world simulation in :mod:`repro.router.network` becomes a
resilience testbed: seeded per-link :class:`FaultModel` (drop, bit-flip
corruption, duplication, reordering, latency + jitter), scripted
:class:`FlapSchedule` link outages, a :class:`SimulationWatchdog` that
explains non-convergence, and a :class:`ChaosScenario` runner that
composes them and reports a :class:`ResilienceReport`.
"""

from repro.faults.flaps import FlapEvent, FlapSchedule
from repro.faults.model import FaultModel, FaultStatistics
from repro.faults.scenario import (
    ChaosScenario,
    ResilienceReport,
    advertised_prefixes,
)
from repro.faults.watchdog import SimulationWatchdog, WatchdogDiagnosis

__all__ = [
    "FlapEvent", "FlapSchedule",
    "FaultModel", "FaultStatistics",
    "ChaosScenario", "ResilienceReport", "advertised_prefixes",
    "SimulationWatchdog", "WatchdogDiagnosis",
]
