"""Fault injection and resilience experiments for the router network.

The perfect-world simulation in :mod:`repro.router.network` becomes a
resilience testbed: seeded per-link :class:`FaultModel` (drop, bit-flip
corruption, duplication, reordering, latency + jitter), scripted
:class:`FlapSchedule` link outages, a :class:`SimulationWatchdog` that
explains non-convergence, and a :class:`ChaosScenario` runner that
composes them and reports a :class:`ResilienceReport`.

Below the network sits the processor datapath: the
:class:`DatapathFaultInjector` flips bits in bus transports, FU
operand/trigger/result latches, and socket decodes of the cycle-accurate
TTA simulator, feeding the differential oracle in :mod:`repro.verify`.
All randomness derives from one root seed via :mod:`repro.faults.seeds`.
"""

from repro.faults.control import (
    ATTACK_KINDS,
    AdversarialRipngAdvertiser,
    AssaultReport,
    ControlPlaneAssault,
    control_plane_drops,
)
from repro.faults.datapath import (
    FAULT_SITES,
    DatapathFault,
    DatapathFaultInjector,
)
from repro.faults.flaps import FlapEvent, FlapSchedule
from repro.faults.memory import (
    ENTRY_BITS,
    ENTRY_BYTES,
    MEMORY_SITES,
    MemoryFault,
    MemoryFaultInjector,
    corrupt_entry,
    pack_entry,
    unpack_entry_raw,
)
from repro.faults.model import FaultModel, FaultStatistics
from repro.faults.process import (
    ChaosEvaluatorFactory,
    corrupt_file,
    truncate_file,
)
from repro.faults.scenario import (
    ChaosScenario,
    ResilienceReport,
    advertised_prefixes,
)
from repro.faults.seeds import SEED_STRIDE, derive_seed, make_rng, spread_seed
from repro.faults.watchdog import SimulationWatchdog, WatchdogDiagnosis

__all__ = [
    "ATTACK_KINDS", "AdversarialRipngAdvertiser", "AssaultReport",
    "ControlPlaneAssault", "control_plane_drops",
    "FAULT_SITES", "DatapathFault", "DatapathFaultInjector",
    "FlapEvent", "FlapSchedule",
    "ENTRY_BITS", "ENTRY_BYTES", "MEMORY_SITES",
    "MemoryFault", "MemoryFaultInjector",
    "corrupt_entry", "pack_entry", "unpack_entry_raw",
    "FaultModel", "FaultStatistics",
    "ChaosEvaluatorFactory", "corrupt_file", "truncate_file",
    "ChaosScenario", "ResilienceReport", "advertised_prefixes",
    "SEED_STRIDE", "derive_seed", "make_rng", "spread_seed",
    "SimulationWatchdog", "WatchdogDiagnosis",
]
