"""Table-state soft-error injection: bit flips in the stored FIB.

The datapath injector (:mod:`repro.faults.datapath`) models upsets in
flight — bus transports and FU latches. At FIB scale the dominant
exposure is the *resident* state instead: megabytes of SRAM holding
entries, tree nodes, TCAM rows, trie pages, and Bloom counters sit in
the particle flux for the whole uptime of the router, not just for the
nanoseconds a value spends on a wire. This module flips bits in that
stored state, through the narrow memory seam every
:class:`~repro.routing.base.RoutingTable` implementation exposes:

* ``memory_sites()`` — which of the canonical :data:`MEMORY_SITES` the
  structure physically has;
* ``memory_record_count(site)`` / ``memory_record(site, index)`` — a
  deterministic enumeration of that site's records as raw bytes;
* ``corrupt_memory(site, index, bit)`` — flip one bit of one record
  *in the live structure*, exactly as an SEU would, bypassing every
  validation layer the software API enforces.

Determinism contract (the memory differential oracle depends on it):
each site owns a private generator seeded with
:func:`~repro.faults.seeds.derive_seed`\\ ``(seed, site)``, so a site's
flip sequence depends only on the root seed and the table contents —
injecting at another site never reshuffles it.

Entry corruption model
----------------------
Stored routes are modelled as a packed 304-bit record (network 128 +
length 8 + next hop 128 + interface 16 + metric 8 + route tag 16).
A flip is applied to the packed image and the record is rebuilt
*without validation* (``object.__new__`` construction): a corrupted
prefix length of 203 or a metric of 97 exists silently in memory, just
like real SRAM corruption, and only fails — if it fails at all — when a
lookup touches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.faults.seeds import derive_seed, make_rng
# The packing primitives live in repro.routing.memimage (a leaf below
# every table implementation) so the tables' corruption seams can use
# them without importing this package; re-exported here as the
# injection-facing API.
from repro.routing.memimage import (  # noqa: F401  (re-exports)
    ENTRY_BITS,
    ENTRY_BYTES,
    corrupt_entry,
    pack_entry,
    raw_address,
    raw_prefix,
    unpack_entry_raw,
)

#: canonical table-state fault sites, in application-precedence order
MEMORY_SITES: Tuple[str, ...] = (
    "entry",         # sequential: one packed route record in the array
    "tree-node",     # balanced tree: entry payload + enclosing pointer
    "cam-row",       # CAM: value/mask match lines + SRAM entry record
    "trie-node",     # multibit trie: child-pointer page of one node
    "trie-slot",     # multibit trie: one expanded (chunk, entry) slot
    "bloom-filter",  # Bloom bank: one length class's counter vector
    "bloom-bucket",  # Bloom bank: one off-filter hash-table bucket
)


@dataclass(frozen=True)
class MemoryFault:
    """One applied table-state upset, for post-mortem and pinning."""

    site: str
    index: int
    bit: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"site": self.site, "index": self.index, "bit": self.bit,
                "detail": self.detail}


class MemoryFaultInjector:
    """Seeded bit flips in the resident state of one routing table.

    One injector targets a subset of :data:`MEMORY_SITES` (default:
    whatever sites the table reports). Each strike picks, from the
    target site's private stream, a record index then a bit inside that
    record's image, and applies it through ``corrupt_memory``. Sites the
    table does not have — or sites whose record count is zero — absorb
    no strikes (the flip lands in unused silicon: trivially masked).
    """

    def __init__(self, seed: int = 0,
                 sites: Optional[Sequence[str]] = None,
                 max_records: int = 64):
        chosen = tuple(sites) if sites is not None else MEMORY_SITES
        unknown = sorted(set(chosen) - set(MEMORY_SITES))
        if unknown:
            raise FaultInjectionError(
                f"unknown memory sites {unknown}; "
                f"valid sites are {sorted(MEMORY_SITES)}")
        if max_records < 0:
            raise FaultInjectionError(
                f"max_records must be non-negative, got {max_records}")
        self.seed = seed
        #: canonical order regardless of how the caller listed them
        self.sites = tuple(s for s in MEMORY_SITES if s in chosen)
        self.max_records = max_records
        self.flips_applied = 0
        self.flips_by_site: Dict[str, int] = {s: 0 for s in self.sites}
        self.faults: List[MemoryFault] = []
        self._rngs = {site: make_rng(derive_seed(seed, site))
                      for site in self.sites}

    def inject(self, table, flips: int = 1) -> List[MemoryFault]:
        """Apply *flips* strikes to *table*; returns the applied faults.

        Strikes rotate over the injector's eligible sites in canonical
        order (one strike per site per round), so a multi-flip trial
        spreads damage the way independent particles would.
        """
        if flips < 0:
            raise FaultInjectionError(
                f"flips must be non-negative, got {flips}")
        eligible = [site for site in self.sites
                    if site in table.memory_sites()]
        applied: List[MemoryFault] = []
        if not eligible:
            return applied
        for strike in range(flips):
            site = eligible[strike % len(eligible)]
            rng = self._rngs[site]
            count = table.memory_record_count(site)
            if count < 1:
                continue  # empty site: the particle hit unused silicon
            index = rng.randrange(count)
            record = table.memory_record(site, index)
            if not record:
                continue
            bit = rng.randrange(len(record) * 8)
            detail = table.corrupt_memory(site, index, bit)
            fault = MemoryFault(site=site, index=index, bit=bit,
                                detail=detail)
            applied.append(fault)
            self.flips_applied += 1
            self.flips_by_site[site] += 1
            if len(self.faults) < self.max_records:
                self.faults.append(fault)
        return applied

    def stats(self) -> Dict[str, object]:
        """JSON-ready statistics (embedded in sweep trial records)."""
        return {
            "flips_applied": self.flips_applied,
            "flips_by_site": {site: count for site, count
                              in sorted(self.flips_by_site.items())
                              if count},
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def __repr__(self) -> str:
        return (f"<MemoryFaultInjector seed={self.seed} "
                f"sites={'/'.join(self.sites)} "
                f"applied={self.flips_applied}>")
