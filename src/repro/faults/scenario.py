"""Chaos scenarios: compose fault models and link flaps, assert recovery.

A :class:`ChaosScenario` wraps an existing
:class:`~repro.router.network.Network` and runs three phases:

1. **baseline** — converge the control plane (fault models are already
   live, so a lossy baseline is itself an experiment);
2. **chaos** — step through the scripted flap window plus any extra
   requested chaos time while a :class:`SimulationWatchdog` and a
   staleness tracker observe every round;
3. **recovery** — converge again and measure how long that took.

When nothing was scripted and no round of chaos ran (no flaps,
``chaos_seconds=0``), phases 2–3 are skipped entirely and the report
reproduces ``run_until_converged`` byte-for-byte — the scenario layer
costs nothing unless it injects something.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.faults.flaps import FlapSchedule
from repro.faults.model import FaultModel, FaultStatistics
from repro.faults.seeds import spread_seed
from repro.faults.watchdog import SimulationWatchdog, WatchdogDiagnosis
from repro.ipv6.address import Ipv6Prefix
from repro.ipv6.ripng import METRIC_INFINITY
from repro.router.network import ConvergenceReport, Network

#: factory mapping a link index to its fault model (None = leave clean)
FaultFactory = Callable[[int], Optional[FaultModel]]


@dataclass
class ResilienceReport:
    """Everything a resilience experiment needs to assert and publish."""

    converged: bool
    baseline: ConvergenceReport
    recovery: Optional[ConvergenceReport]
    chaos_rounds: int
    total_rounds: int
    messages_delivered: int
    time_to_reconverge: float
    worst_route_staleness: float
    frames: FaultStatistics
    frames_lost_link_down: int
    link_flaps_applied: int
    router_drops: Dict[str, int] = field(default_factory=dict)
    #: control-plane refusals in the shared vocabulary of
    #: :func:`repro.faults.control.control_plane_drops`, so chaos and
    #: conformance/assault reports name the same events identically
    control_drops: Dict[str, int] = field(default_factory=dict)
    peak_queue_depth: int = 0
    prefixes_checked: int = 0
    prefixes_disagreeing: List[str] = field(default_factory=list)
    diagnosis: Optional[WatchdogDiagnosis] = None

    @property
    def all_tables_agree(self) -> bool:
        return not self.prefixes_disagreeing

    def summary(self) -> str:
        lines = [
            f"converged: {self.converged} "
            f"(baseline {self.baseline.rounds} rounds, "
            f"chaos {self.chaos_rounds} rounds, "
            f"reconverged in {self.time_to_reconverge:g} s)",
            f"frames: {self.frames.injected} injected, "
            f"{self.frames.dropped} dropped, "
            f"{self.frames.corrupted} corrupted, "
            f"{self.frames.duplicated} duplicated, "
            f"{self.frames.reordered} reordered, "
            f"{self.frames.delayed} delayed, "
            f"{self.frames_lost_link_down} lost to down links",
            f"link flaps applied: {self.link_flaps_applied}",
            f"worst route staleness: {self.worst_route_staleness:g} s",
            f"peak line-card queue depth: {self.peak_queue_depth}",
        ]
        if self.router_drops:
            drops = ", ".join(f"{reason}={count}" for reason, count
                              in sorted(self.router_drops.items()))
            lines.append(f"router drops: {drops}")
        if self.control_drops:
            drops = ", ".join(f"{reason}={count}" for reason, count
                              in sorted(self.control_drops.items()))
            lines.append(f"control-plane drops: {drops}")
        lines.append(
            f"routing tables agree on {self.prefixes_checked - len(self.prefixes_disagreeing)}"
            f"/{self.prefixes_checked} advertised prefixes")
        if self.prefixes_disagreeing:
            lines.append("disagreeing: "
                         + ", ".join(self.prefixes_disagreeing))
        if self.diagnosis is not None and not self.diagnosis.quiet:
            lines.append(self.diagnosis.summary())
        return "\n".join(lines)

    def render(self) -> str:
        return self.summary()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (the common ``render``/``to_dict`` pair)."""
        def convergence(report: Optional[ConvergenceReport]):
            if report is None:
                return None
            return {"converged": report.converged,
                    "rounds": report.rounds,
                    "messages_delivered": report.messages_delivered,
                    "time_elapsed": report.time_elapsed}

        return {
            "converged": self.converged,
            "baseline": convergence(self.baseline),
            "recovery": convergence(self.recovery),
            "chaos_rounds": self.chaos_rounds,
            "total_rounds": self.total_rounds,
            "messages_delivered": self.messages_delivered,
            "time_to_reconverge": self.time_to_reconverge,
            "worst_route_staleness": self.worst_route_staleness,
            "frames": {
                "injected": self.frames.injected,
                "dropped": self.frames.dropped,
                "corrupted": self.frames.corrupted,
                "duplicated": self.frames.duplicated,
                "reordered": self.frames.reordered,
                "delayed": self.frames.delayed,
            },
            "frames_lost_link_down": self.frames_lost_link_down,
            "link_flaps_applied": self.link_flaps_applied,
            "router_drops": dict(self.router_drops),
            "control_drops": dict(self.control_drops),
            "peak_queue_depth": self.peak_queue_depth,
            "prefixes_checked": self.prefixes_checked,
            "prefixes_disagreeing": list(self.prefixes_disagreeing),
            "all_tables_agree": self.all_tables_agree,
        }


class _StalenessTracker:
    """Longest interval any router lacked a finite route to an
    advertised prefix, measured from the end of the baseline phase."""

    def __init__(self, network: Network, prefixes: List[Ipv6Prefix]):
        self.network = network
        self.prefixes = prefixes
        self.worst = 0.0
        self._stale_since: Dict[Tuple[str, Ipv6Prefix], float] = {}

    def observe(self) -> None:
        now = self.network.now
        for name, router in self.network.routers.items():
            if router.ripng is None:
                continue
            for prefix in self.prefixes:
                key = (name, prefix)
                metric = router.ripng.route_metric(prefix)
                stale = metric is None or metric >= METRIC_INFINITY
                if stale:
                    since = self._stale_since.setdefault(key, now)
                    self.worst = max(self.worst, now - since)
                elif key in self._stale_since:
                    since = self._stale_since.pop(key)
                    self.worst = max(self.worst, now - since)


def advertised_prefixes(network: Network) -> List[Ipv6Prefix]:
    """Every connected/static prefix any RIPng router originates."""
    prefixes = []
    seen = set()
    for router in network.routers.values():
        if router.ripng is None:
            continue
        for prefix, route in router.ripng.routes.items():
            if route.learned_from is None and prefix not in seen:
                seen.add(prefix)
                prefixes.append(prefix)
    return prefixes


class ChaosScenario:
    """One composed resilience experiment over a network."""

    def __init__(self, network: Network,
                 fault_factory: Optional[FaultFactory] = None,
                 flaps: Optional[FlapSchedule] = None,
                 chaos_seconds: float = 0.0,
                 max_rounds: int = 600,
                 quiet_rounds: int = 20,
                 recovery_max_rounds: int = 900,
                 settle_seconds: float = 1.0,
                 watch_window: int = 64):
        if chaos_seconds < 0:
            raise FaultInjectionError(
                f"chaos_seconds must be non-negative, got {chaos_seconds}")
        self.network = network
        self.fault_factory = fault_factory
        self.flaps = flaps
        self.chaos_seconds = chaos_seconds
        self.max_rounds = max_rounds
        self.quiet_rounds = quiet_rounds
        self.recovery_max_rounds = recovery_max_rounds
        self.settle_seconds = settle_seconds
        self.watch_window = watch_window
        self._models: List[FaultModel] = []
        self._ran = False

    @classmethod
    def uniform(cls, network: Network, seed: int = 0,
                drop: float = 0.0, corrupt: float = 0.0,
                duplicate: float = 0.0, reorder: float = 0.0,
                latency_steps: int = 0, jitter_steps: int = 0,
                **kwargs) -> "ChaosScenario":
        """Same fault parameters on every link, per-link derived seeds."""

        def factory(index: int) -> FaultModel:
            return FaultModel(seed=spread_seed(seed, index),
                              drop_probability=drop,
                              corrupt_probability=corrupt,
                              duplicate_probability=duplicate,
                              reorder_probability=reorder,
                              latency_steps=latency_steps,
                              jitter_steps=jitter_steps)

        return cls(network, fault_factory=factory, **kwargs)

    def run(self) -> ResilienceReport:
        if self._ran:
            raise FaultInjectionError(
                "a ChaosScenario is one-shot; build a new one to re-run")
        self._ran = True
        network = self.network

        if self.fault_factory is not None:
            for index, link in enumerate(network.links):
                model = self.fault_factory(index)
                if model is not None:
                    link.fault_model = model
                    self._models.append(model)
        if self.flaps is not None:
            network.set_flap_schedule(self.flaps)

        watchdog = SimulationWatchdog(network,
                                      window_rounds=self.watch_window)
        baseline = network.run_until_converged(
            max_rounds=self.max_rounds, quiet_rounds=self.quiet_rounds,
            watchdog=watchdog)

        staleness = _StalenessTracker(network, advertised_prefixes(network))
        chaos_end = network.now + self.chaos_seconds
        if self.flaps is not None and len(self.flaps):
            # run at least until the last scripted event has been applied
            # (plus a settle margin so its effect is observable)
            chaos_end = max(chaos_end,
                            self.flaps.end_time + self.settle_seconds)
        chaos_rounds = 0
        while network.now < chaos_end:
            network.step()
            watchdog.observe()
            staleness.observe()
            chaos_rounds += 1

        recovery: Optional[ConvergenceReport] = None
        time_to_reconverge = 0.0
        if chaos_rounds:
            recovery_start = network.now
            recovery = network.run_until_converged(
                max_rounds=self.recovery_max_rounds,
                quiet_rounds=self.quiet_rounds, watchdog=watchdog)
            staleness.observe()
            time_to_reconverge = network.now - recovery_start

        return self._build_report(baseline, recovery, chaos_rounds,
                                  time_to_reconverge, staleness, watchdog)

    def _build_report(self, baseline: ConvergenceReport,
                      recovery: Optional[ConvergenceReport],
                      chaos_rounds: int, time_to_reconverge: float,
                      staleness: _StalenessTracker,
                      watchdog: SimulationWatchdog) -> ResilienceReport:
        network = self.network
        frames = FaultStatistics()
        for model in self._models:
            frames.merge(model.stats)
        # local import: control.py imports advertised_prefixes from here
        from repro.faults.control import control_plane_drops
        router_drops: Dict[str, int] = {}
        control_drops: Dict[str, int] = {}
        peak_queue = 0
        for router in network.routers.values():
            for reason, count in router.stats.dropped.items():
                router_drops[reason] = router_drops.get(reason, 0) + count
            for reason, count in control_plane_drops(router).items():
                control_drops[reason] = \
                    control_drops.get(reason, 0) + count
            for card in router.line_cards:
                peak_queue = max(peak_queue, card.peak_depth)
        prefixes = staleness.prefixes or advertised_prefixes(network)
        disagreeing = [str(prefix) for prefix in prefixes
                       if not network.tables_agree_on(prefix)]
        final = recovery if recovery is not None else baseline
        converged = final.converged
        diagnosis = final.diagnosis
        if not converged and diagnosis is None:
            diagnosis = watchdog.diagnose()
        rounds = baseline.rounds + chaos_rounds \
            + (recovery.rounds if recovery is not None else 0)
        return ResilienceReport(
            converged=converged,
            baseline=baseline,
            recovery=recovery,
            chaos_rounds=chaos_rounds,
            total_rounds=rounds,
            messages_delivered=network.messages_delivered,
            time_to_reconverge=time_to_reconverge,
            worst_route_staleness=staleness.worst,
            frames=frames,
            frames_lost_link_down=network.frames_lost_link_down,
            link_flaps_applied=network.link_flaps_applied,
            router_drops=router_drops,
            control_drops=control_drops,
            peak_queue_depth=peak_queue,
            prefixes_checked=len(prefixes),
            prefixes_disagreeing=disagreeing,
            diagnosis=diagnosis)
