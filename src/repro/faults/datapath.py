"""Datapath soft-error injection for the TTA simulator.

Radiation-induced single-event upsets hit a protocol processor in its
datapath, not on its links: a bit flips on an interconnection bus while
a transport is in flight, in an FU's operand/trigger/result latch, or in
the socket address decode so a value lands on the *wrong* port. The
:class:`DatapathFaultInjector` models exactly these sites by chaining
onto :attr:`Simulator.transport_filter <repro.tta.simulator.Simulator>`,
the hook applied between the source read and the destination write.

Because the filter runs *before* ``move_hook`` observers, a stacked
:class:`~repro.tta.hazards.HazardDetector` or
:class:`~repro.tta.trace.TracingSimulator` sees the faulted transport —
like a bus monitor probing real interconnect wires — so detection
coverage can be measured honestly.

Determinism contract (the differential oracle depends on it):

* each fault site owns a private generator seeded with
  :func:`~repro.faults.seeds.derive_seed`\\ ``(seed, site)``, so a
  site's stream depends only on the root seed and the sequence of
  transports eligible for *that* site — enabling or re-rating another
  site never reshuffles it;
* on every transport each eligible site draws its full proposal
  (fire? which bit / which port?) from its own stream, and the first
  firing site in canonical :data:`FAULT_SITES` order is applied — at
  most one fault per transport, like a single particle strike;
* ``rate=0`` is *null*: no randomness is consumed and the filter is a
  pass-through, so an attached-but-disabled injector cannot perturb a
  run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.faults.seeds import derive_seed, make_rng
from repro.tta.instruction import Move
from repro.tta.ports import PortKind, PortRef

#: canonical fault sites, in application-precedence order
FAULT_SITES: Tuple[str, ...] = (
    "bus",       # any in-flight transport value
    "operand",   # writes landing in an OPERAND latch
    "trigger",   # writes landing in a TRIGGER latch (starts an operation)
    "result",    # values read out of a RESULT latch
    "socket",    # destination socket decode: value lands on a wrong port
)

#: TACO datapath width: upsets flip one of these bits
WORD_BITS = 32


@dataclass(frozen=True)
class DatapathFault:
    """One applied upset, for post-mortem and fixture pinning."""

    cycle: int
    pc: int
    bus: int
    site: str
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"cycle": self.cycle, "pc": self.pc, "bus": self.bus,
                "site": self.site, "detail": self.detail}


class DatapathFaultInjector:
    """Seeded single-event-upset injection on one :class:`Simulator`.

    ``rate`` is the per-site firing probability per eligible transport;
    ``max_faults`` caps total applied upsets (``None`` = unbounded), so
    a sweep can study single-fault behaviour with ``max_faults=1``.
    """

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 sites: Optional[Sequence[str]] = None,
                 max_faults: Optional[int] = None,
                 max_records: int = 64):
        if not 0.0 <= rate <= 1.0:
            raise FaultInjectionError(
                f"rate must be in [0, 1], got {rate}")
        if max_faults is not None and max_faults < 0:
            raise FaultInjectionError(
                f"max_faults must be non-negative, got {max_faults}")
        if max_records < 0:
            raise FaultInjectionError(
                f"max_records must be non-negative, got {max_records}")
        chosen = tuple(sites) if sites is not None else FAULT_SITES
        unknown = sorted(set(chosen) - set(FAULT_SITES))
        if unknown:
            raise FaultInjectionError(
                f"unknown fault sites {unknown}; "
                f"valid sites are {sorted(FAULT_SITES)}")
        self.seed = seed
        self.rate = rate
        #: canonical order regardless of how the caller listed them
        self.sites = tuple(s for s in FAULT_SITES if s in chosen)
        self.max_faults = max_faults
        self.max_records = max_records
        self.transports_observed = 0
        self.faults_injected = 0
        self.faults_by_site: Dict[str, int] = {s: 0 for s in self.sites}
        self.faults: List[DatapathFault] = []
        self._rngs = {site: make_rng(derive_seed(seed, site))
                      for site in self.sites}
        self._processor = None

    @property
    def is_null(self) -> bool:
        """True when the injector cannot affect a simulation at all."""
        return self.rate == 0.0 or not self.sites or self.max_faults == 0

    # -- wiring -----------------------------------------------------------------

    def attach(self, simulator):
        """Chain onto *simulator*'s transport filter; returns *simulator*.

        Chains like :meth:`HazardDetector.attach
        <repro.tta.hazards.HazardDetector.attach>`: an existing filter
        keeps running first, this injector transforms its output.
        """
        self._processor = simulator.processor
        previous = simulator.transport_filter
        if previous is None:
            simulator.transport_filter = self.filter_transport
        else:
            def chained(cycle, pc, bus, move, value):
                move, value = previous(cycle, pc, bus, move, value)
                return self.filter_transport(cycle, pc, bus, move, value)

            simulator.transport_filter = chained
        return simulator

    # -- the filter -------------------------------------------------------------

    def filter_transport(self, cycle: int, pc: int, bus: int,
                         move: Move, value: int) -> Tuple[Move, int]:
        """Transport filter: maybe apply one upset to this move."""
        self.transports_observed += 1
        if self.is_null:
            return move, value
        budget_left = (self.max_faults is None
                       or self.faults_injected < self.max_faults)
        applied = None
        for site in self.sites:
            if not self._eligible(site, move):
                continue
            proposal = self._propose(site, move, value)
            if proposal is not None and applied is None and budget_left:
                applied = (site,) + proposal
        if applied is None:
            return move, value
        site, move, value, detail = applied
        self.faults_injected += 1
        self.faults_by_site[site] += 1
        if len(self.faults) < self.max_records:
            self.faults.append(DatapathFault(
                cycle=cycle, pc=pc, bus=bus, site=site, detail=detail))
        return move, value

    def _eligible(self, site: str, move: Move) -> bool:
        if site == "bus" or site == "socket":
            return True
        if site == "result":
            return (isinstance(move.source, PortRef)
                    and self._port_kind(move.source) is PortKind.RESULT)
        kind = self._port_kind(move.destination)
        if site == "operand":
            return kind is PortKind.OPERAND
        if site == "trigger":
            return kind is PortKind.TRIGGER
        return False

    def _port_kind(self, ref: PortRef) -> PortKind:
        _fu, port = self._processor.resolve(ref)
        return port.kind

    def _propose(self, site: str, move: Move,
                 value: int) -> Optional[Tuple[Move, int, str]]:
        """Draw this site's full proposal from its own stream.

        Always consumes the same draws whether or not another site ends
        up winning the transport — per-site stream independence.
        """
        rng = self._rngs[site]
        if rng.random() >= self.rate:
            return None
        if site == "socket":
            misroute = self._misroute(rng, move, value)
            if misroute is not None:
                return misroute
            # FU with a single writable port: decode upset degenerates
            # to a data upset on the same wires
            bit = rng.randrange(WORD_BITS)
            return (move, value ^ (1 << bit),
                    f"socket decode bit flip (no alternative port), "
                    f"bit {bit} of {move.destination}")
        bit = rng.randrange(WORD_BITS)
        return (move, value ^ (1 << bit),
                f"bit {bit} flipped at {site} site "
                f"({move.source} -> {move.destination})")

    def _misroute(self, rng, move: Move,
                  value: int) -> Optional[Tuple[Move, int, str]]:
        fu, _port = self._processor.resolve(move.destination)
        candidates = sorted(
            name for name, port in fu.ports.items()
            if port.writable() and name != move.destination.port)
        if not candidates:
            return None
        wrong = candidates[rng.randrange(len(candidates))]
        faulted = Move(source=move.source,
                       destination=PortRef(move.destination.fu, wrong),
                       guard=move.guard)
        # value passes through unchanged — it just lands on the wrong latch
        return (faulted, value,
                f"socket misroute {move.destination} -> "
                f"{faulted.destination}")

    # -- reporting --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-ready statistics (embedded in sweep trial records)."""
        return {
            "transports_observed": self.transports_observed,
            "faults_injected": self.faults_injected,
            "faults_by_site": {site: count for site, count
                               in sorted(self.faults_by_site.items())
                               if count},
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def __repr__(self) -> str:
        return (f"<DatapathFaultInjector seed={self.seed} rate={self.rate} "
                f"sites={'/'.join(self.sites)} "
                f"injected={self.faults_injected}>")
