"""Scripted link flaps: take links down and up at fixed simulation times.

A :class:`FlapSchedule` is attached to a
:class:`~repro.router.network.Network` (``set_flap_schedule``); at the
start of each step the network applies every event whose time has come.
Because events are keyed to simulated time, a schedule is exactly as
deterministic as the simulation itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FaultInjectionError

Endpoint = Tuple[str, int]  # (router name, interface index)


@dataclass(frozen=True)
class FlapEvent:
    """One scripted state change for the link holding *endpoint*."""

    at: float
    endpoint: Endpoint
    up: bool


class FlapSchedule:
    """An ordered script of link down/up events.

    Built fluently::

        schedule = (FlapSchedule()
                    .flap(("r1", 1), down_at=40.0, up_at=340.0)
                    .link_down(500.0, ("r2", 0)))
    """

    def __init__(self) -> None:
        self._events: List[FlapEvent] = []
        self._cursor = 0
        self._sorted = True

    # -- construction -----------------------------------------------------------------

    def add(self, event: FlapEvent) -> "FlapSchedule":
        if event.at < 0:
            raise FaultInjectionError(
                f"flap event time must be non-negative, got {event.at}")
        if self._cursor:
            raise FaultInjectionError(
                "cannot extend a schedule that is already being consumed")
        self._events.append(event)
        self._sorted = False
        return self

    def link_down(self, at: float, endpoint: Endpoint) -> "FlapSchedule":
        return self.add(FlapEvent(at=at, endpoint=endpoint, up=False))

    def link_up(self, at: float, endpoint: Endpoint) -> "FlapSchedule":
        return self.add(FlapEvent(at=at, endpoint=endpoint, up=True))

    def flap(self, endpoint: Endpoint, down_at: float,
             up_at: float) -> "FlapSchedule":
        """Take the link down at *down_at* and bring it back at *up_at*."""
        if up_at <= down_at:
            raise FaultInjectionError(
                f"flap must come back up after it goes down "
                f"({down_at} -> {up_at})")
        return self.link_down(down_at, endpoint).link_up(up_at, endpoint)

    # -- consumption ------------------------------------------------------------------

    def due(self, now: float) -> List[FlapEvent]:
        """Pop (in order) every event scheduled at or before *now*."""
        if not self._sorted:
            # stable sort keeps same-time events in insertion order
            self._events.sort(key=lambda e: e.at)
            self._sorted = True
        start = self._cursor
        while self._cursor < len(self._events) \
                and self._events[self._cursor].at <= now:
            self._cursor += 1
        return self._events[start:self._cursor]

    def endpoints(self) -> List[Endpoint]:
        """Every endpoint the schedule touches (for early validation)."""
        seen: List[Endpoint] = []
        for event in self._events:
            if event.endpoint not in seen:
                seen.append(event.endpoint)
        return seen

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._events)

    @property
    def end_time(self) -> float:
        """Time of the last scripted event (0.0 for an empty schedule)."""
        return max((e.at for e in self._events), default=0.0)

    def __len__(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        self._cursor = 0
