"""Deterministic per-link fault model.

Real links lose, corrupt, duplicate, reorder, and delay frames; the seed
network simulation delivered every frame perfectly in the same step. A
:class:`FaultModel` sits on one :class:`~repro.router.network.Link` and
maps each offered frame to zero or more ``(delay_steps, frame)``
deliveries. All randomness comes from a private seeded generator, so a
scenario replays bit-for-bit given the same seed — the property every
resilience experiment in EXPERIMENTS.md depends on.

A model with every probability at zero and zero latency is *null*: it
consumes no randomness and returns the frame unchanged with no delay, so
attaching it cannot perturb a simulation (pay-for-what-you-use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FaultInjectionError
from repro.faults.seeds import make_rng

#: one scheduled delivery: (whole simulation steps to wait, frame bytes)
Delivery = Tuple[int, bytes]

#: reordering pushes a frame back by 1..MAX_REORDER_STEPS extra steps so
#: frames offered later can overtake it
MAX_REORDER_STEPS = 2


@dataclass
class FaultStatistics:
    """What one fault model did to the frames offered to its link."""

    injected: int = 0    # frames offered to the link
    dropped: int = 0     # vanished entirely
    corrupted: int = 0   # delivered with one bit flipped
    duplicated: int = 0  # delivered twice
    reordered: int = 0   # pushed back so a later frame can overtake
    delayed: int = 0     # deliveries scheduled >= 1 step in the future

    def merge(self, other: "FaultStatistics") -> None:
        self.injected += other.injected
        self.dropped += other.dropped
        self.corrupted += other.corrupted
        self.duplicated += other.duplicated
        self.reordered += other.reordered
        self.delayed += other.delayed


class FaultModel:
    """Seeded frame-level fault injection for one link direction-pair.

    Probabilities are per offered frame; ``latency_steps`` is a fixed
    in-flight delay and ``jitter_steps`` adds a uniform 0..N extra steps.
    """

    def __init__(self, seed: int = 0,
                 drop_probability: float = 0.0,
                 corrupt_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 reorder_probability: float = 0.0,
                 latency_steps: int = 0,
                 jitter_steps: int = 0):
        for name, value in (("drop_probability", drop_probability),
                            ("corrupt_probability", corrupt_probability),
                            ("duplicate_probability", duplicate_probability),
                            ("reorder_probability", reorder_probability)):
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be in [0, 1], got {value}")
        for name, value in (("latency_steps", latency_steps),
                            ("jitter_steps", jitter_steps)):
            if value < 0:
                raise FaultInjectionError(
                    f"{name} must be non-negative, got {value}")
        self.seed = seed
        self.drop_probability = drop_probability
        self.corrupt_probability = corrupt_probability
        self.duplicate_probability = duplicate_probability
        self.reorder_probability = reorder_probability
        self.latency_steps = latency_steps
        self.jitter_steps = jitter_steps
        self.stats = FaultStatistics()
        self._rng = make_rng(seed)

    @property
    def is_null(self) -> bool:
        """True when the model cannot affect traffic at all."""
        return (self.drop_probability == 0.0
                and self.corrupt_probability == 0.0
                and self.duplicate_probability == 0.0
                and self.reorder_probability == 0.0
                and self.latency_steps == 0
                and self.jitter_steps == 0)

    def transmit(self, raw: bytes) -> List[Delivery]:
        """Map one offered frame to its scheduled deliveries."""
        self.stats.injected += 1
        if self.is_null:
            # fast path: no RNG consumed, frame passes through unchanged
            return [(0, raw)]
        rng = self._rng
        if self.drop_probability and rng.random() < self.drop_probability:
            self.stats.dropped += 1
            return []
        copies = [raw]
        if self.duplicate_probability and \
                rng.random() < self.duplicate_probability:
            self.stats.duplicated += 1
            copies.append(raw)
        deliveries: List[Delivery] = []
        for frame in copies:
            if self.corrupt_probability and \
                    rng.random() < self.corrupt_probability:
                frame = self._flip_random_bit(frame)
                self.stats.corrupted += 1
            delay = self.latency_steps
            if self.jitter_steps:
                delay += rng.randint(0, self.jitter_steps)
            if self.reorder_probability and \
                    rng.random() < self.reorder_probability:
                delay += rng.randint(1, MAX_REORDER_STEPS)
                self.stats.reordered += 1
            if delay > 0:
                self.stats.delayed += 1
            deliveries.append((delay, frame))
        return deliveries

    def _flip_random_bit(self, raw: bytes) -> bytes:
        if not raw:
            return raw
        bit = self._rng.randrange(len(raw) * 8)
        flipped = bytearray(raw)
        flipped[bit // 8] ^= 1 << (bit % 8)
        return bytes(flipped)

    def __repr__(self) -> str:
        return (f"<FaultModel seed={self.seed} drop={self.drop_probability} "
                f"corrupt={self.corrupt_probability} "
                f"dup={self.duplicate_probability} "
                f"reorder={self.reorder_probability} "
                f"latency={self.latency_steps}+{self.jitter_steps}j>")
