"""Adversarial RIPng campaigns: hostile control-plane input, asserted safe.

The chaos layer (:mod:`repro.faults.scenario`) stresses the *transport*
under the control plane; this module attacks the control plane itself.
An :class:`AdversarialRipngAdvertiser` forges the datagrams a hostile
neighbour on a shared link could send — malformed RTEs, martian-prefix
poison, spoofed global next hops, route-withdrawal storms, and oversized
update bursts — and a :class:`ControlPlaneAssault` drives them into a
victim router between two watchdog-verified convergence phases.

The contract asserted is graceful degradation, the same one the
conformance suite checks on the data plane:

* no hostile datagram may raise out of the simulation loop;
* no hostile prefix may be installed in any routing table past
  validation;
* every refusal must be visible in :class:`RouterStatistics` (and the
  ``ripng_rejected_total`` observability counter);
* the network must re-converge once the attack stops.

All randomness derives from one root seed via per-attack-kind
:func:`~repro.faults.seeds.derive_seed` streams, so campaigns replay
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import FaultInjectionError
from repro.faults.scenario import advertised_prefixes
from repro.faults.seeds import derive_seed, make_rng
from repro.faults.watchdog import SimulationWatchdog, WatchdogDiagnosis
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.ipv6.header import PROTO_UDP
from repro.ipv6.packet import Ipv6Datagram
from repro.ipv6.ripng import (
    COMMAND_RESPONSE,
    MAX_RTES_PER_MESSAGE,
    METRIC_INFINITY,
    NextHopEntry,
    RIPNG_MULTICAST_GROUP,
    RIPNG_PORT,
    RipngMessage,
    RouteTableEntry,
    response,
)
from repro.ipv6.udp import UdpDatagram
from repro.router.network import ConvergenceReport, Network
from repro.router.router import Ipv6Router

#: every attack kind the advertiser can forge, in campaign order
ATTACK_KINDS: Tuple[str, ...] = (
    "malformed", "martian", "spoofed-next-hop", "withdrawal", "oversized")

#: prefixes no honest neighbour would advertise; all must be refused
_MARTIAN_POOL: Tuple[str, ...] = (
    "ff02::/16", "ff05:1234::/32", "fe80::/64", "fe80:0:0:7::/64",
    "::1/128", "::/16",
)


def control_plane_drops(router: Ipv6Router) -> Dict[str, int]:
    """One merged view of a router's control-plane refusals.

    Whole-datagram drops (``bad-ripng``, ``ripng-*``) come from
    ``stats.dropped``; RTE-level refusals come from
    ``stats.control_rejected`` and are namespaced ``rte-*`` so chaos,
    assault, and conformance reports all name the same events the same
    way.
    """
    drops: Dict[str, int] = {}
    for reason, count in router.stats.dropped.items():
        if reason == "bad-ripng" or reason.startswith("ripng-"):
            drops[reason] = drops.get(reason, 0) + count
    for reason, count in router.stats.control_rejected.items():
        key = f"rte-{reason}"
        drops[key] = drops.get(key, 0) + count
    return drops


class AdversarialRipngAdvertiser:
    """Forges hostile RIPng datagrams from a fake link-local neighbour."""

    def __init__(self, seed: int = 2080,
                 source: Optional[Ipv6Address] = None,
                 victim_prefixes: Sequence[Ipv6Prefix] = ()):
        self.source = source if source is not None \
            else Ipv6Address.parse("fe80::bad:1")
        self.victim_prefixes = list(victim_prefixes)
        self._rngs = {kind: make_rng(derive_seed(seed, "control", kind))
                      for kind in ATTACK_KINDS}
        #: every prefix advertised through an attack that validation must
        #: refuse — the assault asserts none of these are ever installed
        self.hostile_prefixes: Set[Ipv6Prefix] = set()
        self.sent: Dict[str, int] = {kind: 0 for kind in ATTACK_KINDS}

    # -- datagram factory ----------------------------------------------------------------

    def datagrams(self, kind: str, count: int) -> List[bytes]:
        """*count* hostile datagrams of one attack kind, seeded per kind."""
        if kind not in ATTACK_KINDS:
            raise FaultInjectionError(
                f"unknown attack kind {kind!r}; expected one of "
                f"{', '.join(ATTACK_KINDS)}")
        builder = getattr(self, "_" + kind.replace("-", "_") + "_payload")
        rng = self._rngs[kind]
        frames = [self._wrap(builder(rng)) for _ in range(count)]
        self.sent[kind] += count
        return frames

    def _wrap(self, payload: bytes) -> bytes:
        udp = UdpDatagram(source_port=RIPNG_PORT,
                          destination_port=RIPNG_PORT, payload=payload)
        datagram = Ipv6Datagram.build(
            source=self.source, destination=RIPNG_MULTICAST_GROUP,
            next_header=PROTO_UDP,
            payload=udp.to_bytes(self.source, RIPNG_MULTICAST_GROUP),
            hop_limit=255)
        return datagram.to_bytes()

    # -- payload builders (one per attack kind) ------------------------------------------

    def _malformed_payload(self, rng) -> bytes:
        """Byte garbage the codec must refuse with its documented error."""
        variant = rng.randrange(6)
        if variant == 0:  # truncated header
            return bytes(rng.randrange(256)
                         for _ in range(rng.randrange(4)))
        if variant == 1:  # ragged body: never a whole number of RTEs
            length = 4 + 20 * rng.randrange(4) + rng.randrange(1, 20)
            return bytes(rng.randrange(256) for _ in range(length))
        base = response([self._hostile_rte(rng)]).to_bytes()
        data = bytearray(base)
        if variant == 2:  # unknown command
            data[0] = rng.choice((0, 3, 4, 99, 255))
        elif variant == 3:  # unsupported version
            data[1] = rng.choice((0, 2, 255))
        elif variant == 4:  # metric outside 1..16 (and not the 0xFF marker)
            data[-1] = rng.choice((0, 17, 42, 200))
        else:  # next-hop RTE with non-zero must-be-zero fields
            data[-1] = 0xFF
            data[-4] = 1 + rng.randrange(255)
        return bytes(data)

    def _martian_payload(self, rng) -> bytes:
        """RTEs for prefixes that must never be routed (poison)."""
        entries = []
        for _ in range(rng.randrange(1, 5)):
            prefix = Ipv6Prefix.parse(rng.choice(_MARTIAN_POOL))
            self.hostile_prefixes.add(prefix)
            entries.append(RouteTableEntry(prefix=prefix,
                                           metric=rng.randrange(1, 16)))
        return response(entries).to_bytes()

    def _spoofed_next_hop_payload(self, rng) -> bytes:
        """Plausible prefixes behind a global (non-link-local) next hop —
        a redirection attempt; the receiver must refuse every RTE."""
        spoofed = Ipv6Address.parse(
            f"2001:db8:666::{rng.randrange(1, 0xFFFF):x}")
        entries: List[object] = [NextHopEntry(next_hop=spoofed)]
        for _ in range(rng.randrange(1, 4)):
            prefix = Ipv6Prefix.parse(
                f"2001:db8:bad:{rng.randrange(0x10000):x}::/64")
            self.hostile_prefixes.add(prefix)
            entries.append(RouteTableEntry(prefix=prefix,
                                           metric=rng.randrange(1, 4)))
        return RipngMessage(command=COMMAND_RESPONSE,
                            entries=tuple(entries)).to_bytes()

    def _withdrawal_payload(self, rng) -> bytes:
        """Metric-infinity RTEs for the victim's real prefixes: a spoofed
        withdrawal. RFC 2080 only honours infinity from the route's own
        gateway, so these must be ignored and every real route survive."""
        if not self.victim_prefixes:
            # no topology knowledge: fall back to martian poison
            return self._martian_payload(rng)
        count = min(len(self.victim_prefixes), rng.randrange(1, 6))
        chosen = rng.sample(self.victim_prefixes, count)
        return response([RouteTableEntry(prefix=p, metric=METRIC_INFINITY)
                         for p in chosen]).to_bytes()

    def _oversized_payload(self, rng) -> bytes:
        """More RTEs than fit the minimum IPv6 MTU: a resource-exhaustion
        burst the receiver must refuse wholesale before iterating it."""
        entries = []
        for i in range(MAX_RTES_PER_MESSAGE + rng.randrange(1, 40)):
            prefix = Ipv6Prefix.parse(
                f"2001:db8:f100:{(i + rng.randrange(0x1000)) & 0xFFFF:x}::/64")
            self.hostile_prefixes.add(prefix)
            entries.append(RouteTableEntry(prefix=prefix, metric=1))
        return response(entries).to_bytes()

    def _hostile_rte(self, rng) -> RouteTableEntry:
        prefix = Ipv6Prefix.parse(
            f"2001:db8:bad:{rng.randrange(0x10000):x}::/64")
        self.hostile_prefixes.add(prefix)
        return RouteTableEntry(prefix=prefix, metric=rng.randrange(1, 16))


@dataclass
class AssaultReport:
    """Outcome of one control-plane assault, with pass/fail verdicts."""

    baseline: ConvergenceReport
    recovery: ConvergenceReport
    attack_rounds: int
    injected: Dict[str, int]
    injection_refused: int
    exceptions: List[str]
    drops: Dict[str, int]
    poisoned_installed: List[str]
    prefixes_checked: int
    prefixes_lost: List[str]
    diagnosis: Optional[WatchdogDiagnosis] = None

    @property
    def reconverged(self) -> bool:
        return self.recovery.converged

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    @property
    def passed(self) -> bool:
        """The graceful-degradation contract, as one verdict."""
        return (not self.exceptions
                and not self.poisoned_installed
                and not self.prefixes_lost
                and self.reconverged
                and self.total_drops > 0)

    def summary(self) -> str:
        injected = ", ".join(f"{kind}={count}" for kind, count
                             in sorted(self.injected.items()) if count)
        drops = ", ".join(f"{reason}={count}" for reason, count
                          in sorted(self.drops.items()))
        lines = [
            f"assault: {'PASS' if self.passed else 'FAIL'} "
            f"({self.total_injected} hostile datagrams over "
            f"{self.attack_rounds} rounds)",
            f"injected: {injected or 'none'}",
            f"refused at ingress queue: {self.injection_refused}",
            f"control-plane drops: {drops or 'NONE (contract violation)'}",
            f"uncaught exceptions: {len(self.exceptions)}",
            f"poisoned routes installed: "
            f"{len(self.poisoned_installed)}",
            f"legitimate prefixes intact: "
            f"{self.prefixes_checked - len(self.prefixes_lost)}"
            f"/{self.prefixes_checked}",
            f"re-converged after attack: {self.reconverged} "
            f"(baseline {self.baseline.rounds} rounds, recovery "
            f"{self.recovery.rounds} rounds)",
        ]
        if self.exceptions:
            lines.append("exceptions: " + "; ".join(self.exceptions[:5]))
        if self.poisoned_installed:
            lines.append("poisoned: " + ", ".join(self.poisoned_installed))
        if self.prefixes_lost:
            lines.append("lost: " + ", ".join(self.prefixes_lost))
        if self.diagnosis is not None and not self.diagnosis.quiet:
            lines.append(self.diagnosis.summary())
        return "\n".join(lines)

    def render(self) -> str:
        return self.summary()

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "attack_rounds": self.attack_rounds,
            "injected": dict(self.injected),
            "total_injected": self.total_injected,
            "injection_refused": self.injection_refused,
            "exceptions": list(self.exceptions),
            "drops": dict(self.drops),
            "total_drops": self.total_drops,
            "poisoned_installed": list(self.poisoned_installed),
            "prefixes_checked": self.prefixes_checked,
            "prefixes_lost": list(self.prefixes_lost),
            "reconverged": self.reconverged,
            "baseline_rounds": self.baseline.rounds,
            "recovery_rounds": self.recovery.rounds,
        }


class ControlPlaneAssault:
    """Drive hostile RIPng at a victim between two convergence phases."""

    def __init__(self, network: Network, victim: Optional[str] = None,
                 interface: int = 0, seed: int = 2080,
                 attack_rounds: int = 30, burst_per_round: int = 2,
                 kinds: Sequence[str] = ATTACK_KINDS,
                 max_rounds: int = 600, quiet_rounds: int = 20,
                 watch_window: int = 64):
        if attack_rounds < 1:
            raise FaultInjectionError(
                f"attack_rounds must be positive, got {attack_rounds}")
        unknown = [k for k in kinds if k not in ATTACK_KINDS]
        if unknown:
            raise FaultInjectionError(
                f"unknown attack kinds: {', '.join(unknown)}")
        self.network = network
        self.victim = victim if victim is not None \
            else next(iter(network.routers))
        if self.victim not in network.routers:
            raise FaultInjectionError(
                f"victim {self.victim!r} is not in the network")
        self.interface = interface
        self.seed = seed
        self.attack_rounds = attack_rounds
        self.burst_per_round = burst_per_round
        self.kinds = tuple(kinds)
        self.max_rounds = max_rounds
        self.quiet_rounds = quiet_rounds
        self.watch_window = watch_window
        self._ran = False

    def run(self) -> AssaultReport:
        if self._ran:
            raise FaultInjectionError(
                "a ControlPlaneAssault is one-shot; build a new one")
        self._ran = True
        network = self.network
        victim = network.routers[self.victim]

        watchdog = SimulationWatchdog(network,
                                      window_rounds=self.watch_window)
        baseline = network.run_until_converged(
            max_rounds=self.max_rounds, quiet_rounds=self.quiet_rounds,
            watchdog=watchdog)

        prefixes = advertised_prefixes(network)
        advertiser = AdversarialRipngAdvertiser(
            seed=self.seed, victim_prefixes=prefixes)
        drops_before = {name: control_plane_drops(router)
                        for name, router in network.routers.items()}

        exceptions: List[str] = []
        refused = 0
        card = victim.line_cards[self.interface]
        for round_index in range(self.attack_rounds):
            kind = self.kinds[round_index % len(self.kinds)]
            for frame in advertiser.datagrams(kind, self.burst_per_round):
                if not card.deliver(frame):
                    refused += 1
            try:
                network.step()
            except Exception as exc:  # noqa: BLE001 -- the contract under test
                exceptions.append(f"{type(exc).__name__}: {exc}")
            watchdog.observe()

        recovery = network.run_until_converged(
            max_rounds=self.max_rounds, quiet_rounds=self.quiet_rounds,
            watchdog=watchdog)

        poisoned = sorted(
            str(prefix) for prefix in advertiser.hostile_prefixes
            if any(router.table.get(prefix) is not None
                   for router in network.routers.values()))
        lost = [str(prefix) for prefix in prefixes
                if not network.tables_agree_on(prefix)]
        drops: Dict[str, int] = {}
        for name, router in network.routers.items():
            before = drops_before.get(name, {})
            for reason, count in control_plane_drops(router).items():
                delta = count - before.get(reason, 0)
                if delta > 0:
                    drops[reason] = drops.get(reason, 0) + delta
        diagnosis = recovery.diagnosis
        if not recovery.converged and diagnosis is None:
            diagnosis = watchdog.diagnose()
        return AssaultReport(
            baseline=baseline, recovery=recovery,
            attack_rounds=self.attack_rounds,
            injected=dict(advertiser.sent),
            injection_refused=refused,
            exceptions=exceptions,
            drops=drops,
            poisoned_installed=poisoned,
            prefixes_checked=len(prefixes),
            prefixes_lost=lost,
            diagnosis=diagnosis)
