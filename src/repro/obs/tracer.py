"""Structured event/span tracing with an injectable clock.

Where :mod:`repro.obs.metrics` aggregates (how many, how long on
average), the tracer keeps *individual* records: a bounded log of spans
(named wall-clock intervals with attached fields) and point events. The
clock is injected (``time_fn``) so deterministic tests stay
deterministic — a test passes a fake counter and asserts exact
durations.

A tracer bound to a disabled :class:`~repro.obs.metrics.MetricsRegistry`
records nothing and never reads the clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry


@dataclass
class Span:
    """One named wall-clock interval with attached fields."""

    name: str
    start: float
    end: Optional[float] = None
    fields: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "start": self.start, "end": self.end,
                "duration": self.duration, "fields": dict(self.fields)}


@dataclass
class Event:
    """One named point-in-time record."""

    name: str
    at: float
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "at": self.at,
                "fields": dict(self.fields)}


class Tracer:
    """Bounded span/event log sharing the registry's enablement/clock."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 time_fn: Optional[Callable[[], float]] = None,
                 max_records: int = 4096):
        self._registry = registry
        self._time_fn = time_fn
        self.max_records = max_records
        self.spans: List[Span] = []
        self.events: List[Event] = []
        #: spans/events not recorded because the log was full
        self.dropped = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None \
            else get_registry()

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def _now(self) -> float:
        if self._time_fn is not None:
            return self._time_fn()
        return self.registry.time()

    @contextmanager
    def span(self, name: str,
             histogram: Optional[Histogram] = None,
             **fields: object) -> Iterator[Span]:
        """Record a wall-clock interval around the ``with`` body.

        When a *histogram* is supplied, the duration is also observed
        into it (unlabelled) on exit.
        """
        if not self.enabled:
            yield Span(name=name, start=0.0, end=0.0, fields=dict(fields))
            return
        span = Span(name=name, start=self._now(), fields=dict(fields))
        try:
            yield span
        finally:
            span.end = self._now()
            self._append(self.spans, span)
            if histogram is not None:
                histogram.observe(span.duration)

    def event(self, name: str, **fields: object) -> Optional[Event]:
        """Record a point event; returns it (None when disabled)."""
        if not self.enabled:
            return None
        record = Event(name=name, at=self._now(), fields=dict(fields))
        self._append(self.events, record)
        return record

    def _append(self, log: List, record) -> None:
        if len(log) >= self.max_records:
            self.dropped += 1
            return
        log.append(record)

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self.dropped = 0

    def to_dict(self) -> Dict[str, object]:
        return {"spans": [s.to_dict() for s in self.spans],
                "events": [e.to_dict() for e in self.events],
                "dropped": self.dropped}
