"""repro.obs — unified observability: metrics, spans, profiling hooks.

The layer every performance claim in this repository is proven against:
a process-wide :class:`MetricsRegistry` (counters, gauges, histograms
with labels) that the hot paths publish into, a structured span/event
:class:`Tracer` with an injectable clock, and deterministic
serialisation (``snapshot()``) surfaced as the ``metrics`` section of
every ``--output`` JSON, the ``taco-explore metrics`` subcommand, and
``repro.api.metrics()``.

Opt out with ``REPRO_NO_METRICS=1`` or ``get_registry().disable()`` —
disabled instruments cost one attribute check per call site.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_snapshot,
    set_registry,
)
from repro.obs.tracer import Event, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS_ENV",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "get_registry",
    "render_snapshot",
    "set_registry",
]
