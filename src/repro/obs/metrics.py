"""Process-wide metrics: counters, gauges, and histograms with labels.

The paper's whole method rests on *observing* architecture instances —
"the simulations yield functional correctness information as well as the
total cycle count of the application" plus module and bus utilisation.
This module is the production-scale generalisation of that idea: one
:class:`MetricsRegistry` per process into which every hot path
(simulation, campaigns, the router network, the routing tables) publishes
what it measured, renderable as a table (``taco-explore metrics``) and
serialisable as the ``metrics`` section of every ``--output`` JSON.

Design constraints, in priority order:

* **measurement must not perturb measurement** — instruments never touch
  the values that flow into results; they observe at run boundaries, so
  Table 1 and the explorer render byte-identically with metrics on or
  off;
* **near-zero cost when disabled** — every instrument call starts with a
  single attribute check (``registry.enabled``); set ``REPRO_NO_METRICS=1``
  in the environment or call :meth:`MetricsRegistry.disable` to turn the
  whole layer into no-ops;
* **deterministic serialisation** — :meth:`MetricsRegistry.snapshot`
  sorts every metric and label set, so two identical runs produce
  structurally identical documents (timing values naturally differ);
* **explicit time injection** — wall-clock reads go through the
  registry's ``time_fn`` so deterministic tests can inject a fake clock.

Metrics are process-local: a parallel campaign's pool workers publish
into their own (discarded) registries; the parent observes the pool from
the outside (chunk latencies, queue depth, worker utilisation).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

METRICS_ENV = "REPRO_NO_METRICS"
"""Set to ``1`` (or any non-empty value except ``0``) to disable metrics."""

#: default histogram buckets, in seconds: µs-scale simulator runs up to
#: minute-scale campaign sweeps
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[str, ...]


def _disabled_by_env() -> bool:
    value = os.environ.get(METRICS_ENV, "")
    return value not in ("", "0")


class _Instrument:
    """Shared naming/label plumbing for all three instrument kinds."""

    kind = "abstract"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 label_names: Sequence[str]):
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _key(self, labels: Dict[str, object]) -> _LabelKey:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.label_names)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.label_names)

    def _labelled(self, key: _LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Instrument):
    """A monotonically increasing count (events, cycles, frames...)."""

    kind = "counter"

    def __init__(self, registry, name, help, label_names):
        super().__init__(registry, name, help, label_names)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (amount={amount})")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def _snapshot_values(self) -> List[Dict[str, object]]:
        return [{"labels": self._labelled(key), "value": value}
                for key, value in sorted(self._values.items())]


class Gauge(_Instrument):
    """A point-in-time value (queue depth, utilisation, rates)."""

    kind = "gauge"

    def __init__(self, registry, name, help, label_names):
        super().__init__(registry, name, help, label_names)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def _snapshot_values(self) -> List[Dict[str, object]]:
        return [{"labels": self._labelled(key), "value": value}
                for key, value in sorted(self._values.items())]


class Histogram(_Instrument):
    """A distribution: cumulative bucket counts plus sum and count."""

    kind = "histogram"

    def __init__(self, registry, name, help, label_names,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, label_names)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ObservabilityError(
                f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds
        # per label set: [per-bucket counts..., +Inf count], sum, count
        self._series: Dict[_LabelKey, List[float]] = {}
        self._sums: Dict[_LabelKey, float] = {}
        self._counts: Dict[_LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = [0.0] * (len(self.buckets) + 1)
            self._series[key] = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series[i] += 1
                break
        else:
            series[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._counts.get(self._key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def mean(self, **labels: object) -> float:
        count = self.count(**labels)
        return self.sum(**labels) / count if count else 0.0

    def _snapshot_values(self) -> List[Dict[str, object]]:
        out = []
        for key in sorted(self._series):
            out.append({
                "labels": self._labelled(key),
                "count": self._counts[key],
                "sum": self._sums[key],
                "buckets": list(self._series[key]),
            })
        return out


class MetricsRegistry:
    """Get-or-create home for every instrument in one process.

    Instruments are identified by name; re-requesting a name returns the
    existing instrument (label names and kind must match — a mismatch is
    a programming error and raises :class:`ObservabilityError`).
    """

    def __init__(self, enabled: Optional[bool] = None,
                 time_fn: Optional[Callable[[], float]] = None):
        if enabled is None:
            enabled = not _disabled_by_env()
        self.enabled = bool(enabled)
        self.time_fn = time_fn or time.perf_counter
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------------

    def disable(self) -> None:
        """Turn every instrument into a no-op (one attribute check)."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        """Drop all recorded values (instrument definitions are kept)."""
        with self._lock:
            for instrument in self._instruments.values():
                for attr in ("_values", "_series", "_sums", "_counts"):
                    store = getattr(instrument, attr, None)
                    if store is not None:
                        store.clear()

    def time(self) -> float:
        """Read the injected clock (``time.perf_counter`` by default)."""
        return self.time_fn()

    # -- instrument factories -----------------------------------------------------

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(self, name, help, labels, **kwargs)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, requested {cls.kind}")
        if tuple(labels) != instrument.label_names:
            raise ObservabilityError(
                f"metric {name!r} already registered with labels "
                f"{list(instrument.label_names)}, requested {list(labels)}")
        return instrument

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Deterministic JSON-ready view of every instrument."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, instrument in instruments:
            entry = {
                "help": instrument.help,
                "label_names": list(instrument.label_names),
                "values": instrument._snapshot_values(),
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                histograms[name] = entry
            elif isinstance(instrument, Gauge):
                gauges[name] = entry
            else:
                counters[name] = entry
        return {
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render(self) -> str:
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Fixed-width text table for a :meth:`MetricsRegistry.snapshot`.

    Also accepts a full ``--output`` document (uses its ``metrics`` key).
    """
    if "metrics" in snapshot and "counters" not in snapshot:
        snapshot = snapshot["metrics"]  # a full --output document
    rows: List[Tuple[str, str, str, str]] = []
    for section, value_field in (("counters", "value"),
                                 ("gauges", "value")):
        for name, entry in sorted(snapshot.get(section, {}).items()):
            for sample in entry["values"]:
                rows.append((name, _format_labels(sample["labels"]),
                             _format_number(sample[value_field]),
                             entry.get("help", "")))
    for name, entry in sorted(snapshot.get("histograms", {}).items()):
        for sample in entry["values"]:
            count = sample["count"]
            mean = sample["sum"] / count if count else 0.0
            rows.append((name, _format_labels(sample["labels"]),
                         f"n={count} mean={mean:.6f}s",
                         entry.get("help", "")))
    if not rows:
        state = "enabled" if snapshot.get("enabled", True) else "disabled"
        return f"(no metrics recorded; registry {state})"
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    header = ("metric".ljust(widths[0]) + "  "
              + "labels".ljust(widths[1]) + "  "
              + "value".ljust(widths[2]) + "  help")
    lines = [header, "-" * len(header)]
    for name, labels, value, help_text in rows:
        lines.append(name.ljust(widths[0]) + "  " + labels.ljust(widths[1])
                     + "  " + value.ljust(widths[2]) + "  " + help_text)
    return "\n".join(lines)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


# -- the process-wide default registry ---------------------------------------------

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every hot path publishes into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
