"""Minimal Ethernet/MAC layer for conformance checking.

The repro router core is deliberately link-layer-free (the paper's TACO
datapath starts at the IPv6 header), but the forwarding contract the
conformance suite asserts includes two link-level behaviours every real
router exhibits: the *my-station check* (only frames addressed to the
port's MAC — or an IPv6 multicast MAC — enter the datapath) and the
*MAC rewrite* (egress frames carry the egress port's MAC as source and
the resolved next hop's MAC as destination). This module supplies just
enough Ethernet to check both: a 6-byte :class:`MacAddress`, a 14-byte
header :class:`EthernetFrame`, and a :class:`MacShim` that wraps an
:class:`~repro.router.router.Ipv6Router` without touching it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConformanceError
from repro.ipv6.address import Ipv6Address
from repro.router.router import Ipv6Router

ETHERTYPE_IPV6 = 0x86DD
ETHERNET_HEADER_BYTES = 14


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit IEEE MAC address."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != 6:
            raise ConformanceError(
                f"MAC address needs 6 bytes, got {len(self.value)}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ConformanceError(f"malformed MAC address: {text!r}")
        try:
            return cls(bytes(int(part, 16) for part in parts))
        except ValueError as exc:
            raise ConformanceError(
                f"malformed MAC address: {text!r}") from exc

    @classmethod
    def for_ipv6_multicast(cls, group: Ipv6Address) -> "MacAddress":
        """RFC 2464 §7: 33:33 followed by the group's low 32 bits."""
        return cls(b"\x33\x33" + group.to_bytes()[12:16])

    def is_multicast(self) -> bool:
        return bool(self.value[0] & 0x01)

    def to_bytes(self) -> bytes:
        return self.value

    def __str__(self) -> str:
        return ":".join(f"{byte:02x}" for byte in self.value)


@dataclass(frozen=True)
class EthernetFrame:
    """destination | source | ethertype | payload (no FCS)."""

    destination: MacAddress
    source: MacAddress
    ethertype: int
    payload: bytes

    def to_bytes(self) -> bytes:
        return (self.destination.to_bytes() + self.source.to_bytes()
                + self.ethertype.to_bytes(2, "big") + self.payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        if len(data) < ETHERNET_HEADER_BYTES:
            raise ConformanceError(
                f"truncated Ethernet frame: {len(data)} bytes")
        return cls(destination=MacAddress(bytes(data[0:6])),
                   source=MacAddress(bytes(data[6:12])),
                   ethertype=int.from_bytes(data[12:14], "big"),
                   payload=bytes(data[14:]))


def default_port_macs(count: int) -> List[MacAddress]:
    """Locally administered (02:...) MACs, one per router port."""
    return [MacAddress.parse(f"02:00:00:00:00:{index + 1:02x}")
            for index in range(count)]


class MacShim:
    """The link layer a conformance run wraps around one router.

    Ingress enforces the my-station check before :meth:`Ipv6Router.receive`
    ever sees the datagram (so shim drops are counted here, not in
    :class:`RouterStatistics` — the datapath never received them).
    Egress wraps every transmitted datagram in a frame whose source is
    the egress port's MAC and whose destination is the resolved next
    hop's MAC (the destination itself for on-link routes, the RFC 2464
    multicast mapping for multicast destinations).
    """

    def __init__(self, router: Ipv6Router,
                 neighbors: Optional[Dict[Ipv6Address, MacAddress]] = None,
                 port_macs: Optional[Sequence[MacAddress]] = None):
        self.router = router
        self.neighbors = dict(neighbors or {})
        self.port_macs = list(port_macs) if port_macs is not None \
            else default_port_macs(len(router.line_cards))
        if len(self.port_macs) != len(router.line_cards):
            raise ConformanceError(
                f"{len(self.port_macs)} port MACs for "
                f"{len(router.line_cards)} line cards")
        self.dropped: Dict[str, int] = {}

    # -- ingress ----------------------------------------------------------------------

    def receive_frame(self, interface: int, frame_bytes: bytes,
                      now: float = 0.0) -> bool:
        """One frame off the wire; False = refused before the datapath."""
        try:
            frame = EthernetFrame.from_bytes(frame_bytes)
        except ConformanceError:
            self._drop("bad-frame")
            return False
        if not self._my_station(interface, frame.destination):
            self._drop("not-my-station")
            return False
        if frame.ethertype != ETHERTYPE_IPV6:
            self._drop("bad-ethertype")
            return False
        self.router.receive(interface, frame.payload, now=now)
        return True

    def frame_for(self, interface: int, datagram: bytes,
                  source_mac: Optional[MacAddress] = None) -> bytes:
        """Wrap *datagram* as a host would send it to this router port."""
        return EthernetFrame(
            destination=self.port_macs[interface],
            source=source_mac or MacAddress.parse("02:aa:aa:aa:aa:01"),
            ethertype=ETHERTYPE_IPV6, payload=datagram).to_bytes()

    def _my_station(self, interface: int, destination: MacAddress) -> bool:
        if destination == self.port_macs[interface]:
            return True
        # IPv6-mapped multicast MACs (33:33:...) are always ours to see
        return destination.value[:2] == b"\x33\x33"

    def _drop(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    # -- egress -----------------------------------------------------------------------

    def collect_frames(self) -> Dict[int, List[EthernetFrame]]:
        """Drain every line card's egress, MAC-rewritten into frames."""
        out: Dict[int, List[EthernetFrame]] = {}
        for card in self.router.line_cards:
            if not card.transmitted:
                continue
            frames = [EthernetFrame(
                destination=self._resolve_destination_mac(raw),
                source=self.port_macs[card.index],
                ethertype=ETHERTYPE_IPV6, payload=raw)
                for raw in card.transmitted]
            card.transmitted.clear()
            out[card.index] = frames
        return out

    def _resolve_destination_mac(self, raw: bytes) -> MacAddress:
        destination = Ipv6Address.from_bytes(raw[24:40])
        if destination.is_multicast():
            return MacAddress.for_ipv6_multicast(destination)
        next_hop = destination
        result = self.router.table.lookup(destination)
        if result is not None and not result.entry.next_hop.is_unspecified():
            next_hop = result.entry.next_hop
        neighbor = self.neighbors.get(next_hop)
        if neighbor is None:
            raise ConformanceError(
                f"no neighbor MAC for next hop {next_hop} "
                f"(destination {destination})")
        return neighbor
