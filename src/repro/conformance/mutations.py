"""Deliberately broken routers and programs — the suite's own test.

A conformance suite that has never failed proves nothing. Each mutation
here plants one classic forwarding bug; running the matrix against a
mutant must produce case-level failures naming exactly the contract the
bug breaks. Functional mutants patch a fixture :class:`Ipv6Router`
instance in place; the program mutant regenerates the TACO forwarding
program with its hop-limit decrement removed, proving the datapath
cross-check (golden model vs cycle-accurate simulation) catches a broken
*program*, not just a broken Python model.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConformanceError
from repro.programs.forwarding import (
    MODE_BENCH,
    ForwardingProgramFactory,
)
from repro.programs.machine import RouterMachine
from repro.router.router import Ipv6Router
from repro.tta.memory import ProgramMemory
from repro.tta.ports import PortRef

P = PortRef


def _no_decrement(router: Ipv6Router) -> None:
    """Forward without decrementing the hop limit (re-increments on
    egress, which is byte-for-byte the same observable bug)."""
    for card in router.line_cards:
        original = card.transmit

        def patched(raw: bytes, _original=original) -> None:
            if len(raw) > 7:
                raw = raw[:7] + bytes([(raw[7] + 1) & 0xFF]) + raw[8:]
            _original(raw)

        card.transmit = patched  # type: ignore[method-assign]


def _forward_expired(router: Ipv6Router) -> None:
    """Forward packets whose hop limit already ran out (classic TTL bug:
    the expiry check is skipped, so hl<=1 packets loop forever)."""
    original = router.receive

    def patched(interface: int, raw: bytes, now: float = 0.0,
                _original=original) -> None:
        if len(raw) > 7 and raw[7] <= 1:
            raw = raw[:7] + b"\x02" + raw[8:]
        _original(interface, raw, now)

    router.receive = patched  # type: ignore[method-assign]


def _no_icmp(router: Ipv6Router) -> None:
    """Drop silently: no Time Exceeded, no Destination Unreachable."""
    router._icmp_error = (  # type: ignore[method-assign]
        lambda interface, raw, kind: None)


def _wrong_interface(router: Ipv6Router) -> None:
    """Egress lands one interface over (an off-by-one port map)."""
    cards = router.line_cards
    originals = [card.transmit for card in cards]
    for index, card in enumerate(cards):
        rotated = originals[(index + 1) % len(cards)]
        card.transmit = rotated  # type: ignore[method-assign]


#: name -> in-place patch of a fixture router
MUTANTS: Dict[str, Callable[[Ipv6Router], None]] = {
    "no-decrement": _no_decrement,
    "forward-expired": _forward_expired,
    "no-icmp": _no_icmp,
    "wrong-interface": _wrong_interface,
}


def apply_mutant(router: Ipv6Router, name: str) -> Ipv6Router:
    try:
        MUTANTS[name](router)
    except KeyError:
        raise ConformanceError(
            f"unknown mutant {name!r}; expected one of "
            f"{', '.join(sorted(MUTANTS))}") from None
    return router


class _NoDecrementProgramFactory(ForwardingProgramFactory):
    """The tuned forwarding program, minus the hop-limit store-back."""

    def _emit_found(self, b) -> None:
        b.block("found")
        # hand over to the oppu without writing back word1 - 1
        b.move(P("gpr", "r0"), P("oppu0", "o_ptr"))
        b.move(P("gpr", "r6"), P("oppu0", "t_send"))
        b.jump("wait")


def no_decrement_program(machine: RouterMachine) -> ProgramMemory:
    """``program_factory`` for :func:`repro.programs.runner.run_forwarding`
    that plants the no-decrement bug at the TTA level."""
    return _NoDecrementProgramFactory(machine, mode=MODE_BENCH).assemble()


#: name -> program factory for the datapath cross-check
PROGRAM_MUTANTS: Dict[str, Callable[[RouterMachine], ProgramMemory]] = {
    "program-no-decrement": no_decrement_program,
}
