"""Table-driven forwarding conformance suite (PTF-style).

The matrix crosses packet kind (tcpv6/udpv6/icmpv6), destination class
(on-link / LPM-matched / default / no-route) and hop limit (64/1/0),
asserts the full forwarding contract per case, and cross-checks the
cycle-accurate TTA datapath against the golden model. Run it via
:func:`run_conformance`, ``repro.api.conformance()`` or the
``conformance`` CLI subcommand.
"""

from repro.conformance.cases import (
    ConformanceCase,
    DEST_CLASSES,
    EXPECT_DEST_UNREACHABLE,
    EXPECT_FORWARD,
    EXPECT_LINK_DROP,
    EXPECT_TIME_EXCEEDED,
    HOP_LIMITS,
    PACKET_KINDS,
    build_fixture,
    build_matrix,
    build_packet,
    expected_verdict,
    fixture_routes,
    neighbor_macs,
)
from repro.conformance.harness import (
    CaseResult,
    ConformanceReport,
    STATUS_FAIL,
    STATUS_PASS,
    STATUS_SKIP,
    datapath_packets,
    run_case,
    run_conformance,
    run_datapath_check,
)
from repro.conformance.mac import (
    ETHERTYPE_IPV6,
    EthernetFrame,
    MacAddress,
    MacShim,
    default_port_macs,
)
from repro.conformance.mutations import (
    MUTANTS,
    PROGRAM_MUTANTS,
    apply_mutant,
    no_decrement_program,
)

__all__ = [
    "CaseResult",
    "ConformanceCase",
    "ConformanceReport",
    "DEST_CLASSES",
    "ETHERTYPE_IPV6",
    "EXPECT_DEST_UNREACHABLE",
    "EXPECT_FORWARD",
    "EXPECT_LINK_DROP",
    "EXPECT_TIME_EXCEEDED",
    "EthernetFrame",
    "HOP_LIMITS",
    "MUTANTS",
    "MacAddress",
    "MacShim",
    "PACKET_KINDS",
    "PROGRAM_MUTANTS",
    "STATUS_FAIL",
    "STATUS_PASS",
    "STATUS_SKIP",
    "apply_mutant",
    "build_fixture",
    "build_matrix",
    "build_packet",
    "datapath_packets",
    "default_port_macs",
    "expected_verdict",
    "fixture_routes",
    "neighbor_macs",
    "no_decrement_program",
    "run_case",
    "run_conformance",
    "run_datapath_check",
]
