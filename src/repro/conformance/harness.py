"""Run the conformance matrix and report per-case verdicts.

Every case gets a *fresh* fixture router (no cross-case state), is
pushed through the link layer when the MAC shim is enabled, and has the
full forwarding contract asserted: egress interface (LPM selection),
hop-limit decrement, transport-checksum preservation, ICMPv6 Time
Exceeded / Destination Unreachable generation (addressed back to the
offending source, checksummed, embedding the invoking packet), and the
my-station / MAC-rewrite behaviour. A final *datapath* case cross-checks
the cycle-accurate TTA simulation against the golden model over the
same fixture routes — the hook where program mutants must fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.cases import (
    ConformanceCase,
    DESTINATIONS,
    DEST_CLASSES,
    EXPECT_DEST_UNREACHABLE,
    EXPECT_FORWARD,
    EXPECT_LINK_DROP,
    EXPECT_TIME_EXCEEDED,
    GATEWAY_DEFAULT,
    GATEWAY_LPM_SPECIFIC,
    HOP_LIMITS,
    INGRESS_INTERFACE,
    PACKET_KINDS,
    ROUTER_ADDRESSES,
    SOURCE_HOST,
    build_fixture,
    build_matrix,
    build_packet,
    fixture_routes,
    neighbor_macs,
)
from repro.conformance.mac import (
    ETHERTYPE_IPV6,
    EthernetFrame,
    MacAddress,
    MacShim,
)
from repro.conformance.mutations import MUTANTS, PROGRAM_MUTANTS, apply_mutant
from repro.dse.config import ArchitectureConfiguration
from repro.errors import ConformanceError, ReproError
from repro.ipv6.address import Ipv6Address
from repro.ipv6.checksum import verify_transport_checksum
from repro.ipv6.icmpv6 import (
    Icmpv6Message,
    TYPE_DESTINATION_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
)
from repro.ipv6.packet import Ipv6Datagram
from repro.obs import get_registry
from repro.programs.runner import RunOptions, run_forwarding

STATUS_PASS = "pass"
STATUS_FAIL = "fail"
STATUS_SKIP = "skip"


@dataclass
class CaseResult:
    case_id: str
    status: str
    detail: str = ""


@dataclass
class ConformanceReport:
    """Pass/fail/skip per case, renderable like every other result type."""

    table_kind: str
    config_description: str
    mac_enabled: bool
    mutant: Optional[str]
    results: List[CaseResult] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {STATUS_PASS: 0, STATUS_FAIL: 0, STATUS_SKIP: 0}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    @property
    def passed(self) -> bool:
        return self.counts[STATUS_FAIL] == 0

    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if r.status == STATUS_FAIL]

    def summary(self) -> str:
        counts = self.counts
        lines = [
            f"conformance [{self.table_kind}] "
            f"{'PASS' if self.passed else 'FAIL'}: "
            f"{counts[STATUS_PASS]} passed, {counts[STATUS_FAIL]} failed, "
            f"{counts[STATUS_SKIP]} skipped "
            f"({len(self.results)} cases, MAC shim "
            f"{'on' if self.mac_enabled else 'off'}"
            + (f", mutant {self.mutant!r}" if self.mutant else "") + ")",
            f"datapath: {self.config_description}",
        ]
        for result in self.results:
            marker = {STATUS_PASS: "ok  ", STATUS_FAIL: "FAIL",
                      STATUS_SKIP: "skip"}[result.status]
            line = f"  {marker} {result.case_id}"
            if result.detail and result.status != STATUS_PASS:
                line += f" — {result.detail}"
            lines.append(line)
        return "\n".join(lines)

    def render(self) -> str:
        return self.summary()

    def to_dict(self) -> Dict[str, object]:
        return {
            "table_kind": self.table_kind,
            "config": self.config_description,
            "mac_enabled": self.mac_enabled,
            "mutant": self.mutant,
            "passed": self.passed,
            "counts": self.counts,
            "cases": [{"id": r.case_id, "status": r.status,
                       "detail": r.detail} for r in self.results],
        }


# -- single-case execution ---------------------------------------------------------------


def run_case(case: ConformanceCase, table_kind: str,
             use_mac: bool = True,
             mutant: Optional[str] = None) -> CaseResult:
    """One case against one fresh fixture router."""
    if case.requires_mac and not use_mac:
        return CaseResult(case.case_id, STATUS_SKIP,
                          "needs the MAC shim (disabled)")
    router = build_fixture(table_kind,
                           include_default=case.dest_class != "no-route")
    if mutant is not None and mutant in MUTANTS:
        apply_mutant(router, mutant)
    neighbors = neighbor_macs()
    shim = MacShim(router, neighbors=neighbors) if use_mac else None
    raw = case.build()

    if shim is not None:
        shim.receive_frame(INGRESS_INTERFACE,
                           _ingress_frame(case, shim, raw))
    else:
        router.receive(INGRESS_INTERFACE, raw)

    problems: List[str] = []
    try:
        if shim is not None:
            frames = shim.collect_frames()
            egress: Dict[int, List[bytes]] = {
                iface: [frame.payload for frame in batch]
                for iface, batch in frames.items()}
        else:
            frames = {}
            egress = {}
            for card in router.line_cards:
                if card.transmitted:
                    egress[card.index] = list(card.transmitted)
                    card.transmitted.clear()
    except ConformanceError as exc:
        return CaseResult(case.case_id, STATUS_FAIL,
                          f"egress MAC resolution failed: {exc}")

    if case.expectation == EXPECT_FORWARD:
        problems += _check_forward(case, router, raw, egress, frames,
                                   neighbors if use_mac else None,
                                   shim)
    elif case.expectation == EXPECT_TIME_EXCEEDED:
        problems += _check_icmp_error(case, router, raw, egress,
                                      TYPE_TIME_EXCEEDED,
                                      "hop-limit-exceeded")
    elif case.expectation == EXPECT_DEST_UNREACHABLE:
        problems += _check_icmp_error(case, router, raw, egress,
                                      TYPE_DESTINATION_UNREACHABLE,
                                      "no-route")
    elif case.expectation == EXPECT_LINK_DROP:
        problems += _check_link_drop(case, router, shim, egress)
    else:
        problems.append(f"unknown expectation {case.expectation!r}")

    if problems:
        return CaseResult(case.case_id, STATUS_FAIL, "; ".join(problems))
    return CaseResult(case.case_id, STATUS_PASS)


def _ingress_frame(case: ConformanceCase, shim: MacShim,
                   raw: bytes) -> bytes:
    if case.mac_addressing == "wrong":
        return EthernetFrame(
            destination=MacAddress.parse("02:ff:ff:ff:ff:99"),
            source=MacAddress.parse("02:aa:aa:aa:aa:05"),
            ethertype=ETHERTYPE_IPV6, payload=raw).to_bytes()
    if case.mac_addressing == "bad-ethertype":
        return EthernetFrame(
            destination=shim.port_macs[INGRESS_INTERFACE],
            source=MacAddress.parse("02:aa:aa:aa:aa:05"),
            ethertype=0x0800, payload=raw).to_bytes()
    return shim.frame_for(INGRESS_INTERFACE, raw)


def _check_forward(case: ConformanceCase, router, raw: bytes,
                   egress: Dict[int, List[bytes]],
                   frames: Dict[int, List[EthernetFrame]],
                   neighbors: Optional[Dict[Ipv6Address, MacAddress]],
                   shim: Optional[MacShim]) -> List[str]:
    problems: List[str] = []
    iface = case.expected_interface
    sent = egress.get(iface, [])
    if len(sent) != 1:
        problems.append(
            f"expected 1 datagram out interface {iface}, got "
            f"{ {i: len(batch) for i, batch in egress.items()} or 'none'}")
        return problems
    for other, batch in egress.items():
        if other != iface and batch:
            problems.append(
                f"unexpected egress on interface {other} ({len(batch)})")
    forwarded = sent[0]
    expected = raw[:7] + bytes([raw[7] - 1]) + raw[8:]
    if forwarded != expected:
        if len(forwarded) == len(raw) and forwarded[7] != raw[7] - 1:
            problems.append(
                f"hop limit {raw[7]} -> {forwarded[7]}, expected "
                f"{raw[7] - 1}")
        else:
            problems.append("forwarded bytes differ beyond the hop limit")
    problems += _check_checksum_preserved(forwarded)
    if router.stats.forwarded != 1:
        problems.append(
            f"stats.forwarded == {router.stats.forwarded}, expected 1")
    if neighbors is not None and shim is not None and not problems:
        problems += _check_mac_rewrite(case, frames[iface][0],
                                       neighbors, shim)
    return problems


def _check_checksum_preserved(forwarded: bytes) -> List[str]:
    """The transport checksum must still verify after forwarding (the
    hop limit is outside the pseudo-header, so a correct router changes
    nothing the checksum covers)."""
    try:
        datagram = Ipv6Datagram.from_bytes(forwarded)
        ok = verify_transport_checksum(
            datagram.header.source, datagram.header.destination,
            datagram.upper_layer_protocol, datagram.payload)
    except ReproError as exc:
        return [f"forwarded datagram unparseable: {exc}"]
    if not ok:
        return ["transport checksum no longer verifies after forwarding"]
    return []


def _expected_next_hop(case: ConformanceCase) -> Ipv6Address:
    if case.dest_class == "on-link":
        return case.destination
    if case.dest_class == "lpm":
        return GATEWAY_LPM_SPECIFIC
    return GATEWAY_DEFAULT


def _check_mac_rewrite(case: ConformanceCase, frame: EthernetFrame,
                       neighbors: Dict[Ipv6Address, MacAddress],
                       shim: MacShim) -> List[str]:
    problems: List[str] = []
    expected_source = shim.port_macs[case.expected_interface]
    if frame.source != expected_source:
        problems.append(
            f"egress source MAC {frame.source}, expected port MAC "
            f"{expected_source}")
    expected_destination = neighbors[_expected_next_hop(case)]
    if frame.destination != expected_destination:
        problems.append(
            f"egress destination MAC {frame.destination}, expected "
            f"next hop's {expected_destination}")
    return problems


def _check_icmp_error(case: ConformanceCase, router, raw: bytes,
                      egress: Dict[int, List[bytes]],
                      icmp_type: int, drop_reason: str) -> List[str]:
    problems: List[str] = []
    if router.stats.forwarded:
        problems.append(
            f"{router.stats.forwarded} datagram(s) forwarded; expected "
            f"a drop with {drop_reason}")
    if router.stats.dropped.get(drop_reason, 0) != 1:
        problems.append(
            f"drop counter {drop_reason!r} == "
            f"{router.stats.dropped.get(drop_reason, 0)}, expected 1")
    # the error must leave toward the source: out the ingress LAN
    sent = egress.get(INGRESS_INTERFACE, [])
    others = {i: len(batch) for i, batch in egress.items()
              if i != INGRESS_INTERFACE and batch}
    if others:
        problems.append(f"unexpected egress on interfaces {others}")
    if len(sent) != 1:
        problems.append(
            f"expected 1 ICMPv6 error out interface {INGRESS_INTERFACE}, "
            f"got {len(sent)}")
        return problems
    problems += _check_icmp_message(sent[0], raw, icmp_type)
    return problems


def _check_icmp_message(datagram_bytes: bytes, invoking: bytes,
                        icmp_type: int) -> List[str]:
    problems: List[str] = []
    try:
        datagram = Ipv6Datagram.from_bytes(datagram_bytes)
    except ReproError as exc:
        return [f"ICMPv6 datagram unparseable: {exc}"]
    if datagram.header.destination != SOURCE_HOST:
        problems.append(
            f"ICMPv6 error addressed to {datagram.header.destination}, "
            f"expected the offending source {SOURCE_HOST}")
    if datagram.header.source not in ROUTER_ADDRESSES:
        problems.append(
            f"ICMPv6 error source {datagram.header.source} is not a "
            f"router address")
    try:
        message = Icmpv6Message.from_bytes(
            datagram.payload, datagram.header.source,
            datagram.header.destination, verify=True)
    except ReproError as exc:
        return problems + [f"ICMPv6 message invalid: {exc}"]
    if message.type != icmp_type:
        problems.append(
            f"ICMPv6 type {message.type}, expected {icmp_type}")
    if message.code != 0:
        problems.append(f"ICMPv6 code {message.code}, expected 0")
    embedded = message.body[4:]
    if not embedded or invoking[:len(embedded)] != embedded:
        problems.append(
            "ICMPv6 body does not embed the invoking packet")
    return problems


def _check_link_drop(case: ConformanceCase, router,
                     shim: Optional[MacShim],
                     egress: Dict[int, List[bytes]]) -> List[str]:
    problems: List[str] = []
    reason = "not-my-station" if case.mac_addressing == "wrong" \
        else "bad-ethertype"
    assert shim is not None  # requires_mac cases never reach here without
    if shim.dropped.get(reason, 0) != 1:
        problems.append(
            f"shim drop {reason!r} == {shim.dropped.get(reason, 0)}, "
            f"expected 1")
    if router.stats.received:
        problems.append(
            f"datapath received {router.stats.received} datagram(s); the "
            f"frame must die at the link layer")
    if any(egress.values()):
        problems.append("unexpected egress for a link-dropped frame")
    return problems


# -- datapath cross-check ----------------------------------------------------------------


def datapath_packets() -> List[Tuple[int, bytes]]:
    """The routable slice of the matrix as a TTA workload (no-route is
    omitted: the datapath fixture keeps its default route)."""
    packets: List[Tuple[int, bytes]] = []
    for kind in PACKET_KINDS:
        for dest_class in DEST_CLASSES:
            if dest_class == "no-route":
                continue
            for hop_limit in HOP_LIMITS:
                destination, _ = DESTINATIONS[dest_class]
                packets.append((INGRESS_INTERFACE,
                                build_packet(kind, destination, hop_limit)))
    return packets


def run_datapath_check(table_kind: str,
                       config: Optional[ArchitectureConfiguration] = None,
                       mutant: Optional[str] = None) -> CaseResult:
    """Simulate the matrix workload on the TTA and diff it against the
    golden forwarding semantics (hop-limit cases must be dropped by the
    program, with no wrapped hop limits)."""
    case_id = f"datapath/{table_kind}"
    if config is None:
        config = ArchitectureConfiguration(table_kind=table_kind)
    elif config.table_kind != table_kind:
        return CaseResult(case_id, STATUS_FAIL,
                          f"config table kind {config.table_kind!r} does "
                          f"not match suite table kind {table_kind!r}")
    program_factory = PROGRAM_MUTANTS.get(mutant) if mutant else None
    try:
        result = run_forwarding(config, fixture_routes(), datapath_packets(),
                                options=RunOptions(
                                    program_factory=program_factory))
    except ReproError as exc:
        return CaseResult(case_id, STATUS_FAIL,
                          f"simulation failed: {exc}")
    if result.correct:
        return CaseResult(case_id, STATUS_PASS)
    return CaseResult(case_id, STATUS_FAIL,
                      "TTA diverged from golden model: "
                      + "; ".join(result.mismatches))


# -- suite entry point -------------------------------------------------------------------


def run_conformance(table_kind: str = "sequential",
                    config: Optional[ArchitectureConfiguration] = None,
                    mac: bool = True,
                    mutant: Optional[str] = None,
                    datapath: bool = True,
                    cases: Optional[Sequence[ConformanceCase]] = None,
                    ) -> ConformanceReport:
    """Run the full matrix (plus the datapath cross-check) and report.

    *mutant* may name a functional mutant (applied to every fixture
    router) or a program mutant (applied to the datapath check); either
    way the suite must fail with case-level diagnosis — that failure is
    itself asserted by the test suite.
    """
    if mutant is not None and mutant not in MUTANTS \
            and mutant not in PROGRAM_MUTANTS:
        raise ConformanceError(
            f"unknown mutant {mutant!r}; expected one of "
            f"{', '.join(sorted(list(MUTANTS) + list(PROGRAM_MUTANTS)))}")
    if config is None:
        config = ArchitectureConfiguration(table_kind=table_kind)
    report = ConformanceReport(
        table_kind=table_kind,
        config_description=config.describe(),
        mac_enabled=mac,
        mutant=mutant)
    for case in (cases if cases is not None else build_matrix()):
        report.results.append(run_case(case, table_kind, use_mac=mac,
                                       mutant=mutant))
    if datapath:
        report.results.append(
            run_datapath_check(table_kind, config=config, mutant=mutant))
    registry = get_registry()
    if registry.enabled:
        counter = registry.counter(
            "conformance_cases_total",
            "conformance case verdicts", ("table", "status"))
        for status, count in report.counts.items():
            if count:
                counter.inc(count, table=table_kind, status=status)
    return report
