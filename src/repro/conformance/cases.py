"""The conformance fixture and the table-driven case matrix.

One fixed single-router topology exercises every branch of the
forwarding contract ("Data Path Processing in Fast Programmable Routers"
enumerates them: LPM, hop-limit handling, header validation, ICMP error
generation):

====== ==================== ==========================================
iface  router address       routes out of it
====== ==================== ==========================================
0      2001:db8:aa::1       2001:db8:aa::/64 on-link (the ingress LAN)
1      2001:db8:bb::1       2001:db8:bb::/64 on-link
2      2001:db8:cc::1       2001:db8:f0f0::/48 via fe80::c (LPM specific)
3      2001:db8:dd::1       2001:db8:f000::/36 via fe80::d (LPM broad),
                            ::/0 via fe80::e (default; omitted for the
                            no-route fixture)
====== ==================== ==========================================

The matrix is the cross product (packet kind: tcpv6/udpv6/icmpv6) x
(destination class: on-link/lpm/default/no-route) x (hop limit:
64/1/0), each case carrying its expected verdict, plus link-layer cases
for the my-station check. The LPM pair is deliberately nested —
``2001:db8:f0f0::99`` matches both the /36 and the /48 — so a
first-match-wins table bug selects the wrong egress interface and fails
the case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConformanceError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.ipv6.checksum import transport_checksum
from repro.ipv6.header import PROTO_ICMPV6, PROTO_TCP, PROTO_UDP
from repro.ipv6.icmpv6 import echo_request
from repro.ipv6.packet import Ipv6Datagram
from repro.ipv6.udp import UdpDatagram
from repro.routing.entry import RouteEntry
from repro.router.router import Ipv6Router
from repro.conformance.mac import MacAddress

#: the conformance verdicts a case can expect
EXPECT_FORWARD = "forward"
EXPECT_TIME_EXCEEDED = "time-exceeded"
EXPECT_DEST_UNREACHABLE = "destination-unreachable"
EXPECT_LINK_DROP = "link-drop"

PACKET_KINDS: Tuple[str, ...] = ("tcpv6", "udpv6", "icmpv6")
DEST_CLASSES: Tuple[str, ...] = ("on-link", "lpm", "default", "no-route")
HOP_LIMITS: Tuple[int, ...] = (64, 1, 0)

INGRESS_INTERFACE = 0
#: a host on the ingress LAN; ICMP errors route back to it out iface 0
SOURCE_HOST = Ipv6Address.parse("2001:db8:aa::5")

ROUTER_ADDRESSES: Tuple[Ipv6Address, ...] = (
    Ipv6Address.parse("2001:db8:aa::1"),
    Ipv6Address.parse("2001:db8:bb::1"),
    Ipv6Address.parse("2001:db8:cc::1"),
    Ipv6Address.parse("2001:db8:dd::1"),
)

GATEWAY_LPM_SPECIFIC = Ipv6Address.parse("fe80::c")
GATEWAY_LPM_BROAD = Ipv6Address.parse("fe80::d")
GATEWAY_DEFAULT = Ipv6Address.parse("fe80::e")

#: destination address and expected egress interface per class
DESTINATIONS: Dict[str, Tuple[Ipv6Address, Optional[int]]] = {
    "on-link": (Ipv6Address.parse("2001:db8:bb::42"), 1),
    # matches the /48 (iface 2) AND the /36 (iface 3): LPM must pick 2
    "lpm": (Ipv6Address.parse("2001:db8:f0f0::99"), 2),
    "default": (Ipv6Address.parse("2001:db8:77::7"), 3),
    "no-route": (Ipv6Address.parse("2001:db8:77::7"), None),
}


def fixture_routes(include_default: bool = True) -> List[RouteEntry]:
    unspecified = Ipv6Address(0)
    routes = [
        RouteEntry(prefix=_prefix("2001:db8:aa::/64"),
                   next_hop=unspecified, interface=0),
        RouteEntry(prefix=_prefix("2001:db8:bb::/64"),
                   next_hop=unspecified, interface=1),
        RouteEntry(prefix=_prefix("2001:db8:f0f0::/48"),
                   next_hop=GATEWAY_LPM_SPECIFIC, interface=2, metric=2),
        RouteEntry(prefix=_prefix("2001:db8:f000::/36"),
                   next_hop=GATEWAY_LPM_BROAD, interface=3, metric=2),
    ]
    if include_default:
        routes.append(RouteEntry(prefix=_prefix("::/0"),
                                 next_hop=GATEWAY_DEFAULT, interface=3,
                                 metric=3))
    return routes


def _prefix(text: str) -> Ipv6Prefix:
    return Ipv6Prefix.parse(text)


def build_fixture(table_kind: str = "sequential",
                  include_default: bool = True) -> Ipv6Router:
    """A fresh fixture router (pure data plane: RIPng off, routes static)."""
    router = Ipv6Router("conformance", list(ROUTER_ADDRESSES),
                        table_kind=table_kind, table_capacity=16,
                        enable_ripng=False)
    for route in fixture_routes(include_default=include_default):
        router.table.insert(route)
    return router


def neighbor_macs() -> Dict[Ipv6Address, MacAddress]:
    """The static neighbor cache the MAC shim resolves next hops from."""
    table = {
        SOURCE_HOST: MacAddress.parse("02:aa:aa:aa:aa:05"),
        DESTINATIONS["on-link"][0]: MacAddress.parse("02:bb:bb:bb:bb:42"),
        GATEWAY_LPM_SPECIFIC: MacAddress.parse("02:cc:cc:cc:cc:0c"),
        GATEWAY_LPM_BROAD: MacAddress.parse("02:dd:dd:dd:dd:0d"),
        GATEWAY_DEFAULT: MacAddress.parse("02:ee:ee:ee:ee:0e"),
    }
    return table


# -- packet builders ---------------------------------------------------------------------


def build_packet(kind: str, destination: Ipv6Address,
                 hop_limit: int, source: Ipv6Address = SOURCE_HOST) -> bytes:
    """One conformance datagram with a valid transport checksum."""
    if kind == "udpv6":
        udp = UdpDatagram(source_port=4096, destination_port=4097,
                          payload=b"conformance-udp")
        return Ipv6Datagram.build(
            source=source, destination=destination, next_header=PROTO_UDP,
            payload=udp.to_bytes(source, destination),
            hop_limit=hop_limit).to_bytes()
    if kind == "tcpv6":
        segment = _tcp_segment(source, destination)
        return Ipv6Datagram.build(
            source=source, destination=destination, next_header=PROTO_TCP,
            payload=segment, hop_limit=hop_limit).to_bytes()
    if kind == "icmpv6":
        echo = echo_request(0x77, 1, b"conformance-echo")
        return Ipv6Datagram.build(
            source=source, destination=destination,
            next_header=PROTO_ICMPV6,
            payload=echo.to_bytes(source, destination),
            hop_limit=hop_limit).to_bytes()
    raise ConformanceError(f"unknown packet kind {kind!r}")


def _tcp_segment(source: Ipv6Address, destination: Ipv6Address,
                 payload: bytes = b"conformance-tcp") -> bytes:
    """A minimal TCP segment (SYN-ish header + payload), checksummed."""
    header = (
        (4096).to_bytes(2, "big")        # source port
        + (80).to_bytes(2, "big")        # destination port
        + (0x1000).to_bytes(4, "big")    # sequence number
        + (0).to_bytes(4, "big")         # acknowledgement number
        + bytes([0x50, 0x10])            # data offset 5, flags ACK
        + (0xFFFF).to_bytes(2, "big")    # window
        + b"\x00\x00"                    # checksum placeholder
        + b"\x00\x00"                    # urgent pointer
    )
    segment = header + payload
    checksum = transport_checksum(source, destination, PROTO_TCP, segment)
    return segment[:16] + checksum.to_bytes(2, "big") + segment[18:]


# -- the matrix --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConformanceCase:
    """One row of the conformance matrix."""

    case_id: str
    packet_kind: str
    dest_class: str
    hop_limit: int
    destination: Ipv6Address
    expectation: str
    expected_interface: Optional[int] = None
    #: link-layer cases need the MAC shim; skipped when it is disabled
    requires_mac: bool = False
    #: how the ingress frame is addressed ("station" | "wrong" | "raw")
    mac_addressing: str = "station"

    def build(self) -> bytes:
        return build_packet(self.packet_kind, self.destination,
                            self.hop_limit)


def expected_verdict(dest_class: str,
                     hop_limit: int) -> Tuple[str, Optional[int]]:
    """The contract: hop-limit expiry outranks routing (RFC 2460 §8.2),
    then LPM decides, then absence of any route is unreachable."""
    if hop_limit <= 1:
        return EXPECT_TIME_EXCEEDED, None
    destination, interface = DESTINATIONS[dest_class]
    if interface is None:
        return EXPECT_DEST_UNREACHABLE, None
    return EXPECT_FORWARD, interface


def build_matrix(include_mac: bool = True) -> List[ConformanceCase]:
    """The full cross product, plus the link-layer my-station cases."""
    cases: List[ConformanceCase] = []
    for kind in PACKET_KINDS:
        for dest_class in DEST_CLASSES:
            for hop_limit in HOP_LIMITS:
                destination, _ = DESTINATIONS[dest_class]
                expectation, interface = expected_verdict(dest_class,
                                                          hop_limit)
                cases.append(ConformanceCase(
                    case_id=f"{kind}/{dest_class}/hl={hop_limit}",
                    packet_kind=kind, dest_class=dest_class,
                    hop_limit=hop_limit, destination=destination,
                    expectation=expectation,
                    expected_interface=interface))
    if include_mac:
        destination, interface = DESTINATIONS["lpm"]
        cases.append(ConformanceCase(
            case_id="mac/not-my-station",
            packet_kind="udpv6", dest_class="lpm", hop_limit=64,
            destination=destination, expectation=EXPECT_LINK_DROP,
            requires_mac=True, mac_addressing="wrong"))
        cases.append(ConformanceCase(
            case_id="mac/bad-ethertype",
            packet_kind="udpv6", dest_class="lpm", hop_limit=64,
            destination=destination, expectation=EXPECT_LINK_DROP,
            requires_mac=True, mac_addressing="bad-ethertype"))
    return cases
