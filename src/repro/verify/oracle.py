"""Differential self-checking oracle for datapath fault campaigns.

A single soft error can end five ways, and telling them apart is the
whole point of an SDC study:

* ``masked``   — the run is bit-identical to the fault-free golden run;
  the flipped bit was dead, overwritten, or logically absorbed;
* ``detected`` — the run completed but the hazard detector flagged
  anomalies the golden run did not have: the fault left an
  architecturally visible trace a checker could have caught;
* ``sdc``      — *silent data corruption*: the run completed with no
  error, no new hazard, nothing — but its forwarded datagrams or
  execution profile diverge from the golden run. Only a differential
  comparison can see this class;
* ``crash``    — the simulation raised (strict-mode port violation,
  functional model error...): fail-stop behaviour;
* ``hang``     — the run blew a cycle budget sized from the golden
  run's own cycle count; the watchdog's loop diagnosis is preserved.

Classification precedence is ``hang``/``crash`` (the run never
completed) over ``detected`` over ``sdc`` over ``masked``, and the five
classes are exhaustive: every trial lands in exactly one.

The oracle runs the golden reference once per configuration and replays
it under injection as many times as the sweep asks, so a thousand-trial
campaign pays for exactly one fault-free simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.config import ArchitectureConfiguration
from repro.errors import CycleBudgetError, ReproError
from repro.faults.datapath import DatapathFaultInjector
from repro.faults.memory import MemoryFaultInjector
from repro.ipv6.address import Ipv6Address
from repro.programs.runner import (
    ForwardingRunResult,
    RunOptions,
    run_forwarding,
)
from repro.routing import make_table
from repro.routing.entry import RouteEntry
from repro.routing.protected import ProtectedRoutingTable

OUTCOME_MASKED = "masked"
OUTCOME_DETECTED = "detected"
OUTCOME_SDC = "sdc"
OUTCOME_CRASH = "crash"
OUTCOME_HANG = "hang"

#: every classification the oracle can emit, in severity order
OUTCOMES: Tuple[str, ...] = (
    OUTCOME_MASKED, OUTCOME_DETECTED, OUTCOME_SDC,
    OUTCOME_CRASH, OUTCOME_HANG,
)

#: a faulted run gets this many times the golden run's cycles before it
#: is declared hung (faults legitimately lengthen loops a little)
HANG_BUDGET_MULTIPLIER = 4

#: floor so tiny golden runs still get enough rope to diverge honestly
MIN_HANG_BUDGET = 50_000


@dataclass
class TrialOutcome:
    """One classified injection trial."""

    outcome: str
    detail: str
    faults_injected: int
    transports_observed: int
    faults_by_site: Dict[str, int] = field(default_factory=dict)
    faults: List[Dict[str, object]] = field(default_factory=list)
    new_hazards: Dict[str, int] = field(default_factory=dict)
    cycles: Optional[int] = None
    diagnosis: Optional[str] = None
    error_type: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "outcome": self.outcome,
            "detail": self.detail,
            "faults_injected": self.faults_injected,
            "transports_observed": self.transports_observed,
            "faults_by_site": dict(sorted(self.faults_by_site.items())),
            "faults": list(self.faults),
            "new_hazards": dict(sorted(self.new_hazards.items())),
            "cycles": self.cycles,
            "diagnosis": self.diagnosis,
            "error_type": self.error_type,
        }


def _forwarding_signature(result: ForwardingRunResult) -> Dict[str, object]:
    """Everything that must match for two runs to count as identical."""
    machine = result.machine
    cards = {str(card.index): sorted(card.transmitted)
             for card in machine.line_cards} if machine is not None else {}
    report = result.report
    return {
        "cards": cards,
        "cycles": report.cycles,
        "moves_executed": report.moves_executed,
        "instructions_fetched": report.instructions_fetched,
    }


def _diff_signatures(golden: Dict[str, object],
                     faulted: Dict[str, object]) -> List[str]:
    """Human-readable list of divergences (empty = identical)."""
    diffs: List[str] = []
    gcards: Dict[str, list] = golden["cards"]  # type: ignore[assignment]
    fcards: Dict[str, list] = faulted["cards"]  # type: ignore[assignment]
    for index in sorted(set(gcards) | set(fcards)):
        expected = gcards.get(index, [])
        actual = fcards.get(index, [])
        if expected != actual:
            detail = (f"{len(expected)} vs {len(actual)} datagrams"
                      if len(expected) != len(actual)
                      else "content differs")
            diffs.append(f"card {index}: {detail}")
    for scalar in ("cycles", "moves_executed", "instructions_fetched"):
        if golden[scalar] != faulted[scalar]:
            diffs.append(
                f"{scalar}: {golden[scalar]} vs {faulted[scalar]}")
    return diffs


class DifferentialOracle:
    """Classifies injection trials against one cached golden run.

    One oracle is bound to one ``(config, routes, packets)`` workload;
    parallel sweep workers keep a per-process cache keyed by config.
    """

    def __init__(self, config: ArchitectureConfiguration,
                 routes: Sequence[RouteEntry],
                 packets: Sequence[Tuple[int, bytes]],
                 max_cycles: Optional[int] = None,
                 backend: Optional[str] = None):
        self.config = config
        self.routes = list(routes)
        self.packets = list(packets)
        self._max_cycles = max_cycles
        #: requested simulation engine (the hazard detector and the
        #: fault injector are hooks, so the compiled backend will fall
        #: back to the interpreter transparently — the knob is threaded
        #: anyway so every runner shares one selection path)
        self.backend = backend
        self._golden: Optional[ForwardingRunResult] = None
        self._golden_error: Optional[BaseException] = None
        self._golden_signature: Optional[Dict[str, object]] = None
        self._hazard_baseline: Dict[str, int] = {}

    # -- golden reference ---------------------------------------------------------

    @property
    def golden(self) -> ForwardingRunResult:
        """The fault-free reference run (computed once, then cached).

        A failing golden run is cached too: a configuration that cannot
        even run fault-free is quarantined after one simulation, not
        re-simulated for every trial a sweep throws at it.
        """
        if self._golden_error is not None:
            raise self._golden_error
        if self._golden is None:
            try:
                result = run_forwarding(
                    self.config, self.routes, self.packets,
                    options=RunOptions(backend=self.backend, verify=True,
                                       detect_hazards=True))
            except ReproError as exc:
                self._golden_error = exc
                raise
            if not result.correct:
                self._golden_error = ReproError(
                    "golden run disagrees with the functional model; "
                    "refusing to use it as an oracle reference: "
                    + "; ".join(result.mismatches))
                raise self._golden_error
            self._golden = result
            self._golden_signature = _forwarding_signature(result)
            self._hazard_baseline = dict(result.report.hazards)
        return self._golden

    @property
    def hang_budget(self) -> int:
        """Cycle budget for faulted runs, sized from the golden run."""
        if self._max_cycles is not None:
            return self._max_cycles
        return max(self.golden.report.cycles * HANG_BUDGET_MULTIPLIER,
                   MIN_HANG_BUDGET)

    # -- classification -----------------------------------------------------------

    def classify(self, seed: int, rate: float,
                 sites: Optional[Sequence[str]] = None,
                 max_faults: Optional[int] = None) -> TrialOutcome:
        """Run one injection trial and classify its outcome.

        Deterministic: the same ``(workload, seed, rate, sites,
        max_faults)`` always produces the identical outcome record.
        """
        golden_signature = self._golden_signature
        if golden_signature is None:
            _ = self.golden
            golden_signature = self._golden_signature
        injector = DatapathFaultInjector(
            seed=seed, rate=rate, sites=sites, max_faults=max_faults)
        try:
            result = run_forwarding(
                self.config, self.routes, self.packets,
                options=RunOptions(backend=self.backend,
                                   max_cycles=self.hang_budget,
                                   verify=False, detect_hazards=True,
                                   instrument=injector.attach))
        except CycleBudgetError as exc:
            return self._outcome(
                injector, OUTCOME_HANG,
                f"cycle budget of {exc.cycles} exhausted at pc={exc.pc}",
                diagnosis=exc.diagnosis)
        except ReproError as exc:
            return self._outcome(
                injector, OUTCOME_CRASH, str(exc),
                error_type=type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 — any escape is a crash
            return self._outcome(
                injector, OUTCOME_CRASH, str(exc),
                error_type=type(exc).__name__)

        new_hazards = {}
        for kind, count in result.report.hazards.items():
            delta = count - self._hazard_baseline.get(kind, 0)
            if delta > 0:
                new_hazards[kind] = delta
        if new_hazards:
            kinds = ", ".join(f"{kind} x{count}" for kind, count
                              in sorted(new_hazards.items()))
            return self._outcome(
                injector, OUTCOME_DETECTED,
                f"hazard detector flagged: {kinds}",
                cycles=result.report.cycles, new_hazards=new_hazards)

        diffs = _diff_signatures(golden_signature,
                                 _forwarding_signature(result))
        if diffs:
            return self._outcome(
                injector, OUTCOME_SDC,
                "silent divergence: " + "; ".join(diffs),
                cycles=result.report.cycles)
        return self._outcome(
            injector, OUTCOME_MASKED,
            "identical to the golden run",
            cycles=result.report.cycles)

    def _outcome(self, injector: DatapathFaultInjector, outcome: str,
                 detail: str, *, cycles: Optional[int] = None,
                 new_hazards: Optional[Dict[str, int]] = None,
                 diagnosis: Optional[str] = None,
                 error_type: Optional[str] = None) -> TrialOutcome:
        return TrialOutcome(
            outcome=outcome,
            detail=detail,
            faults_injected=injector.faults_injected,
            transports_observed=injector.transports_observed,
            faults_by_site={site: count for site, count
                            in injector.faults_by_site.items() if count},
            faults=[fault.to_dict() for fault in injector.faults],
            new_hazards=new_hazards or {},
            cycles=cycles,
            diagnosis=diagnosis,
            error_type=error_type,
        )


#: floor for the per-trial lookup-step budget of the memory oracle
MIN_MEMORY_STEP_BUDGET = 10_000


class MemoryDifferentialOracle:
    """Classifies table-state injection trials against a clean table.

    The same five-way vocabulary as :class:`DifferentialOracle`, but
    the system under test is a (possibly protected) routing structure
    serving a lookup workload rather than the TTA datapath:

    * ``masked``   — every lookup answered exactly as the clean table;
    * ``detected`` — the protection layer reported the corruption:
      a live detection during lookups (hit-word mismatch, intercepted
      false miss, fail-stop converted to degraded service) or a scrub
      finding from :meth:`ProtectedRoutingTable.verify_integrity`;
    * ``sdc``      — no detection, but at least one lookup silently
      answered differently: the FIB lied and nothing noticed;
    * ``crash``    — a lookup raised out of the table (fail-stop,
      reachable only on unprotected tables — the wrapper converts
      these to detections);
    * ``hang``     — the run blew a lookup-step budget sized from the
      clean run (structure bounds make this a backstop class).

    One oracle is bound to one ``(kind, protection, routes,
    addresses)`` cell; the golden signatures are computed once on a
    clean build, then every trial corrupts a fresh build.
    """

    def __init__(self, kind: str, protection: str,
                 routes: Sequence[RouteEntry],
                 addresses: Sequence[Ipv6Address],
                 capacity: Optional[int] = None):
        self.kind = kind
        self.protection = protection
        self.routes = list(routes)
        self.addresses = list(addresses)
        self.capacity = capacity if capacity is not None else (
            len({entry.prefix for entry in self.routes}) + 8)
        self._golden_signatures: Optional[List[Tuple[object, ...]]] = None
        self._golden_steps = 0
        #: measured on the clean golden build (overhead-pricing inputs)
        self.table_memory_bytes = 0
        self.protected_records = 0

    def build(self) -> ProtectedRoutingTable:
        """A fresh protected table loaded with the cell's FIB."""
        inner = make_table(self.kind, capacity=self.capacity)
        table = ProtectedRoutingTable(inner, protection=self.protection)
        table.load(self.routes)
        table.checkpoint()
        return table

    @staticmethod
    def _signature(result) -> Tuple[object, ...]:
        """What must match for a lookup to count as identical: the
        forwarding decision (steps are a cost, not a semantic)."""
        if result is None:
            return ("miss",)
        entry = result.entry
        return ("hit", entry.next_hop.value, entry.interface,
                entry.prefix.network.value, entry.prefix.length)

    @property
    def golden(self) -> List[Tuple[object, ...]]:
        """Per-address signatures of the clean table (computed once)."""
        if self._golden_signatures is None:
            table = self.build()
            start = table.stats.total_lookup_steps
            self._golden_signatures = [
                self._signature(table.lookup(address))
                for address in self.addresses]
            self._golden_steps = table.stats.total_lookup_steps - start
            self.table_memory_bytes = table.table_memory_bytes()
            self.protected_records = table.protected_records()
        return self._golden_signatures

    @property
    def mean_lookup_steps(self) -> float:
        _ = self.golden
        return (self._golden_steps / len(self.addresses)
                if self.addresses else 0.0)

    @property
    def step_budget(self) -> int:
        """Lookup-step budget per trial. Degraded (journal-served)
        lookups legitimately cost ``len(routes)`` steps each, so the
        budget provisions for a fully degraded run; only a true
        runaway exceeds it."""
        _ = self.golden
        degraded_worst = 2 * len(self.addresses) * (len(self.routes) + 16)
        return max(self._golden_steps * HANG_BUDGET_MULTIPLIER
                   + degraded_worst, MIN_MEMORY_STEP_BUDGET)

    def classify(self, seed: int, site: str, flips: int = 1) -> TrialOutcome:
        """Corrupt a fresh table and classify the outcome.

        Deterministic: the same ``(cell, seed, site, flips)`` always
        produces the identical outcome record.
        """
        golden = self.golden
        table = self.build()
        injector = MemoryFaultInjector(seed=seed, sites=(site,))
        faults = injector.inject(table, flips=flips)
        detected_before = table.detected_corruptions
        budget = self.step_budget
        start_steps = table.stats.total_lookup_steps
        signatures: List[Tuple[object, ...]] = []
        try:
            for address in self.addresses:
                signatures.append(self._signature(table.lookup(address)))
                if table.stats.total_lookup_steps - start_steps > budget:
                    return self._outcome(
                        injector, OUTCOME_HANG,
                        f"lookup-step budget of {budget} exhausted "
                        f"after {len(signatures)} lookups",
                        steps=table.stats.total_lookup_steps - start_steps)
        except ReproError as exc:
            return self._outcome(
                injector, OUTCOME_CRASH, str(exc),
                error_type=type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 — any escape is a crash
            return self._outcome(
                injector, OUTCOME_CRASH, str(exc),
                error_type=type(exc).__name__)
        steps = table.stats.total_lookup_steps - start_steps
        live = table.detected_corruptions - detected_before
        scrub = table.verify_integrity()
        if live or scrub:
            parts = []
            if live:
                parts.append(f"{live} live detection(s) "
                             f"({table.degraded_lookups} degraded lookups)")
            if scrub:
                parts.append(f"scrub flagged {len(scrub)} record(s) at "
                             + ", ".join(sorted({e.site for e in scrub})))
            return self._outcome(
                injector, OUTCOME_DETECTED, "; ".join(parts), steps=steps,
                new_hazards={"live_detections": live,
                             "scrub_events": len(scrub)})
        diffs = sum(1 for got, want in zip(signatures, golden)
                    if got != want)
        if diffs:
            return self._outcome(
                injector, OUTCOME_SDC,
                f"silent divergence on {diffs}/{len(golden)} lookups",
                steps=steps)
        detail = ("identical to the clean table"
                  if faults else "no eligible record to strike")
        return self._outcome(injector, OUTCOME_MASKED, detail, steps=steps)

    def _outcome(self, injector: MemoryFaultInjector, outcome: str,
                 detail: str, *, steps: Optional[int] = None,
                 new_hazards: Optional[Dict[str, int]] = None,
                 error_type: Optional[str] = None) -> TrialOutcome:
        return TrialOutcome(
            outcome=outcome,
            detail=detail,
            faults_injected=injector.flips_applied,
            transports_observed=0,
            faults_by_site={site: count for site, count
                            in injector.flips_by_site.items() if count},
            faults=[fault.to_dict() for fault in injector.faults],
            new_hazards=new_hazards or {},
            cycles=steps,
            error_type=error_type,
        )
