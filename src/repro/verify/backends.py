"""Backend-equivalence oracle: prove an execution engine bit-identical.

The compiled fast path (:mod:`repro.tta.compiled`) is only admissible
because it promises the *same answer* as the reference interpreter —
not approximately, not statistically: the identical
:class:`~repro.tta.stats.SimulationReport` and the identical forwarded
bytes on every line card, for every configuration in the paper's
Table 1 grid. This module is the proof obligation: it runs the same
workload under both engines and byte-compares canonical JSON signatures
of everything either run observably produced.

The signature deliberately includes more than the SDC oracle's
(:func:`repro.verify.oracle._forwarding_signature`): per-bus busy
cycles, squashed moves, per-FU trigger counts, and the exact
transmitted frames (hex) — a fast path that got utilisation accounting
wrong while forwarding correctly must still fail here.

The default grid is the nine Table 1 configurations plus CAM variants
at ``search latency > 1`` (the evaluator's fixed point visits those, and
they exercise the compiled backend's generic multi-cycle FU path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.config import (
    ArchitectureConfiguration,
    TABLE_KINDS,
    paper_configurations,
)
from repro.programs.runner import (
    ForwardingRunResult,
    RunOptions,
    run_forwarding,
)
from repro.routing.entry import RouteEntry
from repro.tta.backends import DEFAULT_BACKEND, resolve_backend_name

#: the semantics oracle every other engine is measured against
REFERENCE_BACKEND = DEFAULT_BACKEND

#: extra CAM search latencies the default grid covers (latency 1 is the
#: stock configuration; > 1 takes the generic multi-cycle path)
DEFAULT_CAM_LATENCIES: Tuple[int, ...] = (2, 3)


def table1_grid(cam_latencies: Sequence[int] = DEFAULT_CAM_LATENCIES,
                ) -> List[ArchitectureConfiguration]:
    """The paper's nine-configuration grid, plus CAM latency variants."""
    grid = [config for kind in TABLE_KINDS
            for config in paper_configurations(kind)]
    for latency in cam_latencies:
        for config in paper_configurations("cam"):
            grid.append(config.with_cam_latency(latency))
    return grid


def run_signature(result: ForwardingRunResult) -> Dict[str, object]:
    """Canonical JSON-ready digest of everything one run produced.

    Two runs are equivalent exactly when their signatures serialise to
    the same bytes (:func:`signature_bytes`).
    """
    report = result.report
    cards: Dict[str, List[str]] = {}
    if result.machine is not None:
        cards = {str(card.index): [frame.hex()
                                   for frame in card.transmitted]
                 for card in result.machine.line_cards}
    return {
        "cards": cards,
        "cycles": report.cycles,
        "instructions_fetched": report.instructions_fetched,
        "moves_executed": report.moves_executed,
        "moves_squashed": report.moves_squashed,
        "bus_busy_cycles": list(report.bus_busy_cycles),
        "fu_triggers": {name: report.fu_triggers[name]
                        for name in sorted(report.fu_triggers)},
        "halted": report.halted,
        "packets_forwarded": result.packets_forwarded,
        "packets_dropped": result.packets_dropped,
        "program_length": result.program_length,
        "mismatches": list(result.mismatches),
    }


def signature_bytes(signature: Dict[str, object]) -> bytes:
    """The byte string two equivalent runs must agree on."""
    return json.dumps(signature, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def diff_signatures(reference: Dict[str, object],
                    candidate: Dict[str, object]) -> List[str]:
    """Human-readable field-level divergences (empty = identical)."""
    diffs: List[str] = []
    for key in sorted(set(reference) | set(candidate)):
        expected = reference.get(key)
        actual = candidate.get(key)
        if expected == actual:
            continue
        if key == "cards":
            gcards = expected or {}
            fcards = actual or {}
            for index in sorted(set(gcards) | set(fcards)):
                if gcards.get(index) != fcards.get(index):
                    diffs.append(
                        f"card {index}: {len(gcards.get(index, []))} vs "
                        f"{len(fcards.get(index, []))} datagrams"
                        if len(gcards.get(index, []))
                        != len(fcards.get(index, []))
                        else f"card {index}: content differs")
        elif key == "fu_triggers":
            gfus = expected or {}
            ffus = actual or {}
            for name in sorted(set(gfus) | set(ffus)):
                if gfus.get(name) != ffus.get(name):
                    diffs.append(f"fu_triggers[{name}]: "
                                 f"{gfus.get(name)} vs {ffus.get(name)}")
        else:
            diffs.append(f"{key}: {expected} vs {actual}")
    return diffs


@dataclass
class BackendComparison:
    """One configuration's reference-vs-candidate verdict."""

    config: ArchitectureConfiguration
    backend: str
    #: the engine that actually executed (a hook may have forced the
    #: candidate back onto the interpreter)
    executed_backend: str
    identical: bool
    diffs: List[str] = field(default_factory=list)
    cycles: int = 0

    def render(self) -> str:
        verdict = "identical" if self.identical \
            else "DIVERGED: " + "; ".join(self.diffs)
        label = self.config.label()
        if self.config.table_kind == "cam" \
                and self.config.cam_search_latency != 1:
            label += f"@lat{self.config.cam_search_latency}"
        return (f"{self.config.table_kind:<13} {label:<22} "
                f"{self.cycles:>8} cycles  {verdict}")

    def to_dict(self) -> Dict[str, object]:
        import dataclasses
        return {
            "config": dataclasses.asdict(self.config),
            "label": self.config.label(),
            "table_kind": self.config.table_kind,
            "backend": self.backend,
            "executed_backend": self.executed_backend,
            "identical": self.identical,
            "diffs": list(self.diffs),
            "cycles": self.cycles,
        }


@dataclass
class BackendEquivalenceReport:
    """Grid-wide verdict for one candidate engine."""

    backend: str
    reference: str
    comparisons: List[BackendComparison]

    @property
    def passed(self) -> bool:
        return all(c.identical for c in self.comparisons)

    @property
    def divergent(self) -> List[BackendComparison]:
        return [c for c in self.comparisons if not c.identical]

    def render(self) -> str:
        lines = [f"backend equivalence: {self.backend!r} vs "
                 f"{self.reference!r} over {len(self.comparisons)} "
                 f"configuration(s)"]
        lines += [c.render() for c in self.comparisons]
        lines.append("PASS: bit-identical on every configuration"
                     if self.passed else
                     f"FAIL: {len(self.divergent)} configuration(s) "
                     f"diverged")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "reference": self.reference,
            "passed": self.passed,
            "comparisons": [c.to_dict() for c in self.comparisons],
        }


def verify_backend(backend: str = "compiled",
                   configs: Optional[
                       Sequence[ArchitectureConfiguration]] = None,
                   entries: int = 20,
                   packet_batch: int = 4,
                   routes: Optional[Sequence[RouteEntry]] = None,
                   packets: Optional[Sequence[Tuple[int, bytes]]] = None,
                   reference: str = REFERENCE_BACKEND,
                   max_cycles: Optional[int] = None,
                   ) -> BackendEquivalenceReport:
    """Run the differential proof for *backend* across a config grid.

    Defaults to the full Table 1 grid (:func:`table1_grid`) on the same
    deterministic workload family the performance sweeps use. Raises
    nothing on divergence — inspect ``report.passed`` / ``render()``.
    """
    from repro.workload import generate_routes, worst_case_workload

    if configs is None:
        configs = table1_grid()
    if routes is None:
        routes = generate_routes(entries)
    if packets is None:
        packets = worst_case_workload(list(routes), packet_batch)

    comparisons: List[BackendComparison] = []
    for config in configs:
        golden = run_forwarding(
            config, routes, packets,
            options=RunOptions(backend=reference, max_cycles=max_cycles))
        candidate = run_forwarding(
            config, routes, packets,
            options=RunOptions(backend=backend, max_cycles=max_cycles))
        ref_sig = run_signature(golden)
        cand_sig = run_signature(candidate)
        identical = signature_bytes(ref_sig) == signature_bytes(cand_sig)
        comparisons.append(BackendComparison(
            config=config,
            backend=resolve_backend_name(backend),
            executed_backend=candidate.backend,
            identical=identical,
            diffs=[] if identical else diff_signatures(ref_sig, cand_sig),
            cycles=golden.report.cycles))
    return BackendEquivalenceReport(
        backend=resolve_backend_name(backend),
        reference=resolve_backend_name(reference),
        comparisons=comparisons)
