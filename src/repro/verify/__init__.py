"""Self-checking verification oracles.

The cycle-accurate simulator already verifies against the functional
golden model; this package adds the *differential* layer used by
reliability studies: run the same workload with and without injected
faults and classify every divergence (see :mod:`repro.verify.oracle`).

:mod:`repro.verify.backends` applies the same differential discipline
to execution engines: it proves the compiled fast backend bit-identical
to the reference interpreter across the Table 1 configuration grid.
"""

from repro.verify.backends import (
    BackendComparison,
    BackendEquivalenceReport,
    REFERENCE_BACKEND,
    diff_signatures,
    run_signature,
    signature_bytes,
    table1_grid,
    verify_backend,
)
from repro.verify.oracle import (
    HANG_BUDGET_MULTIPLIER,
    MIN_HANG_BUDGET,
    MIN_MEMORY_STEP_BUDGET,
    OUTCOME_CRASH,
    OUTCOME_DETECTED,
    OUTCOME_HANG,
    OUTCOME_MASKED,
    OUTCOME_SDC,
    OUTCOMES,
    DifferentialOracle,
    MemoryDifferentialOracle,
    TrialOutcome,
)

__all__ = [
    "HANG_BUDGET_MULTIPLIER", "MIN_HANG_BUDGET", "MIN_MEMORY_STEP_BUDGET",
    "OUTCOME_CRASH", "OUTCOME_DETECTED", "OUTCOME_HANG",
    "OUTCOME_MASKED", "OUTCOME_SDC", "OUTCOMES",
    "DifferentialOracle", "MemoryDifferentialOracle", "TrialOutcome",
    "BackendComparison", "BackendEquivalenceReport", "REFERENCE_BACKEND",
    "diff_signatures", "run_signature", "signature_bytes", "table1_grid",
    "verify_backend",
]
