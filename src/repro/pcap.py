"""Dependency-free classic pcap import/export plus capture and replay.

Three pieces, all stdlib-only:

* :func:`write_pcap` / :func:`read_pcap` — the classic (not pcapng)
  libpcap container, little- or big-endian, version 2.4, default link
  type ``LINKTYPE_RAW`` (101: bare IP packets, which is exactly what the
  repro line cards carry).
* :class:`LinkTap` / :func:`attach_taps` — a duck-typed link fault model
  that records every frame (with the network clock) and otherwise
  delegates, so any :class:`~repro.router.network.Network` run can be
  captured without changing its behaviour.
* :func:`replay` — push a capture through a fresh conformance fixture
  router, timing each packet, and publish latency percentiles to the
  obs registry — captures become replayable conformance workloads.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PcapError

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION = (2, 4)
#: raw IP packets, no link-layer header — what the line cards carry
LINKTYPE_RAW = 101
#: standard Ethernet, for captures taken under the conformance MAC shim
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class CapturedPacket:
    """One captured packet: raw bytes and a capture timestamp (seconds)."""

    data: bytes
    timestamp: float = 0.0


def to_pcap_bytes(packets: Iterable[CapturedPacket],
                  linktype: int = LINKTYPE_RAW) -> bytes:
    """Serialise *packets* as a classic little-endian pcap stream."""
    parts = [_GLOBAL_HEADER.pack(PCAP_MAGIC, PCAP_VERSION[0],
                                 PCAP_VERSION[1], 0, 0, 0xFFFF, linktype)]
    for packet in packets:
        seconds = int(packet.timestamp)
        micros = int(round((packet.timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:  # round-up spill into the next second
            seconds, micros = seconds + 1, micros - 1_000_000
        parts.append(_RECORD_HEADER.pack(seconds, micros,
                                         len(packet.data),
                                         len(packet.data)))
        parts.append(packet.data)
    return b"".join(parts)


def from_pcap_bytes(data: bytes) -> Tuple[List[CapturedPacket], int]:
    """Parse a classic pcap stream; returns (packets, linktype).

    Both byte orders are accepted; nanosecond-magic and pcapng streams
    are rejected with a :class:`PcapError` naming the problem.
    """
    if len(data) < _GLOBAL_HEADER.size:
        raise PcapError(f"truncated pcap: {len(data)} bytes, need at "
                        f"least {_GLOBAL_HEADER.size}")
    magic = struct.unpack("<I", data[:4])[0]
    if magic == PCAP_MAGIC:
        order = "<"
    elif magic == PCAP_MAGIC_SWAPPED:
        order = ">"
    elif magic == 0x0A0D0D0A:
        raise PcapError("pcapng input; only classic pcap is supported")
    else:
        raise PcapError(f"bad pcap magic 0x{magic:08x}")
    header = struct.Struct(order + "IHHiIII")
    record = struct.Struct(order + "IIII")
    (_, major, minor, _zone, _sigfigs, _snaplen,
     linktype) = header.unpack_from(data)
    if (major, minor) != PCAP_VERSION:
        raise PcapError(f"unsupported pcap version {major}.{minor}")
    packets: List[CapturedPacket] = []
    offset = header.size
    while offset < len(data):
        if offset + record.size > len(data):
            raise PcapError(f"truncated record header at byte {offset}")
        seconds, micros, incl_len, orig_len = record.unpack_from(data,
                                                                 offset)
        offset += record.size
        if incl_len > orig_len:
            raise PcapError(
                f"corrupt record at byte {offset}: captured length "
                f"{incl_len} exceeds original {orig_len}")
        if offset + incl_len > len(data):
            raise PcapError(f"truncated packet data at byte {offset}")
        packets.append(CapturedPacket(
            data=bytes(data[offset:offset + incl_len]),
            timestamp=seconds + micros / 1_000_000))
        offset += incl_len
    return packets, linktype


def write_pcap(path: str, packets: Iterable[CapturedPacket],
               linktype: int = LINKTYPE_RAW) -> int:
    """Write *packets* to *path* atomically; returns the packet count.

    Same crash contract as every ``--output`` document: a crash mid-write
    leaves either the previous capture or the complete new one, never a
    truncated file a later ``read_pcap`` would choke on.
    """
    from repro.dse.campaign import write_atomic_bytes

    packets = list(packets)
    write_atomic_bytes(path, to_pcap_bytes(packets, linktype=linktype))
    return len(packets)


def read_pcap(path: str) -> List[CapturedPacket]:
    with open(path, "rb") as handle:
        data = handle.read()
    packets, _linktype = from_pcap_bytes(data)
    return packets


# -- capture ---------------------------------------------------------------------------


class LinkTap:
    """A pass-through link fault model that records every frame.

    Stacks on top of any existing fault model (it captures the frame
    *before* the inner model drops/corrupts/delays it, like a wire tap
    on the transmit side) and satisfies the same duck type, so
    :meth:`Network.attach_fault_model` accepts it directly.
    """

    def __init__(self, inner: Optional[Any] = None,
                 clock: Optional[Any] = None):
        self.inner = inner
        self._clock = clock or (lambda: 0.0)
        self.captured: List[CapturedPacket] = []

    def transmit(self, raw: bytes) -> List[Tuple[int, bytes]]:
        self.captured.append(CapturedPacket(data=bytes(raw),
                                            timestamp=float(self._clock())))
        if self.inner is not None:
            return list(self.inner.transmit(raw))
        return [(0, raw)]

    @property
    def stats(self) -> Any:
        """The inner model's statistics, so network metrics still see
        drop/corrupt/delay counts through the tap."""
        return getattr(self.inner, "stats", None)

    def write(self, path: str) -> int:
        return write_pcap(path, self.captured)


def attach_taps(network: Any,
                endpoints: Optional[Sequence[Tuple[str, int]]] = None,
                ) -> Dict[str, LinkTap]:
    """Wrap every link (or just *endpoints*) of *network* in a
    :class:`LinkTap` stamped with the network clock; returns taps keyed
    by ``"router:interface"`` of the tapped endpoint."""
    taps: Dict[str, LinkTap] = {}
    clock = lambda: network.now  # noqa: E731 — bound late, reads live clock
    if endpoints is None:
        endpoints = [link.a for link in network.links]
    by_endpoint = {}
    for link in network.links:
        by_endpoint[link.a] = link
        by_endpoint[link.b] = link
    for endpoint in endpoints:
        endpoint = tuple(endpoint)
        link = by_endpoint.get(endpoint)
        if link is None:
            raise PcapError(f"{endpoint} is not a linked interface")
        tap = LinkTap(inner=link.fault_model, clock=clock)
        network.attach_fault_model(endpoint, tap)
        taps[f"{endpoint[0]}:{endpoint[1]}"] = tap
    return taps


def merged_capture(taps: Dict[str, LinkTap]) -> List[CapturedPacket]:
    """All tapped frames, ordered by capture time (stable)."""
    merged = [packet for tap in taps.values() for packet in tap.captured]
    merged.sort(key=lambda packet: packet.timestamp)
    return merged


# -- replay ----------------------------------------------------------------------------


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0 for an empty set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ReplayReport:
    """Outcome of replaying a capture through a conformance fixture."""

    table_kind: str
    packets: int
    forwarded: int
    delivered_local: int
    dropped: Dict[str, int] = field(default_factory=dict)
    #: per-packet processing latency, seconds (golden-model wall clock)
    latencies: List[float] = field(default_factory=list)

    @property
    def latency_percentiles(self) -> Dict[str, float]:
        return {"p50": percentile(self.latencies, 0.50),
                "p90": percentile(self.latencies, 0.90),
                "p99": percentile(self.latencies, 0.99),
                "max": max(self.latencies) if self.latencies else 0.0}

    def summary(self) -> str:
        pct = self.latency_percentiles
        dropped = sum(self.dropped.values())
        return (f"replayed {self.packets} packets through the "
                f"{self.table_kind} fixture: {self.forwarded} forwarded, "
                f"{self.delivered_local} delivered locally, "
                f"{dropped} dropped; latency p50 {pct['p50'] * 1e6:.1f}us "
                f"p99 {pct['p99'] * 1e6:.1f}us")

    def render(self) -> str:
        return self.summary()

    def to_dict(self) -> Dict[str, object]:
        return {"table_kind": self.table_kind,
                "packets": self.packets,
                "forwarded": self.forwarded,
                "delivered_local": self.delivered_local,
                "dropped": dict(self.dropped),
                "latency_percentiles": self.latency_percentiles}


def replay(packets: Sequence[CapturedPacket],
           table_kind: str = "sequential",
           interface: int = 0) -> ReplayReport:
    """Replay a capture through a fresh conformance fixture router.

    Per-packet golden-model latency is measured with a monotonic clock
    and published to the obs registry as a histogram plus percentile
    gauges, so ``--output`` JSON metric sections carry the numbers.
    """
    from repro.conformance.cases import build_fixture
    from repro.obs import get_registry

    router = build_fixture(table_kind)
    latencies: List[float] = []
    for packet in packets:
        started = time.perf_counter()
        router.receive(interface, packet.data)
        latencies.append(time.perf_counter() - started)
    report = ReplayReport(
        table_kind=table_kind,
        packets=len(packets),
        forwarded=router.stats.forwarded,
        delivered_local=router.stats.delivered_local,
        dropped=dict(router.stats.dropped),
        latencies=latencies)

    registry = get_registry()
    if registry.enabled and latencies:
        histogram = registry.histogram(
            "replay_latency_seconds",
            "per-packet golden-model forwarding latency", ("table",))
        for sample in latencies:
            histogram.observe(sample, table=table_kind)
        gauge = registry.gauge(
            "replay_latency_quantile_seconds",
            "replay latency percentiles", ("table", "quantile"))
        for name, value in report.latency_percentiles.items():
            gauge.set(value, table=table_kind, quantile=name)
    return report


def replay_file(path: str, table_kind: str = "sequential",
                interface: int = 0) -> ReplayReport:
    return replay(read_pcap(path), table_kind=table_kind,
                  interface=interface)
