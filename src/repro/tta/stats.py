"""Simulation statistics: cycle counts and bus/FU utilisation.

These are exactly the outputs the paper's SystemC simulations yield: "the
simulations yield functional correctness information as well as the total
cycle count of the application", and Table 1's "Bus util. [%]" column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimulationReport:
    """Everything measured during one simulation run."""

    cycles: int = 0
    instructions_fetched: int = 0
    moves_executed: int = 0
    moves_squashed: int = 0
    bus_busy_cycles: List[int] = field(default_factory=list)
    fu_triggers: Dict[str, int] = field(default_factory=dict)
    halted: bool = False
    #: hazard occurrences by kind, populated when a
    #: :class:`repro.tta.hazards.HazardDetector` is attached
    hazards: Dict[str, int] = field(default_factory=dict)

    @property
    def bus_count(self) -> int:
        return len(self.bus_busy_cycles)

    @property
    def bus_utilization(self) -> float:
        """Fraction of bus-slot-cycles that carried a move (0..1)."""
        total_slots = self.cycles * max(self.bus_count, 1)
        if total_slots == 0:
            return 0.0
        return sum(self.bus_busy_cycles) / total_slots

    def per_bus_utilization(self) -> List[float]:
        if self.cycles == 0:
            return [0.0] * self.bus_count
        return [busy / self.cycles for busy in self.bus_busy_cycles]

    def fu_utilization(self, fu_name: str) -> float:
        """Triggers per cycle for one FU (an upper-bound activity measure)."""
        if self.cycles == 0:
            return 0.0
        return self.fu_triggers.get(fu_name, 0) / self.cycles

    def merge(self, other: "SimulationReport") -> "SimulationReport":
        """Accumulate a second run (used when simulating packet batches).

        ``halted`` is sticky: the merged report is halted if *either*
        side halted, so a batch that ran to completion is not reported
        un-halted because a later zero-cycle report was folded in. Bus
        counts are validated whenever both sides carry bus data — an
        empty side (a freshly constructed accumulator) adopts the other
        side's bus layout instead of silently truncating it.
        """
        if self.bus_busy_cycles and other.bus_busy_cycles:
            if other.bus_count != self.bus_count:
                raise ValueError(
                    f"cannot merge reports with different bus counts "
                    f"({self.bus_count} vs {other.bus_count})")
            busy = [a + b for a, b in zip(self.bus_busy_cycles,
                                          other.bus_busy_cycles)]
        else:
            busy = list(self.bus_busy_cycles or other.bus_busy_cycles)
        merged = SimulationReport(
            cycles=self.cycles + other.cycles,
            instructions_fetched=self.instructions_fetched + other.instructions_fetched,
            moves_executed=self.moves_executed + other.moves_executed,
            moves_squashed=self.moves_squashed + other.moves_squashed,
            bus_busy_cycles=busy,
            fu_triggers=dict(self.fu_triggers),
            halted=self.halted or other.halted,
            hazards=dict(self.hazards),
        )
        for name, count in other.fu_triggers.items():
            merged.fu_triggers[name] = merged.fu_triggers.get(name, 0) + count
        for kind, count in other.hazards.items():
            merged.hazards[kind] = merged.hazards.get(kind, 0) + count
        return merged

    def summary(self) -> str:
        lines = [
            f"cycles:             {self.cycles}",
            f"moves executed:     {self.moves_executed}",
            f"moves squashed:     {self.moves_squashed}",
            f"bus utilisation:    {self.bus_utilization * 100:.1f}%",
        ]
        for i, util in enumerate(self.per_bus_utilization()):
            lines.append(f"  bus {i}:            {util * 100:.1f}%")
        for name in sorted(self.fu_triggers):
            lines.append(f"  {name} triggers: {self.fu_triggers[name]}")
        for kind in sorted(self.hazards):
            lines.append(f"  hazard {kind}: {self.hazards[kind]}")
        return "\n".join(lines)
