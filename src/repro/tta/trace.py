"""Execution tracing: a per-cycle record of what the processor did.

The paper's simulation environment exists to let the designer *see* what
an architecture instance does with the application; this tracer is the
equivalent debugging aid. :class:`TracingSimulator` hooks the simulator's
move observer and captures, per cycle, the fetched pc and every
transport with its value (or its squashing), renderable as a
waveform-style text listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.tta.instruction import Move
from repro.tta.memory import ProgramMemory
from repro.tta.processor import TacoProcessor
from repro.tta.simulator import Simulator
from repro.tta.stats import SimulationReport


@dataclass
class TracedMove:
    bus: int
    move: Move
    value: Optional[int]  # None = guard squashed the move

    def render(self) -> str:
        if self.value is None:
            return f"[{self.move}] (squashed)"
        return f"{self.move} = {self.value:#x}"


@dataclass
class TraceCycle:
    cycle: int
    pc: int
    moves: List[TracedMove] = field(default_factory=list)

    def render(self) -> str:
        body = " ; ".join(m.render() for m in self.moves) or "(nop)"
        return f"{self.cycle:6d}  pc={self.pc:<4d} {body}"


class TracingSimulator(Simulator):
    """A Simulator that records every transport it issues."""

    def __init__(self, processor: TacoProcessor, program: ProgramMemory,
                 strict: bool = True, max_trace_cycles: int = 100_000):
        super().__init__(processor, program, strict=strict)
        self.trace: List[TraceCycle] = []
        self.max_trace_cycles = max_trace_cycles
        #: True once any cycle fell past ``max_trace_cycles`` — a partial
        #: trace must never be mistakable for a complete one
        self.truncated = False
        #: distinct cycles whose moves were not recorded
        self.dropped_cycles = 0
        self._last_dropped_cycle: Optional[int] = None
        self.move_hook = self._record

    def _record(self, cycle: int, pc: int, bus: int, move: Move,
                value: Optional[int]) -> None:
        if self.trace and self.trace[-1].cycle == cycle:
            # A cycle that started recording keeps every one of its
            # moves, even if the limit was reached mid-cycle: truncation
            # happens only on whole-cycle boundaries.
            record = self.trace[-1]
        else:
            if len(self.trace) >= self.max_trace_cycles:
                self.truncated = True
                if self._last_dropped_cycle != cycle:
                    self._last_dropped_cycle = cycle
                    self.dropped_cycles += 1
                return
            record = TraceCycle(cycle=cycle, pc=pc)
            self.trace.append(record)
        record.moves.append(TracedMove(bus=bus, move=move, value=value))

    def render(self, first: int = 0, last: Optional[int] = None) -> str:
        lines = [c.render() for c in self.trace[first:last]]
        if self.truncated and (last is None or last >= len(self.trace)):
            lines.append(
                f"... trace truncated: {self.dropped_cycles} later "
                f"cycle(s) not recorded "
                f"(max_trace_cycles={self.max_trace_cycles})")
        return "\n".join(lines)

    def moves_of(self, fu_name: str) -> List[Tuple[int, TracedMove]]:
        """All traced moves touching one FU (for focused debugging)."""
        out: List[Tuple[int, TracedMove]] = []
        for record in self.trace:
            for traced in record.moves:
                dest = traced.move.destination
                source = traced.move.source
                if dest.fu == fu_name or getattr(source, "fu", None) == fu_name:
                    out.append((record.cycle, traced))
        return out


def trace_program(processor: TacoProcessor, program: ProgramMemory,
                  max_cycles: int = 100_000,
                  strict: bool = True) -> "tuple[SimulationReport, TracingSimulator]":
    """Run to halt with tracing enabled; returns (report, tracer)."""
    processor.reset()
    simulator = TracingSimulator(processor, program, strict=strict)
    report = simulator.run(max_cycles=max_cycles)
    return report, simulator
