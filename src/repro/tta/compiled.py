"""Pre-decoded fast execution backend for TACO processors.

The move schedule of a TTA program is static per (program, configuration)
pair: which ports each slot reads and writes, which FU a trigger starts,
and which result bit a guard tests are all fixed at compile time — the
insight the TTA decoder literature exploits in hardware. This module
exploits it in simulation: :func:`compile_program` pre-resolves every
socket/port reference once and emits one specialised Python function per
instruction (plus a driver for the fetch/commit/tick skeleton), so the
hot loop runs with **zero per-move dispatch** — no dict lookups, no
``isinstance`` checks, no method-call indirection. The trigger semantics
of every stock FU (counter, comparator, matcher, masker, shifter, mmu,
checksum, liu, ippu, oppu, and the NC's jump/halt ports) are inlined
into the generated code with *eager result application*: a latency-1
operation's results are written to its result ports at trigger time
instead of at the next cycle's commit. That is observationally identical
because sources are read and guards are evaluated strictly before any
write of the same cycle, and the next read happens after the cycle
boundary where the interpreter's commit would have applied the same
values — so these FUs never carry pending completions and the per-cycle
commit scan disappears entirely. FUs this module cannot prove (custom
subclasses, the CAM RTU with its configurable search latency) keep the
generic ``_execute`` + pending-queue path with an unrolled commit check.

All bound objects use deterministic, structure-derived names and are
passed to the generated functions as default arguments (locals, not
namespace globals). Determinism lets the compiled code object be cached
and re-bound to a fresh machine of the same shape, so repeated runs of
one configuration pay CPython's ``compile()`` only once per process.

Bit-identity with :class:`~repro.tta.simulator.Simulator` is a hard
contract (enforced by :mod:`repro.verify.backends` across the Table-1
grid). Three properties of the interpreter make the batching sound:

* every occupied move slot drives its bus exactly once per execution of
  its instruction, whether the guard squashes it or not — so
  ``bus_busy_cycles`` is a static per-instruction vector times the
  per-instruction visit counts, and ``instructions_fetched`` is the sum
  of the visit counts;
* unguarded move counts are static per instruction — only guard
  outcomes are dynamic, so the step functions return just their squash
  count;
* ``fu_triggers`` tracks ``fu.trigger_count``, which the generated code
  maintains inline — it only needs to be copied into the report at run
  end.

The per-instruction visit counts are reduced to the report totals in one
batched pass at run end — through numpy when it is importable (disable
with ``REPRO_NO_NUMPY=1``), otherwise through a plain-Python loop that
produces the same integers.

Whenever an observation hook is attached (``move_hook`` by tracers and
the hazard detector, ``transport_filter`` by fault injectors),
:class:`CompiledSimulator` silently falls back to the inherited
interpreter loop — hooks need to see every transport as it happens, which
is exactly the per-move work this backend compiles away. Fallbacks are
counted in the ``simulator_fallback_total`` metric.

On the abnormal exit paths the compiled backend matches the interpreter's
*exceptions* exactly (type and message, including the budget-exhaustion
loop diagnosis), while the partially-executed final cycle's move counts
may be attributed slightly differently; no consumer reads the report
after a raise, so the differential oracle byte-diffs the normal path and
the exception string on the abnormal ones.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CycleBudgetError, SimulationError
from repro.obs import get_registry
from repro.tta.fu import FunctionalUnit
from repro.tta.hazards import loop_signature
from repro.tta.memory import ProgramMemory
from repro.tta.ports import Immediate, PortKind, PortRef, WORD_MASK
from repro.tta.processor import TacoProcessor
from repro.tta.simulator import DEFAULT_MAX_CYCLES, Simulator

NUMPY_ENV = "REPRO_NO_NUMPY"
"""Set to ``1`` to force the pure-Python batched reduction (CI uses this
to prove the numpy and no-numpy paths are byte-identical)."""

#: lazily imported numpy module (None = unavailable); importing numpy
#: costs ~100 ms, which simulator construction should never pay eagerly
_numpy_state: Dict[str, object] = {"checked": False, "module": None}


def numpy_available() -> bool:
    """True when numpy can be imported in this interpreter."""
    if not _numpy_state["checked"]:
        _numpy_state["checked"] = True
        try:
            import numpy
            _numpy_state["module"] = numpy
        except ImportError:  # pragma: no cover - image bakes numpy in
            _numpy_state["module"] = None
    return _numpy_state["module"] is not None


def numpy_active() -> bool:
    """True when the batched reduction will actually go through numpy."""
    if os.environ.get(NUMPY_ENV, "") not in ("", "0"):
        return False
    return numpy_available()


def _numpy():
    return _numpy_state["module"] if numpy_available() else None


class _CompiledProgram:
    """The pre-decoded schedule: one driver plus static accounting."""

    __slots__ = ("drive", "length", "bus_count", "occupancy",
                 "moves_per_pc", "untracked_fus", "_np_occupancy",
                 "_np_moves")

    def __init__(self, drive: Callable, length: int, bus_count: int,
                 occupancy: Tuple[Tuple[int, ...], ...],
                 untracked_fus: Tuple[FunctionalUnit, ...]):
        self.drive = drive
        self.length = length
        self.bus_count = bus_count
        #: per pc: bus indices whose slot is occupied (guarded or not)
        self.occupancy = occupancy
        self.moves_per_pc = tuple(len(buses) for buses in occupancy)
        #: FUs the generated commit scan does *not* cover (their results
        #: are applied eagerly, or the program never triggers them); they
        #: can only carry pending completions if the caller stepped the
        #: interpreter on the same processor first, which forces a
        #: fallback run
        self.untracked_fus = untracked_fus
        self._np_occupancy = None
        self._np_moves = None

    def numpy_tables(self, np_mod):
        """(occupancy matrix, moves vector) as cached int64 arrays."""
        if self._np_occupancy is None:
            matrix = np_mod.zeros((self.length, self.bus_count),
                                  dtype=np_mod.int64)
            for pc, buses in enumerate(self.occupancy):
                for bus in buses:
                    matrix[pc, bus] = 1
            self._np_occupancy = matrix
            self._np_moves = np_mod.asarray(self.moves_per_pc,
                                            dtype=np_mod.int64)
        return self._np_occupancy, self._np_moves


def _raise_budget(simulator: Simulator, max_cycles: int, pc: int) -> None:
    """Raise exactly the interpreter's budget-exhaustion diagnosis."""
    signature = loop_signature(simulator.pc_history)
    detail = f"; {signature.render()}" if signature else ""
    raise CycleBudgetError(
        f"program did not halt within {max_cycles} cycles "
        f"(pc={pc}){detail}",
        cycles=max_cycles, pc=pc, loop=signature,
        diagnosis=signature.render() if signature else None)


def _ident(name: str) -> str:
    """A deterministic identifier fragment for an FU/port name."""
    return re.sub(r"\W", "_", name)


class _Codegen:
    """Accumulates object bindings and generated source lines.

    Names are derived from the *structure* (FU and port names), never
    from object identity, so the generated source — and therefore the
    cached code object — is identical across machines of the same shape.
    """

    def __init__(self):
        self.namespace: Dict[str, object] = {
            "SimulationError": SimulationError,
            "_raise_budget": _raise_budget,
        }
        self._by_id: Dict[int, str] = {}
        self.lines: List[str] = []
        #: bound names referenced by the function currently being
        #: emitted; they become its default arguments (LOAD_FAST)
        self.params: Optional[Set[str]] = None

    def bind(self, name: str, obj: object) -> str:
        """Register *obj* under the deterministic *name*."""
        existing = self._by_id.get(id(obj))
        if existing is None:
            while name in self.namespace:  # distinct object, same name
                name += "_"
            self._by_id[id(obj)] = name
            self.namespace[name] = obj
            existing = name
        if self.params is not None:
            self.params.add(existing)
        return existing

    def begin_function(self) -> None:
        self.params = set()

    def end_function(self, name: str, body: List[str]) -> None:
        """Emit ``def name(cycle, <bindings as defaults>): body``."""
        defaults = "".join(f", {p}={p}" for p in sorted(self.params))
        self.params = None
        self.lines.append(f"def {name}(cycle{defaults}):")
        self.lines.extend(body)
        self.lines.append("")


def _emit_read(gen: _Codegen, lines: List[str], processor: TacoProcessor,
               source, var: str, strict: bool, indent: str) -> Optional[str]:
    """Emit the source-read lines for one move; returns the value
    expression (a literal for immediates, *var* for port reads)."""
    if isinstance(source, Immediate):
        # truncate(imm) == imm: Immediate validates the 32-bit range
        return repr(source.value)
    assert isinstance(source, PortRef)
    fu, port = processor.resolve(source)
    if not port.readable():
        lines.append(
            f'{indent}raise SimulationError(f"cycle {{cycle}}: move reads '
            f'write-only port {fu.name}.{port.name}")')
        return None
    port_var = gen.bind(f"_p_{_ident(fu.name)}_{_ident(port.name)}", port)
    if strict:
        lines.append(
            f"{indent}if cycle < {port_var}.valid_from_cycle:")
        lines.append(
            f'{indent}    raise SimulationError(f"cycle {{cycle}}: '
            f"{fu.name}.{port.name} not valid until cycle "
            f'{{{port_var}.valid_from_cycle}}")')
    lines.append(f"{indent}{var} = {port_var}.value")
    return var


# -- inline trigger semantics -------------------------------------------------
#
# Each emitter writes the body of one stock FU's ``_execute`` *plus* the
# commit that would apply its results, specialised for the trigger port,
# directly into the step function. They run during the write phase of
# cycle ``c``; the interpreter would apply the same port values, the same
# ``valid_from_cycle`` (= c + 1) and the same result bit at the start of
# cycle ``c + 1`` — and no read, guard or tick can observe the difference
# in between. An emitter returns False to decline (unknown trigger port),
# sending the caller to the generic pending-queue path.

def _port_var(gen: _Codegen, fu: FunctionalUnit, port_name: str) -> str:
    return gen.bind(f"_p_{_ident(fu.name)}_{_ident(port_name)}",
                    fu.ports[port_name])


def _emit_result(lines: List[str], indent: str, port_var: str,
                 value_expr: str) -> None:
    lines.append(f"{indent}{port_var}.value = {value_expr}")
    lines.append(f"{indent}{port_var}.valid_from_cycle = cycle + 1")


def _emit_counter(gen, lines, fu, fu_var, trigger, value, indent):
    exprs = {"t_add": f"({value} + {_port_var(gen, fu, 'o')}.value)"
                      f" & {WORD_MASK}",
             "t_sub": f"({value} - {_port_var(gen, fu, 'o')}.value)"
                      f" & {WORD_MASK}",
             "t_inc": f"({value} + 1) & {WORD_MASK}",
             "t_dec": f"({value} - 1) & {WORD_MASK}"}
    if trigger not in exprs:
        return False
    stop = _port_var(gen, fu, "o_stop")
    lines.append(f"{indent}_r = {exprs[trigger]}")
    _emit_result(lines, indent, _port_var(gen, fu, "r"), "_r")
    lines.append(f"{indent}{fu_var}.result_bit = _r == {stop}.value")
    return True


_COMPARATOR_OPS = {"t_eq": "==", "t_ne": "!=", "t_lt": "<",
                   "t_le": "<=", "t_gt": ">", "t_ge": ">="}


def _emit_comparator(gen, lines, fu, fu_var, trigger, value, indent):
    op = _COMPARATOR_OPS.get(trigger)
    if op is None:
        return False
    lines.append(f"{indent}_b = {value} {op} "
                 f"{_port_var(gen, fu, 'o')}.value")
    _emit_result(lines, indent, _port_var(gen, fu, "r"), "1 if _b else 0")
    lines.append(f"{indent}{fu_var}.result_bit = _b")
    return True


def _emit_matcher(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger != "t":
        return False
    lines.append(f"{indent}_b = (({value} ^ "
                 f"{_port_var(gen, fu, 'o_ref')}.value) & "
                 f"{_port_var(gen, fu, 'o_mask')}.value) == 0")
    _emit_result(lines, indent, _port_var(gen, fu, "r"), "1 if _b else 0")
    lines.append(f"{indent}{fu_var}.result_bit = _b")
    return True


def _emit_masker(gen, lines, fu, fu_var, trigger, value, indent):
    val = _port_var(gen, fu, "o_val")
    if trigger == "t":
        mask = _port_var(gen, fu, "o_mask")
        expr = (f"({value} & ~{mask}.value) | "
                f"({val}.value & {mask}.value)")
    elif trigger == "t_and":
        expr = f"{value} & {val}.value"
    elif trigger == "t_or":
        expr = f"{value} | {val}.value"
    elif trigger == "t_xor":
        expr = f"{value} ^ {val}.value"
    else:
        return False
    lines.append(f"{indent}_r = {expr}")
    _emit_result(lines, indent, _port_var(gen, fu, "r"), "_r")
    lines.append(f"{indent}{fu_var}.result_bit = _r != 0")
    return True


def _emit_shifter(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger not in ("t_sll", "t_srl", "t_sra"):
        return False
    lines.append(f"{indent}_a = {_port_var(gen, fu, 'o')}.value & 31")
    if trigger == "t_sll":
        lines.append(f"{indent}_r = ({value} << _a) & {WORD_MASK}")
    elif trigger == "t_srl":
        lines.append(f"{indent}_r = {value} >> _a")
    else:  # arithmetic: sign-extend bit 31 before the shift
        lines.append(f"{indent}if {value} & 0x80000000:")
        lines.append(f"{indent}    _r = (({value} - 0x100000000) >> _a)"
                     f" & {WORD_MASK}")
        lines.append(f"{indent}else:")
        lines.append(f"{indent}    _r = {value} >> _a")
    _emit_result(lines, indent, _port_var(gen, fu, "r"), "_r")
    lines.append(f"{indent}{fu_var}.result_bit = _r != 0")
    return True


def _emit_mmu(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger not in ("t_read", "t_write"):
        return False
    mem = gen.bind(f"_m_{_ident(fu.name)}", fu.memory)
    words = gen.bind(f"_mw_{_ident(fu.name)}", fu.memory._words)
    size = len(fu.memory)
    if trigger == "t_read":
        address = value
    else:
        address = "_adr"
        lines.append(
            f"{indent}_adr = {_port_var(gen, fu, 'o_addr')}.value")
    # port values are masked non-negative, so only the upper bound can trip
    lines.append(f"{indent}if {address} >= {size}:")
    lines.append(f'{indent}    raise SimulationError(f"data memory access '
                 f'out of range: {{{address}:#x}} (size {size} words)")')
    if trigger == "t_read":
        lines.append(f"{indent}{mem}.reads += 1")
        _emit_result(lines, indent, _port_var(gen, fu, "r"),
                     f"{words}[{address}]")
    else:
        lines.append(f"{indent}{mem}.writes += 1")
        lines.append(f"{indent}{words}[_adr] = {value}")
    lines.append(f"{indent}{fu_var}.result_bit = True")
    return True


def _emit_checksum(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger == "t_clear":
        lines.append(f"{indent}_acc = 0")
    elif trigger == "t_add":
        lines.append(f"{indent}_acc = {fu_var}._accumulator + "
                     f"({value} >> 16) + ({value} & 0xFFFF)")
        lines.append(f"{indent}while _acc >> 16:")
        lines.append(f"{indent}    _acc = (_acc & 0xFFFF) + (_acc >> 16)")
    else:
        return False
    lines.append(f"{indent}{fu_var}._accumulator = _acc")
    _emit_result(lines, indent, _port_var(gen, fu, "r_sum"), "_acc")
    _emit_result(lines, indent, _port_var(gen, fu, "r_cksum"),
                 "~_acc & 0xFFFF")
    lines.append(f"{indent}{fu_var}.result_bit = _acc == 0xFFFF")
    return True


def _emit_liu(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger not in ("t_get", "t_set"):
        return False
    # configure() replaces the word list, so fetch it through the FU
    lines.append(f"{indent}_lw = {fu_var}._words")
    if trigger == "t_get":
        lines.append(f"{indent}if {value} >= len(_lw):")
        lines.append(f'{indent}    raise SimulationError(f"cycle '
                     f'{{cycle}}: LIU index {{{value}}} out of range '
                     f'({{len(_lw)}} words configured)")')
        _emit_result(lines, indent, _port_var(gen, fu, "r"),
                     f"_lw[{value}] & {WORD_MASK}")
    else:
        lines.append(f"{indent}_i = {_port_var(gen, fu, 'o_idx')}.value")
        lines.append(f"{indent}if _i >= len(_lw):")
        lines.append(f'{indent}    raise SimulationError(f"cycle '
                     f'{{cycle}}: LIU index {{_i}} out of range")')
        lines.append(f"{indent}_lw[_i] = {value}")
    lines.append(f"{indent}{fu_var}.result_bit = True")
    return True


def _emit_ippu(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger != "t_pop":
        return False
    queue = gen.bind(f"_q_{_ident(fu.name)}", fu._queue)
    lines.append(f"{indent}if not {queue}:")
    lines.append(f'{indent}    raise SimulationError(f"cycle {{cycle}}: '
                 f'ippu popped with an empty queue (guard on the ippu '
                 f'result bit before popping)")')
    lines.append(f"{indent}_ptr, _ifc = {queue}.popleft()")
    _emit_result(lines, indent, _port_var(gen, fu, "r_ptr"), "_ptr")
    _emit_result(lines, indent, _port_var(gen, fu, "r_iface"), "_ifc")
    return True  # t_pop completion carries no result bit


def _emit_oppu(gen, lines, fu, fu_var, trigger, value, indent):
    pointer = f"{_port_var(gen, fu, 'o_ptr')}.value"
    if trigger == "t_send":
        queue = gen.bind(f"_q_{_ident(fu.name)}", fu._queue)
        lines.append(f"{indent}if {value} >= {len(fu.line_cards)}:")
        lines.append(f'{indent}    raise SimulationError(f"cycle '
                     f'{{cycle}}: oppu told to send on nonexistent '
                     f'interface {{{value}}}")')
        lines.append(f"{indent}{queue}.append(({pointer}, {value}))")
        lines.append(f"{indent}{fu_var}.result_bit = True")
    elif trigger == "t_drop":
        slots = gen.bind(f"_s_{_ident(fu.name)}", fu.slots)
        lines.append(f"{indent}{slots}.release({pointer})")
        lines.append(f"{indent}{fu_var}.result_bit = False")
    elif trigger == "t_punt":
        punted = gen.bind(f"_pu_{_ident(fu.name)}", fu.punted)
        lines.append(f"{indent}{punted}.append({pointer})")
        lines.append(f"{indent}{fu_var}.result_bit = False")
    else:
        return False
    return True


def _emit_nc(gen, lines, fu, fu_var, trigger, value, indent):
    if trigger == "pc":
        lines.append(f"{indent}{fu_var}._jump_target = {value}")
        lines.append(f"{indent}{fu_var}.jumps_taken += 1")
    elif trigger == "halt":
        lines.append(f"{indent}{fu_var}.halted = True")
    else:
        return False
    return True


_EMITTERS: Optional[Dict[type, Callable]] = None


def _trigger_emitters() -> Dict[type, Callable]:
    """Exact-class dispatch table for the inline trigger emitters.

    Imported lazily: the FU modules import routing/router machinery that
    must not load while :mod:`repro.tta` itself is initialising. A
    subclass of a stock FU never matches (its overridden hooks would be
    skipped); it takes the generic ``_execute`` path instead.
    """
    global _EMITTERS
    if _EMITTERS is None:
        from repro.tta.controller import NetworkController
        from repro.tta.fus.checksum import ChecksumUnit
        from repro.tta.fus.comparator import Comparator
        from repro.tta.fus.counter import Counter
        from repro.tta.fus.ippu import InputPreprocessingUnit
        from repro.tta.fus.liu import LocalInfoUnit
        from repro.tta.fus.masker import Masker
        from repro.tta.fus.matcher import Matcher
        from repro.tta.fus.mmu import MemoryManagementUnit
        from repro.tta.fus.oppu import OutputPostprocessingUnit
        from repro.tta.fus.shifter import Shifter
        _EMITTERS = {
            Counter: _emit_counter,
            Comparator: _emit_comparator,
            Matcher: _emit_matcher,
            Masker: _emit_masker,
            Shifter: _emit_shifter,
            MemoryManagementUnit: _emit_mmu,
            ChecksumUnit: _emit_checksum,
            LocalInfoUnit: _emit_liu,
            InputPreprocessingUnit: _emit_ippu,
            OutputPostprocessingUnit: _emit_oppu,
            NetworkController: _emit_nc,
        }
    return _EMITTERS


def _emit_write(gen: _Codegen, lines: List[str], processor: TacoProcessor,
                move, value_expr: str, indent: str,
                tracked: Dict[str, FunctionalUnit]) -> None:
    """Emit the destination-write lines, mirroring FunctionalUnit.write.

    Trigger writes to stock latency-1 FUs inline the operation itself;
    anything else lands in *tracked* and keeps the pending-queue path.
    """
    fu, port = processor.resolve(move.destination)
    if not port.writable():
        lines.append(
            f'{indent}raise SimulationError(f"cycle {{cycle}}: move writes '
            f'read-only port {fu.name}.{port.name}")')
        return
    port_var = gen.bind(f"_p_{_ident(fu.name)}_{_ident(port.name)}", port)
    if value_expr.isdigit():  # immediate: already on the 32-bit datapath
        stored = value_expr
        lines.append(f"{indent}{port_var}.value = {stored}")
    else:
        stored = f"_w{port_var}"
        lines.append(f"{indent}{stored} = {value_expr} & {WORD_MASK}")
        lines.append(f"{indent}{port_var}.value = {stored}")
    if port.kind is not PortKind.TRIGGER:
        return
    fu_var = gen.bind(f"_f_{_ident(fu.name)}", fu)
    if not fu.pipelined:
        lines.append(f"{indent}if cycle < {fu_var}._busy_until:")
        lines.append(
            f'{indent}    raise SimulationError(f"cycle {{cycle}}: '
            f"structural hazard — {fu.name} busy until cycle "
            f'{{{fu_var}._busy_until}}")')
    lines.append(f"{indent}{fu_var}.trigger_count += 1")
    # fu.latency is fixed for the life of a machine (the CAM's search
    # latency is applied at build time via the config)
    lines.append(f"{indent}{fu_var}._busy_until = cycle + {fu.latency}")
    emitter = _trigger_emitters().get(type(fu))
    if emitter is not None and fu.latency == 1 and \
            emitter(gen, lines, fu, fu_var, move.destination.port,
                    stored, indent):
        return
    lines.append(f"{indent}{fu_var}._execute({move.destination.port!r}, "
                 f"{stored}, cycle)")
    tracked[fu.name] = fu


def _emit_step(gen: _Codegen, processor: TacoProcessor, pc: int,
               instruction, strict: bool,
               tracked: Dict[str, FunctionalUnit]) -> str:
    """Emit ``_step<pc>``: guards, reads, then writes in bus order.

    Returns the function name. The function returns the number of moves
    its guards squashed this execution (0 for guard-free instructions).
    """
    name = f"_step{pc}"
    slots = [(bus, move) for bus, move in enumerate(instruction.moves)
             if move is not None]
    guarded = any(move.guard is not None for _, move in slots)
    gen.begin_function()
    body: List[str] = []
    if not slots:
        body.append("    return 0")
        gen.end_function(name, body)
        return name
    if guarded:
        body.append("    _sq = 0")
    # Phase 3 of the interpreter step: guard evaluation + source reads,
    # in bus order (reads see start-of-cycle values; port reads have no
    # side effects, but order still fixes which strict violation fires
    # first).
    values: Dict[int, Optional[str]] = {}
    for bus, move in slots:
        if move.guard is None:
            values[bus] = _emit_read(gen, body, processor, move.source,
                                     f"_v{bus}", strict, "    ")
            continue
        guard_fu = processor.fu(move.guard.fu)
        guard_var = gen.bind(f"_f_{_ident(guard_fu.name)}", guard_fu)
        test = f"not {guard_var}.result_bit" if move.guard.negate \
            else f"{guard_var}.result_bit"
        body.append(f"    if {test}:")
        body.append(f"        _g{bus} = True")
        values[bus] = _emit_read(gen, body, processor, move.source,
                                 f"_v{bus}", strict, "        ")
        body.append("    else:")
        body.append(f"        _g{bus} = False")
        body.append("        _sq += 1")
    # Phase 4: destination writes in bus order, squashed moves skipped.
    for bus, move in slots:
        value_expr = values[bus]
        if move.guard is not None:
            body.append(f"    if _g{bus}:")
            if value_expr is not None:
                _emit_write(gen, body, processor, move, value_expr,
                            "        ", tracked)
            else:  # the read raised; the guard branch cannot be reached
                body.append("        pass")
        elif value_expr is not None:
            _emit_write(gen, body, processor, move, value_expr, "    ",
                        tracked)
    body.append(f"    return {'_sq' if guarded else '0'}")
    gen.end_function(name, body)
    return name


def _tick_overriders(processor: TacoProcessor) -> List[FunctionalUnit]:
    """FUs with a real (non-base) tick, in processor order."""
    return [fu for fu in processor.fus.values()
            if type(fu).tick is not FunctionalUnit.tick]


def _emit_drive(gen: _Codegen, processor: TacoProcessor,
                step_names: Sequence[str],
                commit_fus: Sequence[FunctionalUnit]) -> None:
    """Emit the per-cycle driver: the interpreter's step() skeleton with
    the commit scan, dispatch, and autonomous ticks unrolled."""
    length = len(step_names)
    gen.lines.append("_steps = (" + ", ".join(step_names) + ",)")
    gen.lines.append("")
    gen.begin_function()
    gen.params.add("_steps")
    nc_var = gen.bind(f"_f_{_ident(processor.nc.name)}", processor.nc)
    body: List[str] = []
    emit = body.append
    emit("    sim, max_cycles, visits = cycle")
    emit("    cycle = sim.cycle")
    emit(f"    pc = {nc_var}.pc")
    emit("    _append = sim.pc_history.append")
    emit("    squashed = 0")
    # The ippu admits one pending datagram per tick; once every line
    # card's input queue has drained (nothing delivers mid-run) its tick
    # reduces to refreshing the queue-occupancy result bit.
    ippu_fast: Dict[FunctionalUnit, str] = {}
    for fu in _tick_overriders(processor):
        fu_var = gen.bind(f"_f_{_ident(fu.name)}", fu)
        if fu.kind == "ippu":
            gen.bind(f"_q_{_ident(fu.name)}", fu._queue)
            emit(f"    _admit{fu_var} = {fu_var}.datagrams_admitted"
                 f" + sum(card.pending_depth()"
                 f" for card in {fu_var}.line_cards)")
            ippu_fast[fu] = fu_var
    emit("    try:")
    emit(f"        while not {nc_var}.halted:")
    emit("            if cycle >= max_cycles:")
    emit("                _raise_budget(sim, max_cycles, pc)")
    # Phase 1: commit matured results. Only generic (non-inlined)
    # trigger targets can carry pending completions.
    for fu in commit_fus:
        fu_var = gen.bind(f"_f_{_ident(fu.name)}", fu)
        emit(f"            if {fu_var}._pending: {fu_var}.commit(cycle)")
    # Phase 2: fetch (bounds check + pc trace; the dispatch below *is*
    # the decoded fetch).
    emit(f"            if pc < 0 or pc >= {length}:")
    emit('                raise SimulationError(')
    emit(f'                    f"program counter out of range: {{pc}} '
         f'(program has {length} instructions)")')
    emit("            _append(pc)")
    # Phases 3+4: the specialised per-instruction function.
    emit("            squashed += _steps[pc](cycle)")
    emit("            visits[pc] += 1")
    # Phase 5: autonomous ticks in processor order, then the NC advance.
    for fu in _tick_overriders(processor):
        fu_var = gen.bind(f"_f_{_ident(fu.name)}", fu)
        if fu in ippu_fast:
            queue_var = gen.bind(f"_q_{_ident(fu.name)}", fu._queue)
            emit(f"            if {fu_var}.datagrams_admitted < "
                 f"_admit{fu_var}:")
            emit(f"                {fu_var}.tick(cycle)")
            emit("            else:")
            emit(f"                {fu_var}.result_bit = "
                 f"not not {queue_var}")
        elif fu.kind == "oppu":
            queue_var = gen.bind(f"_q_{_ident(fu.name)}", fu._queue)
            emit(f"            if {queue_var}: {fu_var}.tick(cycle)")
        else:
            emit(f"            {fu_var}.tick(cycle)")
    emit(f"            jump = {nc_var}._jump_target")
    emit("            if jump is None:")
    emit("                pc += 1")
    emit("            else:")
    emit("                pc = jump")
    emit(f"                {nc_var}._jump_target = None")
    emit("            cycle += 1")
    emit("    finally:")
    emit("        sim.cycle = cycle")
    emit(f"        {nc_var}.pc = pc")
    emit("        sim._drive_squashed = squashed")
    gen.end_function("_drive", body)


#: code objects for already-seen schedule sources; the source is fully
#: determined by (program, processor shape, strict), so a campaign that
#: sweeps one configuration pays CPython's compile() once
_CODE_CACHE: Dict[str, object] = {}
_CODE_CACHE_MAX = 64


def compile_program(processor: TacoProcessor, program: ProgramMemory,
                    strict: bool = True) -> _CompiledProgram:
    """Pre-decode *program* against *processor* into a flat schedule."""
    processor.validate_program(program)
    gen = _Codegen()
    step_names = []
    occupancy = []
    tracked: Dict[str, FunctionalUnit] = {}
    for pc, instruction in enumerate(program):
        step_names.append(_emit_step(gen, processor, pc, instruction,
                                     strict, tracked))
        occupancy.append(tuple(
            bus for bus, move in enumerate(instruction.moves)
            if move is not None))
    commit_fus = [fu for name, fu in processor.fus.items()
                  if name in tracked]
    untracked = tuple(fu for name, fu in processor.fus.items()
                      if name not in tracked)
    _emit_drive(gen, processor, step_names, commit_fus)
    source = "\n".join(gen.lines)
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        code = compile(source, "<tta-compiled-schedule>", "exec")
        _CODE_CACHE[source] = code
    exec(code, gen.namespace)  # noqa: S102 - generated from the program
    return _CompiledProgram(
        drive=gen.namespace["_drive"], length=len(program),
        bus_count=program.width, occupancy=tuple(occupancy),
        untracked_fus=untracked)


class CompiledSimulator(Simulator):
    """Drop-in :class:`Simulator` that runs the pre-decoded schedule.

    ``step()``/``run_cycles()`` keep the inherited per-cycle interpreter
    (single-stepping is a debugging activity); ``run()`` uses the
    compiled schedule unless an observation hook forces a fallback.
    """

    backend_name = "compiled"

    def __init__(self, processor: TacoProcessor, program: ProgramMemory,
                 strict: bool = True):
        super().__init__(processor, program, strict=strict)
        self._compiled: Optional[_CompiledProgram] = None
        self._drive_squashed = 0

    # -- fallback ---------------------------------------------------------------

    def _fallback_reason(self) -> Optional[str]:
        """Why this run must take the interpreter (None = compiled OK)."""
        reasons = []
        if self.move_hook is not None:
            reasons.append("move_hook")
        if self.transport_filter is not None:
            reasons.append("transport_filter")
        return "+".join(reasons) if reasons else None

    def _note_fallback(self, reason: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "simulator_fallback_total",
                "compiled-backend runs that fell back to the interpreter",
                ("reason",)).inc(reason=reason)

    # -- public API -------------------------------------------------------------

    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES):
        reason = self._fallback_reason()
        if reason is None:
            if self._compiled is None:
                self._compiled = compile_program(
                    self.processor, self.program, strict=self.strict)
            if any(fu._pending for fu in self._compiled.untracked_fus):
                # Stepping the interpreter first (or a different program
                # on the same processor) left completions pending on an
                # FU this schedule applies eagerly or never triggers;
                # only the interpreter's full commit scan retires those.
                reason = "pending_state"
        if reason is not None:
            self._note_fallback(reason)
            self.metrics_backend = "interpreter"
            return super().run(max_cycles)
        self.metrics_backend = "compiled"
        registry = get_registry()
        start = (registry.time(), self.cycle, self.report.moves_executed,
                 dict(self.report.hazards)) if registry.enabled else None
        visits = [0] * self._compiled.length
        self._drive_squashed = 0
        try:
            self._compiled.drive((self, max_cycles, visits))
        finally:
            self._finalize(visits)
            if start is not None:
                self._publish_run_metrics(registry, *start)
        self.report.halted = True
        return self.report

    # -- batched accounting ----------------------------------------------------

    def _finalize(self, visits: List[int]) -> None:
        """Reduce per-pc visit counts into the interpreter's report
        totals (numpy when active, identical plain-Python otherwise)."""
        compiled = self._compiled
        report = self.report
        report.cycles = self.cycle
        report.instructions_fetched += sum(visits)
        report.moves_squashed += self._drive_squashed
        np_mod = _numpy() if numpy_active() else None
        if np_mod is not None:
            matrix, moves_vec = compiled.numpy_tables(np_mod)
            counts = np_mod.asarray(visits, dtype=np_mod.int64)
            busy = counts @ matrix
            issued = int(counts @ moves_vec)
            for bus, extra in enumerate(busy.tolist()):
                report.bus_busy_cycles[bus] += extra
        else:
            issued = 0
            busy_acc = [0] * compiled.bus_count
            moves_per_pc = compiled.moves_per_pc
            occupancy = compiled.occupancy
            for pc, count in enumerate(visits):
                if not count:
                    continue
                issued += count * moves_per_pc[pc]
                for bus in occupancy[pc]:
                    busy_acc[bus] += count
            for bus, extra in enumerate(busy_acc):
                report.bus_busy_cycles[bus] += extra
        # every occupied slot was either squashed or executed
        report.moves_executed += issued - self._drive_squashed
        for name, fu in self.processor.fus.items():
            report.fu_triggers[name] = fu.trigger_count
