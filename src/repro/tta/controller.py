"""Interconnection network controller (NC).

The NC fetches one instruction per cycle, evaluates move guards against
the FU result-bit wires, and issues the moves onto the buses. It is itself
addressable as a destination: writing its ``pc`` port is a jump (taking
effect at the next fetch), and writing ``halt`` stops the program. This is
how TTAs realise control flow without a branch unit — a guarded move to
``nc.pc``.
"""

from __future__ import annotations

from typing import Optional

from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind

NC_NAME = "nc"
PC_PORT = "pc"
HALT_PORT = "halt"


class NetworkController(FunctionalUnit):
    """The NC as an addressable unit with ``pc`` and ``halt`` destinations."""

    kind = "nc"
    latency = 1

    def __init__(self, name: str = NC_NAME):
        super().__init__(name)
        self.pc = 0
        self.halted = False
        self._jump_target: Optional[int] = None
        self.jumps_taken = 0

    def _declare_ports(self) -> None:
        self.add_port(PC_PORT, PortKind.TRIGGER)
        self.add_port(HALT_PORT, PortKind.TRIGGER)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if trigger_port == PC_PORT:
            self._jump_target = value
            self.jumps_taken += 1
        else:
            self.halted = True

    def advance(self) -> None:
        """Move to the next instruction (called at end of each cycle)."""
        if self._jump_target is not None:
            self.pc = self._jump_target
            self._jump_target = None
        else:
            self.pc += 1

    def reset(self) -> None:
        super().reset()
        self.pc = 0
        self.halted = False
        self._jump_target = None
        self.jumps_taken = 0
