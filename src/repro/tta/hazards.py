"""Hazard detection: turn silent or crashing misbehavior into diagnostics.

The strict simulator already *rejects* some ill-formed behaviour (premature
result reads, structural hazards on non-pipelined FUs). This module covers
the misbehaviour that is silent — legal-looking move streams that almost
certainly indicate a scheduler or program bug — and the misbehaviour whose
stock diagnosis is useless (a runaway program reported only as "did not
halt"). A :class:`HazardDetector` plugs into the existing
``Simulator.move_hook`` observer and records:

* **conflicting-write** — a move writes an FU register in the same cycle
  an operation result matured into it (the bus write and the FU's internal
  result write race on one clock edge; which value survives is a silicon
  coin toss, even though the simulator applies them deterministically);
* **trigger-in-flight** — a trigger write to an FU whose previous
  operation has not completed yet (legal on pipelined FUs, but on a
  multi-cycle unit it silently discards the in-flight result);
* **read-never-written** — a move reads a general-purpose register no move
  ever wrote (the value is the reset zero, which is almost never what the
  program author meant).

For runaway programs, :func:`loop_signature` recovers the repeating pc
cycle from a trailing pc window; the simulator uses it to report *where*
a program spins instead of just that it did.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Set, Tuple

from repro.tta.instruction import Move
from repro.tta.ports import PortKind, PortRef

#: how many trailing pcs the detector (and the simulator) keep for loop
#: diagnosis; covers every loop body the code generators emit
PC_WINDOW = 64

_REGISTER_FILE_KIND = "gpr"


@dataclass(frozen=True)
class LoopSignature:
    """The repeating pc cycle a runaway program is stuck in."""

    pcs: Tuple[int, ...]
    repeats: int

    @property
    def period(self) -> int:
        return len(self.pcs)

    def render(self) -> str:
        body = "->".join(str(pc) for pc in self.pcs)
        return (f"pc loop [{body}] (period {self.period}, "
                f"x{self.repeats} in the last window)")


def loop_signature(pcs: Sequence[int],
                   min_repeats: int = 2) -> Optional[LoopSignature]:
    """Smallest repeating suffix of a pc history, or None if aperiodic.

    Scans candidate periods shortest-first so a tight spin (``pc -> pc``)
    is reported as period 1 rather than any multiple of it.
    """
    history = list(pcs)
    n = len(history)
    for period in range(1, n // min_repeats + 1):
        matched = 0
        while matched + period < n and \
                history[n - 1 - matched] == history[n - 1 - matched - period]:
            matched += 1
        repeats = matched // period + 1
        if repeats >= min_repeats:
            return LoopSignature(pcs=tuple(history[n - period:]),
                                 repeats=repeats)
    return None


@dataclass(frozen=True)
class Hazard:
    """One detected hazard occurrence."""

    kind: str  # "conflicting-write" | "trigger-in-flight" | "read-never-written"
    cycle: int
    pc: int
    fu: str
    port: str
    detail: str

    def render(self) -> str:
        return (f"cycle {self.cycle} pc={self.pc}: {self.kind} on "
                f"{self.fu}.{self.port} — {self.detail}")


@dataclass
class HazardReport:
    """Everything one detector observed during a run."""

    hazards: List[Hazard] = field(default_factory=list)
    truncated: bool = False

    def __bool__(self) -> bool:
        return bool(self.hazards)

    def by_kind(self) -> "dict[str, int]":
        counts: dict[str, int] = {}
        for hazard in self.hazards:
            counts[hazard.kind] = counts.get(hazard.kind, 0) + 1
        return counts

    def render(self) -> str:
        if not self.hazards:
            return "no hazards detected"
        lines = [f"{len(self.hazards)} hazard(s)"
                 + (" (truncated)" if self.truncated else "") + ":"]
        lines.extend("  " + hazard.render() for hazard in self.hazards)
        return "\n".join(lines)


class HazardDetector:
    """Observes a simulator's move stream and records hazards.

    Attach with :meth:`attach`; it chains any hook already installed (e.g.
    a :class:`~repro.tta.trace.TracingSimulator` record hook), so tracing
    and hazard detection compose.
    """

    def __init__(self, processor, max_hazards: int = 200):
        self.processor = processor
        self.report = HazardReport()
        self.max_hazards = max_hazards
        self.pc_history: Deque[int] = deque(maxlen=PC_WINDOW)
        self._written_registers: Set[Tuple[str, str]] = set()
        self._cycle_writes: List[Tuple[str, str]] = []
        self._current_cycle: Optional[int] = None
        self._simulator = None

    # -- wiring -----------------------------------------------------------------

    def attach(self, simulator):
        """Install on *simulator* (chaining any existing move hook)."""
        previous = simulator.move_hook

        def hook(cycle, pc, bus, move, value):
            if previous is not None:
                previous(cycle, pc, bus, move, value)
            self.on_move(cycle, pc, bus, move, value)

        simulator.move_hook = hook
        self._simulator = simulator
        return simulator

    # -- observation ------------------------------------------------------------

    def on_move(self, cycle: int, pc: int, bus: int, move: Move,
                value: Optional[int]) -> None:
        if cycle != self._current_cycle:
            # Register writes of the previous cycle become visible now:
            # within a cycle all reads see start-of-cycle state.
            self._written_registers.update(self._cycle_writes)
            self._cycle_writes.clear()
            self._current_cycle = cycle
            self.pc_history.append(pc)
        if value is None:
            return  # guard squashed the move: no read, no write
        self._check_read(cycle, pc, move)
        self._check_write(cycle, pc, move)

    def loop_signature(self) -> Optional[LoopSignature]:
        return loop_signature(self.pc_history)

    # -- internals --------------------------------------------------------------

    def _check_read(self, cycle: int, pc: int, move: Move) -> None:
        source = move.source
        if not isinstance(source, PortRef):
            return
        fu = self.processor.fu(source.fu)
        if fu.kind != _REGISTER_FILE_KIND:
            return  # result-port timing is policed by the strict simulator
        # Same-cycle writes are deliberately NOT consulted: reads see
        # start-of-cycle state, so a register first written this cycle is
        # still unwritten from this move's point of view.
        key = (source.fu, source.port)
        if key not in self._written_registers:
            self._record(Hazard(
                kind="read-never-written", cycle=cycle, pc=pc,
                fu=source.fu, port=source.port,
                detail=f"{move} reads the reset value of an unwritten "
                       f"register"))

    def _check_write(self, cycle: int, pc: int, move: Move) -> None:
        fu, port = self.processor.resolve(move.destination)
        if port.kind is PortKind.TRIGGER and fu.in_flight(cycle):
            self._record(Hazard(
                kind="trigger-in-flight", cycle=cycle, pc=pc,
                fu=fu.name, port=port.name,
                detail=f"{move} re-triggers {fu.name} while its previous "
                       f"operation (latency {fu.latency}) is still in "
                       f"flight"))
        if port.kind in (PortKind.RESULT, PortKind.REGISTER) and \
                cycle > 0 and port.valid_from_cycle == cycle:
            self._record(Hazard(
                kind="conflicting-write", cycle=cycle, pc=pc,
                fu=fu.name, port=port.name,
                detail=f"{move} writes the register in the same cycle an "
                       f"operation result matured into it"))
        if fu.kind == _REGISTER_FILE_KIND:
            self._cycle_writes.append((fu.name, port.name))

    def _record(self, hazard: Hazard) -> None:
        if len(self.report.hazards) >= self.max_hazards:
            self.report.truncated = True
            return
        self.report.hazards.append(hazard)
        if self._simulator is not None:
            counts = self._simulator.report.hazards
            counts[hazard.kind] = counts.get(hazard.kind, 0) + 1
