"""Functional-unit framework: trigger semantics, latency, result signals.

Timing contract (shared with :mod:`repro.tta.simulator`):

* During cycle *k* the simulator executes the moves of one instruction.
  Sources are read as of the start of the cycle; writes are applied in bus
  order, so an operand move on a lower-numbered bus is visible to a trigger
  on a higher-numbered bus of the same instruction (operands and trigger
  latch on the same clock edge in hardware).
* A trigger in cycle *k* on an FU with latency *L* makes its results (and
  its NC result bit) readable from cycle *k + L* — the simulator commits
  pending completions at the start of each cycle.
* The paper's FUs all have ``latency = 1`` ("each FU has been designed to
  complete the execution of its function in one clock cycle"); only the
  CAM routing-table unit deviates, because its 40 ns search is a wall-clock
  constant independent of the processor clock.
* A *pipelined* FU accepts a trigger every cycle. A non-pipelined FU that
  is re-triggered while busy raises a structural-hazard error — the
  scheduler must never produce such code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError, TtaError
from repro.tta.ports import Port, PortKind, truncate


class FunctionalUnit:
    """Base class for all TACO functional units."""

    #: FU type identifier ("counter", "matcher"...); instances get names
    #: like "cnt0", "cnt1".
    kind: str = "fu"
    latency: int = 1
    pipelined: bool = True

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, Port] = {}
        #: the 1-bit wire into the interconnection network controller
        self.result_bit = False
        self.trigger_count = 0
        self._pending: List[Tuple[int, Dict[str, int], Optional[bool]]] = []
        self._busy_until = 0
        self._declare_ports()

    # -- subclass interface ----------------------------------------------------

    def _declare_ports(self) -> None:
        """Subclasses create their ports here via :meth:`add_port`."""

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        """Perform the operation started by writing *trigger_port*.

        Implementations normally call :meth:`finish` to schedule results.
        """
        raise NotImplementedError

    # -- port management ---------------------------------------------------------

    def add_port(self, name: str, kind: PortKind) -> Port:
        if name in self.ports:
            raise TtaError(f"duplicate port {name!r} on {self.name}")
        port = Port(name, kind)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise TtaError(f"no port {name!r} on FU {self.name!r} "
                           f"(has {sorted(self.ports)})") from None

    def operand(self, name: str) -> int:
        """Convenience for subclasses reading an operand latch."""
        return self.ports[name].value

    # -- simulator interface ------------------------------------------------------

    def write(self, port_name: str, value: int, cycle: int) -> None:
        """A move deposits *value* into a port during *cycle*."""
        port = self.port(port_name)
        if not port.writable():
            raise SimulationError(
                f"cycle {cycle}: move writes read-only port {self.name}.{port_name}")
        port.value = truncate(value)
        if port.kind is PortKind.TRIGGER:
            if not self.pipelined and cycle < self._busy_until:
                raise SimulationError(
                    f"cycle {cycle}: structural hazard — {self.name} busy "
                    f"until cycle {self._busy_until}")
            self.trigger_count += 1
            self._busy_until = cycle + self.latency
            self._execute(port_name, port.value, cycle)

    def read(self, port_name: str, cycle: int, strict: bool = False) -> int:
        port = self.port(port_name)
        if not port.readable():
            raise SimulationError(
                f"cycle {cycle}: move reads write-only port {self.name}.{port_name}")
        if strict and cycle < port.valid_from_cycle:
            raise SimulationError(
                f"cycle {cycle}: {self.name}.{port_name} not valid until "
                f"cycle {port.valid_from_cycle}")
        return port.value

    def finish(self, cycle: int, results: Dict[str, int],
               result_bit: Optional[bool] = None,
               latency: Optional[int] = None) -> None:
        """Schedule *results* to appear ``latency`` cycles after *cycle*."""
        ready = cycle + (self.latency if latency is None else latency)
        # Mark the affected result ports in-flight right away, so strict
        # simulation flags a read issued before the operation completes.
        for port_name in results:
            port = self.port(port_name)
            port.valid_from_cycle = max(port.valid_from_cycle, ready)
        self._pending.append((ready, results, result_bit))

    def commit(self, cycle: int) -> None:
        """Apply completions that mature at or before *cycle* (call at cycle start)."""
        if not self._pending:
            return
        remaining = []
        # Apply in schedule order so a newer completion overwrites an older one.
        for ready, results, bit in self._pending:
            if ready <= cycle:
                for port_name, value in results.items():
                    port = self.port(port_name)
                    port.value = truncate(value)
                    port.valid_from_cycle = ready
                if bit is not None:
                    self.result_bit = bit
            else:
                remaining.append((ready, results, bit))
        self._pending = remaining

    def in_flight(self, cycle: int) -> bool:
        """True while an operation triggered earlier has not completed."""
        return cycle < self._busy_until

    def tick(self, cycle: int) -> None:
        """End-of-cycle hook for autonomous units (ippu/oppu DMA engines)."""

    def reset(self) -> None:
        for port in self.ports.values():
            port.value = 0
            port.valid_from_cycle = 0
        self.result_bit = False
        self.trigger_count = 0
        self._pending.clear()
        self._busy_until = 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class RegisterFileUnit(FunctionalUnit):
    """A general-purpose register file exposed as readable/writable ports.

    The paper's architecture (Fig. 2) includes a register block on the
    interconnection network; TTA optimisations like operand sharing use it.
    """

    kind = "gpr"

    def __init__(self, name: str, count: int = 8):
        if count < 1:
            raise TtaError(f"register count must be positive: {count}")
        self.count = count
        super().__init__(name)

    def _declare_ports(self) -> None:
        for i in range(self.count):
            self.add_port(f"r{i}", PortKind.REGISTER)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        raise SimulationError("register file has no trigger ports")
