"""The interconnection network: data buses and socket connectivity.

FUs connect to buses through sockets; a move can only travel on a bus both
its source and destination sockets reach. The default network is fully
connected (every port reaches every bus), which is what the paper's
configurations use; restricted connectivity is supported so that DSE
extensions can explore cheaper networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.errors import ConfigurationError
from repro.tta.ports import PortRef


@dataclass(frozen=True)
class Bus:
    """One data bus; purely structural (width is uniform at 32 bits)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"negative bus index: {self.index}")


@dataclass
class Interconnect:
    """Bus set plus the socket connectivity relation.

    ``connectivity`` maps an FU name to the set of bus indices its sockets
    reach; an absent FU is fully connected. Per-FU (rather than per-port)
    granularity matches the paper's socket model: an FU's input and output
    sockets attach to the same subset of buses.
    """

    bus_count: int
    connectivity: Dict[str, FrozenSet[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bus_count < 1:
            raise ConfigurationError(
                f"at least one bus required, got {self.bus_count}")
        for fu, buses in self.connectivity.items():
            bad = [b for b in buses if not 0 <= b < self.bus_count]
            if bad:
                raise ConfigurationError(
                    f"FU {fu!r} connected to nonexistent buses {bad}")
            if not buses:
                raise ConfigurationError(f"FU {fu!r} connected to no bus")

    def buses(self) -> "list[Bus]":
        return [Bus(i) for i in range(self.bus_count)]

    def reachable(self, fu_name: str) -> FrozenSet[int]:
        return self.connectivity.get(
            fu_name, frozenset(range(self.bus_count)))

    def allows(self, bus_index: int, source: Optional[PortRef],
               destination: PortRef) -> bool:
        """Can a move from *source* to *destination* use this bus?

        Immediate sources (``source=None``) are injected by the NC's
        instruction word and reach every bus.
        """
        if not 0 <= bus_index < self.bus_count:
            return False
        if source is not None and bus_index not in self.reachable(source.fu):
            return False
        return bus_index in self.reachable(destination.fu)
