"""Program and data memories of the TACO processor.

Data memory is word-addressed with a 32-bit word, matching the datapath.
Datagrams are stored packed big-endian, so the IPv6 header fields the FUs
manipulate fall on natural word boundaries (version/class/flow in word 0,
payload length + next header + hop limit in word 1, source address in
words 2–5, destination address in words 6–9).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SimulationError, TtaError
from repro.tta.instruction import Instruction
from repro.tta.ports import truncate


class DataMemory:
    """Flat word-addressed RAM with byte-block helpers for datagrams."""

    def __init__(self, words: int = 1 << 16):
        if words < 1:
            raise TtaError(f"memory size must be positive: {words}")
        self._words: List[int] = [0] * words
        self.reads = 0
        self.writes = 0

    def __len__(self) -> int:
        return len(self._words)

    def load(self, address: int) -> int:
        self._check(address)
        self.reads += 1
        return self._words[address]

    def store(self, address: int, value: int) -> None:
        self._check(address)
        self.writes += 1
        self._words[address] = truncate(value)

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._words):
            raise SimulationError(
                f"data memory access out of range: {address:#x} "
                f"(size {len(self._words)} words)")

    # -- block helpers (DMA by the ippu/oppu, test setup) ------------------------

    def write_bytes(self, word_address: int, data: bytes) -> None:
        """Pack *data* big-endian from *word_address*; pads the tail word."""
        padded = data + b"\x00" * (-len(data) % 4)
        for i in range(0, len(padded), 4):
            self.store(word_address + i // 4, int.from_bytes(padded[i:i + 4], "big"))

    def read_bytes(self, word_address: int, length: int) -> bytes:
        words_needed = (length + 3) // 4
        chunks = [self.load(word_address + i).to_bytes(4, "big")
                  for i in range(words_needed)]
        return b"".join(chunks)[:length]

    def snapshot_counters(self) -> "tuple[int, int]":
        return self.reads, self.writes


class ProgramMemory:
    """Read-only instruction store, one :class:`Instruction` per address."""

    def __init__(self, instructions: Sequence[Instruction]):
        if not instructions:
            raise TtaError("program must contain at least one instruction")
        widths = {i.width for i in instructions}
        if len(widths) != 1:
            raise TtaError(f"inconsistent instruction widths: {sorted(widths)}")
        self._instructions = tuple(instructions)

    @property
    def width(self) -> int:
        return self._instructions[0].width

    def __len__(self) -> int:
        return len(self._instructions)

    def fetch(self, address: int) -> Instruction:
        if not 0 <= address < len(self._instructions):
            raise SimulationError(
                f"program counter out of range: {address} "
                f"(program has {len(self._instructions)} instructions)")
        return self._instructions[address]

    def __iter__(self):
        return iter(self._instructions)
