"""Memory-slot management shared by the ippu and oppu DMA engines.

The paper's router copies each whole datagram into main memory and passes
pointers between the preprocessing unit, the program, and the
postprocessing unit. The :class:`SlotPool` models the fixed-size buffer
slots that make this possible without a heap: each slot stores
``[length_bytes, input_interface, payload...]``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TtaError
from repro.tta.memory import DataMemory

SLOT_HEADER_WORDS = 2
#: slot word 0 = datagram length in bytes, word 1 = arrival interface

DEFAULT_SLOT_BYTES = 2048
DEFAULT_SLOT_COUNT = 32


class SlotPool:
    """Fixed-size datagram buffers carved out of data memory."""

    def __init__(self, memory: DataMemory, base_word: int = 0x1000,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slot_count: int = DEFAULT_SLOT_COUNT):
        if slot_bytes % 4:
            raise TtaError(f"slot size must be word aligned: {slot_bytes}")
        if slot_count < 1:
            raise TtaError(f"need at least one slot: {slot_count}")
        self.memory = memory
        self.base_word = base_word
        self.slot_words = SLOT_HEADER_WORDS + slot_bytes // 4
        self.slot_bytes = slot_bytes
        self.slot_count = slot_count
        end = base_word + self.slot_words * slot_count
        if end > len(memory):
            raise TtaError(
                f"slot pool [{base_word}, {end}) exceeds memory "
                f"({len(memory)} words)")
        self._free: List[int] = [base_word + i * self.slot_words
                                 for i in range(slot_count)]
        self.exhaustion_events = 0

    def allocate(self) -> Optional[int]:
        if not self._free:
            self.exhaustion_events += 1
            return None
        return self._free.pop()

    def release(self, slot_address: int) -> None:
        offset = slot_address - self.base_word
        if offset % self.slot_words or not (
                0 <= offset // self.slot_words < self.slot_count):
            raise TtaError(f"not a slot address: {slot_address:#x}")
        if slot_address in self._free:
            raise TtaError(f"double release of slot {slot_address:#x}")
        self._free.append(slot_address)

    def free_count(self) -> int:
        return len(self._free)

    # -- datagram storage ----------------------------------------------------------

    def store_datagram(self, slot_address: int, datagram: bytes,
                       interface: int) -> None:
        if len(datagram) > self.slot_bytes:
            raise TtaError(
                f"datagram of {len(datagram)} bytes exceeds slot size "
                f"{self.slot_bytes}")
        self.memory.store(slot_address, len(datagram))
        self.memory.store(slot_address + 1, interface)
        self.memory.write_bytes(slot_address + SLOT_HEADER_WORDS, datagram)

    def load_datagram(self, slot_address: int) -> bytes:
        length = self.memory.load(slot_address)
        return self.memory.read_bytes(slot_address + SLOT_HEADER_WORDS, length)

    def datagram_word(self, slot_address: int, word_offset: int) -> int:
        """Word *word_offset* of the stored datagram (header fields)."""
        return self.memory.load(slot_address + SLOT_HEADER_WORDS + word_offset)
