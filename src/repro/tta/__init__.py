"""Cycle-accurate model of TACO transport-triggered protocol processors.

The model mirrors the paper's SystemC simulation environment: functional
units exchange 32-bit words over an interconnection network of data buses
under control of the network controller; the only instruction is a
(possibly guarded) move. Simulating a program yields the total cycle count
and bus/FU utilisation used by the design-space exploration in
:mod:`repro.dse`.
"""

from repro.tta.bus import Bus, Interconnect
from repro.tta.controller import HALT_PORT, NC_NAME, PC_PORT, NetworkController
from repro.tta.devices import SLOT_HEADER_WORDS, SlotPool
from repro.tta.fu import FunctionalUnit, RegisterFileUnit
from repro.tta.instruction import Instruction, Move, nop
from repro.tta.memory import DataMemory, ProgramMemory
from repro.tta.ports import (
    Guard,
    Immediate,
    Port,
    PortKind,
    PortRef,
    WORD_MASK,
    truncate,
)
from repro.tta.hazards import (
    Hazard,
    HazardDetector,
    HazardReport,
    LoopSignature,
    loop_signature,
)
from repro.tta.processor import TacoProcessor
from repro.tta.simulator import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_RUN_MAX_CYCLES,
    Simulator,
    simulate,
)
from repro.tta.stats import SimulationReport
from repro.tta.compiled import CompiledSimulator, compile_program
from repro.tta.backends import (
    BACKEND_AUTO,
    BACKEND_COMPILED,
    BACKEND_INTERPRETER,
    DEFAULT_BACKEND,
    SimulatorBackend,
    available_backends,
    create_simulator,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.tta.trace import TracingSimulator, trace_program

__all__ = [
    "Hazard", "HazardDetector", "HazardReport", "LoopSignature",
    "loop_signature",
    "Bus", "Interconnect",
    "NetworkController", "NC_NAME", "PC_PORT", "HALT_PORT",
    "SlotPool", "SLOT_HEADER_WORDS",
    "FunctionalUnit", "RegisterFileUnit",
    "Instruction", "Move", "nop",
    "DataMemory", "ProgramMemory",
    "Guard", "Immediate", "Port", "PortKind", "PortRef",
    "WORD_MASK", "truncate",
    "TacoProcessor",
    "Simulator", "simulate", "SimulationReport", "DEFAULT_MAX_CYCLES",
    "DEFAULT_RUN_MAX_CYCLES",
    "CompiledSimulator", "compile_program",
    "SimulatorBackend", "available_backends", "create_simulator",
    "get_backend", "register_backend", "resolve_backend_name",
    "BACKEND_AUTO", "BACKEND_COMPILED", "BACKEND_INTERPRETER",
    "DEFAULT_BACKEND",
    "TracingSimulator", "trace_program",
]
