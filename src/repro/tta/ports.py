"""Ports, port references, immediates, and guards — the vocabulary of moves.

In a transport-triggered architecture the *only* instruction is a move
between ports. A port belongs to a functional unit and is one of:

* ``OPERAND`` — input latch; writing stores a value for the next operation;
* ``TRIGGER`` — input latch whose write *starts* the operation;
* ``RESULT`` — output latch the FU deposits results into;
* ``REGISTER`` — general-purpose storage, readable and writable (the GPR
  file's ports, and internal NC destinations).

Moves name ports with :class:`PortRef`; literal sources are
:class:`Immediate`. A move may carry a :class:`Guard`, which predicates it
on the 1-bit result signal an FU drives into the interconnection network
controller (the paper's Matcher/Comparator/Counter → NC wires).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

from repro.errors import TtaError

WORD_MASK = 0xFFFFFFFF
"""TACO uses a 32-bit datapath; all port values are 32-bit words."""


class PortKind(Enum):
    OPERAND = "operand"
    TRIGGER = "trigger"
    RESULT = "result"
    REGISTER = "register"


class Port:
    """A named latch on a functional unit."""

    __slots__ = ("name", "kind", "value", "valid_from_cycle")

    def __init__(self, name: str, kind: PortKind):
        self.name = name
        self.kind = kind
        self.value = 0
        #: first cycle at which the current value may legitimately be read;
        #: the strict simulator flags premature result reads with this.
        self.valid_from_cycle = 0

    def readable(self) -> bool:
        return self.kind in (PortKind.RESULT, PortKind.REGISTER)

    def writable(self) -> bool:
        return self.kind in (PortKind.OPERAND, PortKind.TRIGGER, PortKind.REGISTER)

    def __repr__(self) -> str:
        return f"Port({self.name!r}, {self.kind.value}, value={self.value:#x})"


@dataclass(frozen=True)
class PortRef:
    """``fu.port`` — a source or destination of a move."""

    fu: str
    port: str

    def __str__(self) -> str:
        return f"{self.fu}.{self.port}"


@dataclass(frozen=True)
class Immediate:
    """A literal move source (a long immediate in the instruction word)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= WORD_MASK:
            raise TtaError(f"immediate out of 32-bit range: {self.value:#x}")

    def __str__(self) -> str:
        return f"#{self.value:#x}" if self.value > 9 else f"#{self.value}"


Source = Union[PortRef, Immediate]


@dataclass(frozen=True)
class Guard:
    """Predicate on an FU's 1-bit result signal; ``negate`` inverts it."""

    fu: str
    negate: bool = False

    def __str__(self) -> str:
        return f"!{self.fu}?" if self.negate else f"{self.fu}?"


def truncate(value: int) -> int:
    """Wrap an arbitrary integer onto the 32-bit datapath."""
    return value & WORD_MASK
