"""Cycle-accurate simulation loop for TACO processors.

Per cycle, in order:

1. **Commit** — every FU applies operation results that mature this cycle
   (results triggered ``latency`` cycles ago become readable; result bits
   to the NC update).
2. **Fetch** — the NC fetches the instruction at ``pc``.
3. **Guard & read** — each move's guard is evaluated against the committed
   result bits; sources of all surviving moves are read (start-of-cycle
   values, so parallel moves never see each other's writes).
4. **Write** — destinations are written in bus order; a write to a trigger
   port starts that FU's operation; a write to ``nc.pc``/``nc.halt``
   redirects or stops the fetch stream.
5. **Tick** — autonomous units (ippu/oppu DMA engines) advance; the NC
   advances to the next pc.

This mirrors the paper's SystemC simulator's role: functional verification
plus total cycle count plus per-bus/per-FU utilisation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import CycleBudgetError, SimulationError
from repro.obs import get_registry
from repro.tta.hazards import PC_WINDOW, loop_signature
from repro.tta.instruction import Move
from repro.tta.memory import ProgramMemory
from repro.tta.ports import Immediate, PortRef
from repro.tta.processor import TacoProcessor
from repro.tta.stats import SimulationReport

DEFAULT_MAX_CYCLES = 2_000_000

#: the one cycle ceiling every end-to-end evaluation path shares — the
#: forwarding runner, the DSE evaluator, and the CLI's ``--cycle-budget``
#: all resolve their defaults to this constant (a CAM fixed point at
#: latency > 1 runs several times longer than a latency-1 pass, so the
#: paths must agree or they classify the same config differently)
DEFAULT_RUN_MAX_CYCLES = 5_000_000


class Simulator:
    """Drives a :class:`TacoProcessor` through a program."""

    #: registry name of this execution backend (metrics label value);
    #: see :mod:`repro.tta.backends`
    backend_name = "interpreter"

    def __init__(self, processor: TacoProcessor, program: ProgramMemory,
                 strict: bool = True):
        processor.validate_program(program)
        self.processor = processor
        self.program = program
        self.strict = strict
        self.report = SimulationReport(
            bus_busy_cycles=[0] * processor.bus_count)
        self.cycle = 0
        #: trailing pcs for runaway-loop diagnosis on budget exhaustion
        self.pc_history: Deque[int] = deque(maxlen=PC_WINDOW)
        #: optional observer: on_move(cycle, pc, bus, move, value);
        #: value is None when a guard squashed the move
        self.move_hook = None
        #: optional transport filter: (cycle, pc, bus, move, value) ->
        #: (move, value), applied after the source read and *before* the
        #: move_hook observers and the destination write — the injection
        #: point for datapath fault models. Observers therefore see the
        #: transport exactly as it happened on the bus, faults included,
        #: the way a hardware bus monitor would.
        self.transport_filter = None
        #: which backend actually executed the most recent ``run()`` —
        #: differs from :attr:`backend_name` when the compiled backend
        #: fell back to the interpreter because a hook was attached
        self.metrics_backend = self.backend_name

    # -- public API ---------------------------------------------------------------

    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES) -> SimulationReport:
        """Run until the program halts; raises if *max_cycles* is exceeded."""
        registry = get_registry()
        start = (registry.time(), self.cycle, self.report.moves_executed,
                 dict(self.report.hazards)) if registry.enabled else None
        try:
            while not self.processor.nc.halted:
                if self.cycle >= max_cycles:
                    pc = self.processor.nc.pc
                    signature = loop_signature(self.pc_history)
                    detail = f"; {signature.render()}" if signature else ""
                    raise CycleBudgetError(
                        f"program did not halt within {max_cycles} cycles "
                        f"(pc={pc}){detail}",
                        cycles=max_cycles, pc=pc, loop=signature,
                        diagnosis=signature.render() if signature else None)
                self.step()
        finally:
            # Publish even on a budget raise: the cycles were executed.
            if start is not None:
                self._publish_run_metrics(registry, *start)
        self.report.halted = True
        return self.report

    def _publish_run_metrics(self, registry, t0: float, start_cycles: int,
                             start_moves: int, start_hazards) -> None:
        """Aggregate counters for one run, observed at the boundary so
        the per-cycle loop carries zero instrumentation cost."""
        elapsed = registry.time() - t0
        cycles = self.cycle - start_cycles
        moves = self.report.moves_executed - start_moves
        backend = self.metrics_backend
        registry.counter(
            "tta_runs_total", "completed Simulator.run calls",
            ("backend",)).inc(backend=backend)
        registry.counter(
            "tta_cycles_total", "simulated clock cycles",
            ("backend",)).inc(cycles, backend=backend)
        registry.counter(
            "tta_moves_total", "executed transports (moves)",
            ("backend",)).inc(moves, backend=backend)
        registry.histogram(
            "tta_run_seconds", "wall-clock time per Simulator.run",
            ("backend",)).observe(elapsed, backend=backend)
        if elapsed > 0:
            registry.gauge(
                "tta_cycles_per_second",
                "simulation speed of the most recent run", ("backend",)
            ).set(cycles / elapsed, backend=backend)
            registry.gauge(
                "tta_moves_per_second",
                "transport throughput of the most recent run", ("backend",)
            ).set(moves / elapsed, backend=backend)
        hazard_counter = None
        for kind, count in self.report.hazards.items():
            delta = count - start_hazards.get(kind, 0)
            if delta <= 0:
                continue
            if hazard_counter is None:
                hazard_counter = registry.counter(
                    "tta_hazards_total",
                    "hazards detected during simulation", ("kind",))
            hazard_counter.inc(delta, kind=kind)

    def run_cycles(self, count: int) -> SimulationReport:
        """Run exactly *count* cycles (or fewer if the program halts)."""
        for _ in range(count):
            if self.processor.nc.halted:
                break
            self.step()
        self.report.halted = self.processor.nc.halted
        return self.report

    def step(self) -> None:
        """Execute one clock cycle."""
        processor = self.processor
        nc = processor.nc

        # 1. commit matured results
        for fu in processor.fus.values():
            fu.commit(self.cycle)

        # 2. fetch
        instruction = self.program.fetch(nc.pc)
        self.report.instructions_fetched += 1
        self.pc_history.append(nc.pc)

        # 3. guards + source reads
        issued: List[Tuple[int, Move, int]] = []
        for bus_index, move in enumerate(instruction.moves):
            if move is None:
                continue
            if move.guard is not None:
                guard_fu = processor.fu(move.guard.fu)
                bit = guard_fu.result_bit
                if move.guard.negate:
                    bit = not bit
                if not bit:
                    self.report.moves_squashed += 1
                    # The slot was occupied in the instruction word; count
                    # the bus as driven, matching hardware activity.
                    self.report.bus_busy_cycles[bus_index] += 1
                    if self.move_hook is not None:
                        self.move_hook(self.cycle, nc.pc, bus_index, move,
                                       None)
                    continue
            value = self._read_source(move.source)
            if self.transport_filter is not None:
                move, value = self.transport_filter(
                    self.cycle, nc.pc, bus_index, move, value)
            if self.move_hook is not None:
                self.move_hook(self.cycle, nc.pc, bus_index, move, value)
            issued.append((bus_index, move, value))

        # 4. destination writes, in bus order
        for bus_index, move, value in issued:
            fu, _port = processor.resolve(move.destination)
            fu.write(move.destination.port, value, self.cycle)
            self.report.moves_executed += 1
            self.report.bus_busy_cycles[bus_index] += 1

        # 5. autonomous units tick; NC advances
        for fu in processor.fus.values():
            fu.tick(self.cycle)
        nc.advance()

        self.cycle += 1
        self.report.cycles = self.cycle
        for name, fu in processor.fus.items():
            self.report.fu_triggers[name] = fu.trigger_count

    # -- helpers ----------------------------------------------------------------

    def _read_source(self, source) -> int:
        if isinstance(source, Immediate):
            return source.value
        if isinstance(source, PortRef):
            fu = self.processor.fu(source.fu)
            return fu.read(source.port, self.cycle, strict=self.strict)
        raise SimulationError(f"unreadable move source: {source!r}")


def simulate(processor: TacoProcessor, program: ProgramMemory,
             max_cycles: int = DEFAULT_MAX_CYCLES,
             strict: bool = True) -> SimulationReport:
    """One-shot convenience: reset, run to halt, return the report."""
    processor.reset()
    simulator = Simulator(processor, program, strict=strict)
    return simulator.run(max_cycles=max_cycles)
