"""TTA instructions: one move slot per bus.

"TTAs are in essence one instruction processors, as instructions only
specify data moves between functional units. The maximum number of
instructions (i.e. data transports) that can be carried out in one clock
cycle is equal to the number of data buses" (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import TtaError
from repro.tta.ports import Guard, Immediate, PortRef, Source


@dataclass(frozen=True)
class Move:
    """One data transport: ``[guard] source -> destination``."""

    source: Source
    destination: PortRef
    guard: Optional[Guard] = None

    def __post_init__(self) -> None:
        if not isinstance(self.destination, PortRef):
            raise TtaError(
                f"move destination must be a port, got {self.destination!r}")
        if not isinstance(self.source, (PortRef, Immediate)):
            raise TtaError(
                f"move source must be a port or immediate, got {self.source!r}")

    def __str__(self) -> str:
        guard = f"{self.guard} " if self.guard else ""
        return f"{guard}{self.source} -> {self.destination}"


@dataclass(frozen=True)
class Instruction:
    """The moves issued in one cycle; index in *moves* = bus number.

    ``None`` slots are idle buses. The schedule keeps explicit slots so bus
    utilisation can be measured exactly as the paper reports it.
    """

    moves: Tuple[Optional[Move], ...]

    def __post_init__(self) -> None:
        if not self.moves:
            raise TtaError("instruction must have at least one bus slot")
        destinations = [m.destination for m in self.moves if m is not None]
        if len(destinations) != len(set(destinations)):
            raise TtaError(
                f"two moves write the same port in one instruction: {self}")

    @classmethod
    def of(cls, moves: Sequence[Optional[Move]], width: int) -> "Instruction":
        """Build an instruction padded (or validated) to *width* slots."""
        slots = list(moves)
        if len(slots) > width:
            raise TtaError(
                f"{len(slots)} moves do not fit on {width} buses")
        slots.extend([None] * (width - len(slots)))
        return cls(moves=tuple(slots))

    @property
    def width(self) -> int:
        return len(self.moves)

    def used_slots(self) -> int:
        return sum(1 for m in self.moves if m is not None)

    def is_nop(self) -> bool:
        return self.used_slots() == 0

    def __str__(self) -> str:
        slots = [str(m) if m else "..." for m in self.moves]
        return " ; ".join(slots)


def nop(width: int) -> Instruction:
    return Instruction(moves=(None,) * width)
