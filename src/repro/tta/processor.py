"""The TACO processor: FUs + interconnect + memories, wired together."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, TtaError
from repro.tta.bus import Interconnect
from repro.tta.controller import NC_NAME, NetworkController
from repro.tta.fu import FunctionalUnit
from repro.tta.memory import DataMemory, ProgramMemory
from repro.tta.ports import PortRef


class TacoProcessor:
    """A concrete TACO architecture instance.

    Construction wires functional units onto an interconnection network and
    attaches data memory; the program is supplied per run via
    :class:`~repro.tta.simulator.Simulator`. FUs are addressed by instance
    name (``cnt0``, ``mat2``...); the network controller is always present
    under the name ``nc``.
    """

    def __init__(self, interconnect: Interconnect,
                 functional_units: Iterable[FunctionalUnit],
                 data_memory: Optional[DataMemory] = None):
        self.interconnect = interconnect
        self.data_memory = data_memory if data_memory is not None else DataMemory()
        self.nc = NetworkController()
        self.fus: Dict[str, FunctionalUnit] = {NC_NAME: self.nc}
        for fu in functional_units:
            if fu.name in self.fus:
                raise ConfigurationError(f"duplicate FU name {fu.name!r}")
            self.fus[fu.name] = fu

    # -- lookup -----------------------------------------------------------------

    def fu(self, name: str) -> FunctionalUnit:
        try:
            return self.fus[name]
        except KeyError:
            raise TtaError(
                f"no functional unit {name!r} (has {sorted(self.fus)})") from None

    def fus_of_kind(self, kind: str) -> List[FunctionalUnit]:
        return [fu for fu in self.fus.values() if fu.kind == kind]

    def resolve(self, ref: PortRef):
        """(fu, port) for a port reference, validating both names."""
        fu = self.fu(ref.fu)
        return fu, fu.port(ref.port)

    def validate_program(self, program: ProgramMemory) -> None:
        """Static checks: ports exist, connectivity allows every move."""
        if program.width != self.interconnect.bus_count:
            raise ConfigurationError(
                f"program is {program.width} slots wide but the processor "
                f"has {self.interconnect.bus_count} buses")
        for address, instruction in enumerate(program):
            for bus_index, move in enumerate(instruction.moves):
                if move is None:
                    continue
                self.resolve(move.destination)
                source_ref = move.source if isinstance(move.source, PortRef) else None
                if source_ref is not None:
                    self.resolve(source_ref)
                if move.guard is not None:
                    self.fu(move.guard.fu)
                if not self.interconnect.allows(bus_index, source_ref,
                                                move.destination):
                    raise ConfigurationError(
                        f"instruction {address}: move {move} cannot use "
                        f"bus {bus_index} (socket connectivity)")

    def reset(self) -> None:
        for fu in self.fus.values():
            fu.reset()

    @property
    def bus_count(self) -> int:
        return self.interconnect.bus_count

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for fu in self.fus.values():
            kinds[fu.kind] = kinds.get(fu.kind, 0) + 1
        inventory = ", ".join(f"{n}x{k}" for k, n in sorted(kinds.items()))
        return f"<TacoProcessor {self.bus_count} buses; {inventory}>"
