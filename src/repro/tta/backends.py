"""Backend-selection layer: how callers pick a simulation engine.

Every evaluation path in the repo — :func:`repro.programs.runner.run_forwarding`,
the DSE evaluator, the campaign/service runners, and the CLI's
``--backend`` flag — funnels simulator construction through this
registry, so a new execution engine plugs in at exactly one place.

Two backends ship:

``interpreter``
    The reference cycle-accurate loop (:class:`repro.tta.simulator.Simulator`).
    Supports every observation hook; the semantics oracle.

``compiled``
    The pre-decoded fast path (:class:`repro.tta.compiled.CompiledSimulator`).
    Bit-identical reports, ~an order of magnitude faster; silently falls
    back to the interpreter whenever a hook is attached.

``auto`` resolves to the fastest backend that can honour the run — today
that is ``compiled``, whose own hook check makes it universally safe.
The conservative *default* stays ``interpreter`` so existing callers see
byte-for-byte the behaviour they always had unless they opt in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.tta.compiled import CompiledSimulator, numpy_active
from repro.tta.memory import ProgramMemory
from repro.tta.processor import TacoProcessor
from repro.tta.simulator import Simulator

BACKEND_INTERPRETER = "interpreter"
BACKEND_COMPILED = "compiled"
BACKEND_AUTO = "auto"

#: what callers get when they do not choose (``None`` anywhere in the
#: stack resolves to this)
DEFAULT_BACKEND = BACKEND_INTERPRETER


@dataclass(frozen=True)
class SimulatorBackend:
    """One registered execution engine."""

    name: str
    description: str
    factory: Callable[..., Simulator] = field(repr=False)
    #: probed lazily (numpy import is deferred until someone asks)
    accelerated_check: Callable[[], bool] = field(
        repr=False, default=lambda: False)

    @property
    def accelerated(self) -> bool:
        """True when the backend batches state updates through an
        accelerated array library (numpy) in this process."""
        return bool(self.accelerated_check())

    def create(self, processor: TacoProcessor, program: ProgramMemory,
               strict: bool = True) -> Simulator:
        return self.factory(processor, program, strict=strict)


_REGISTRY: Dict[str, SimulatorBackend] = {}


def register_backend(backend: SimulatorBackend) -> SimulatorBackend:
    """Add an engine to the registry (duplicate names are an error)."""
    if backend.name in _REGISTRY or backend.name == BACKEND_AUTO:
        raise ConfigurationError(
            f"simulator backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> List[SimulatorBackend]:
    """Every registered engine, in registration order."""
    return list(_REGISTRY.values())


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Map ``None``/``"auto"`` onto a concrete registered name."""
    if name is None:
        name = DEFAULT_BACKEND
    if name == BACKEND_AUTO:
        return BACKEND_COMPILED
    return name


def get_backend(name: Optional[str] = None) -> SimulatorBackend:
    """Look an engine up by name (``"auto"``/``None`` resolve first)."""
    resolved = resolve_backend_name(name)
    try:
        return _REGISTRY[resolved]
    except KeyError:
        known = sorted(_REGISTRY) + [BACKEND_AUTO]
        raise ConfigurationError(
            f"unknown simulator backend {name!r}; "
            f"choose one of {known}") from None


def create_simulator(processor: TacoProcessor, program: ProgramMemory,
                     strict: bool = True,
                     backend: Optional[str] = None) -> Simulator:
    """The one construction point for simulators across the repo."""
    return get_backend(backend).create(processor, program, strict=strict)


register_backend(SimulatorBackend(
    name=BACKEND_INTERPRETER,
    description="reference cycle-accurate interpreter "
                "(supports every observation hook)",
    factory=Simulator))

register_backend(SimulatorBackend(
    name=BACKEND_COMPILED,
    description="pre-decoded move schedule with batched state updates; "
                "falls back to the interpreter when a hook is attached",
    factory=CompiledSimulator,
    accelerated_check=numpy_active))
