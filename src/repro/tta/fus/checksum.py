"""Checksum FU: RFC 1071 ones'-complement accumulation.

IPv6 removed the header checksum, but the router still terminates RIPng
(UDP) and ICMPv6 traffic whose checksums cover an IPv6 pseudo-header; the
Checksum unit in the paper's architecture (Fig. 2) serves that path. Each
``t_add`` folds a 32-bit word into the accumulator as two 16-bit halves
with end-around carry, matching :mod:`repro.ipv6.checksum` bit for bit.

The NC-visible result bit is "accumulator == 0xFFFF", which is the
verification condition for a received checksum-covered payload.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind


def _fold16(total: int) -> int:
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


class ChecksumUnit(FunctionalUnit):
    """Stateful ones'-complement accumulator over 16-bit halves."""

    kind = "checksum"

    def __init__(self, name: str):
        super().__init__(name)
        self._accumulator = 0

    def _declare_ports(self) -> None:
        self.add_port("t_clear", PortKind.TRIGGER)  # value ignored
        self.add_port("t_add", PortKind.TRIGGER)    # fold a 32-bit word
        self.add_port("r_sum", PortKind.RESULT)     # accumulated sum
        self.add_port("r_cksum", PortKind.RESULT)   # complement (to transmit)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if trigger_port == "t_clear":
            self._accumulator = 0
        elif trigger_port == "t_add":
            self._accumulator = _fold16(
                self._accumulator + (value >> 16) + (value & 0xFFFF))
        else:
            raise SimulationError(f"unknown checksum trigger {trigger_port!r}")
        accumulator = self._accumulator
        self.finish(cycle, {
            "r_sum": accumulator,
            "r_cksum": (~accumulator) & 0xFFFF,
        }, result_bit=accumulator == 0xFFFF)

    def reset(self) -> None:
        super().reset()
        self._accumulator = 0
