"""Masker FU: masked bit insertion and bitwise logic.

"The Masker sets the bits of a register according to a given mask and a
given value" (paper §3): ``r = (t & ~mask) | (val & mask)``. The forwarding
program uses it to rewrite the hop-limit byte inside header word 1 without
disturbing the payload-length and next-header fields. Plain AND/OR/XOR
triggers are provided as the degenerate cases hardware gets for free.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind, truncate


class Masker(FunctionalUnit):
    kind = "masker"

    def _declare_ports(self) -> None:
        self.add_port("o_mask", PortKind.OPERAND)
        self.add_port("o_val", PortKind.OPERAND)
        self.add_port("t", PortKind.TRIGGER)      # masked insert
        self.add_port("t_and", PortKind.TRIGGER)  # r = t & o_val
        self.add_port("t_or", PortKind.TRIGGER)   # r = t | o_val
        self.add_port("t_xor", PortKind.TRIGGER)  # r = t ^ o_val
        self.add_port("r", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        mask = self.operand("o_mask")
        val = self.operand("o_val")
        if trigger_port == "t":
            result = (value & ~mask) | (val & mask)
        elif trigger_port == "t_and":
            result = value & val
        elif trigger_port == "t_or":
            result = value | val
        elif trigger_port == "t_xor":
            result = value ^ val
        else:
            raise SimulationError(f"unknown masker trigger {trigger_port!r}")
        result = truncate(result)
        self.finish(cycle, {"r": result}, result_bit=result != 0)
