"""Matcher FU: masked equality over bitstrings.

"The Matcher and the Masker are bitstring manipulation FUs that process
only parts of their input operands according to a given mask. The Matcher
reports its result to the Interconnection Network Controller by means of a
result bit signal" (paper §3). The forwarding program uses one matcher per
search strand to compare 32-bit slices of the destination address against
routing-table prefixes under the prefix mask.
"""

from __future__ import annotations

from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind


class Matcher(FunctionalUnit):
    """result = ((trigger_value XOR reference) AND mask) == 0."""

    kind = "matcher"

    def _declare_ports(self) -> None:
        self.add_port("o_ref", PortKind.OPERAND)
        self.add_port("o_mask", PortKind.OPERAND)
        self.add_port("t", PortKind.TRIGGER)
        self.add_port("r", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        matched = ((value ^ self.operand("o_ref")) & self.operand("o_mask")) == 0
        self.finish(cycle, {"r": int(matched)}, result_bit=matched)
