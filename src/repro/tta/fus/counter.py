"""Counter FU: arithmetic and loop counting with a stop signal.

"The Counter Unit performs arithmetical operations (increment, decrement,
addition, subtraction) and counting (upwards or downwards from a start
value to a stop value). When the stop value has been reached a result
signal directly connected to the Network Controller is enabled" (paper §3).

Loop idiom: put the stop value in ``o_stop``, then keep feeding the result
back into ``t_inc`` (``cnt.r -> cnt.t_inc``); the NC-visible result bit
rises exactly when the count reaches the stop value, so a single guarded
move closes the loop.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind, truncate


class Counter(FunctionalUnit):
    """add/sub/inc/dec with result == o_stop driving the NC signal."""

    kind = "counter"

    def _declare_ports(self) -> None:
        self.add_port("o", PortKind.OPERAND)       # second ALU operand
        self.add_port("o_stop", PortKind.OPERAND)  # loop stop value
        self.add_port("t_add", PortKind.TRIGGER)   # r = t + o
        self.add_port("t_sub", PortKind.TRIGGER)   # r = t - o
        self.add_port("t_inc", PortKind.TRIGGER)   # r = t + 1
        self.add_port("t_dec", PortKind.TRIGGER)   # r = t - 1
        self.add_port("r", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if trigger_port == "t_add":
            result = value + self.operand("o")
        elif trigger_port == "t_sub":
            result = value - self.operand("o")
        elif trigger_port == "t_inc":
            result = value + 1
        elif trigger_port == "t_dec":
            result = value - 1
        else:
            raise SimulationError(f"unknown counter trigger {trigger_port!r}")
        result = truncate(result)
        self.finish(cycle, {"r": result},
                    result_bit=result == self.operand("o_stop"))
