"""Routing Table Unit (RTU).

"The Routing Table implementation is the most important aspect of a
router's performance, so we decided to create a dedicated functional unit
for it" (paper §4). The RTU owns the routing table in all three
implementation options, but its role differs:

* **sequential / balanced-tree** — the table lives in data memory and the
  *search is software*, executed by the Matcher/Comparator/Counter FUs
  (that is why tripling those units speeds these rows up in Table 1). The
  RTU materialises the table into memory and publishes its geometry on
  static result ports (``r_base``, ``r_root``, ``r_size``).
* **CAM / multibit-trie / Bloom** — the search is a hardware operation of
  the RTU itself (any table with ``hardware_search = True``): load the
  first three destination-address words into operand latches and trigger
  with the fourth; the matching interface appears on ``r_iface`` after the
  engine's search latency. For the CAM that latency is its wall-clock
  40 ns converted to cycles (clock-dependent, resolved by the evaluator's
  fixed point); for the trie and the Bloom bank it is a fixed on-chip
  pipeline depth the structure itself reports
  (``search_latency_cycles()``), independent of the clock.

Memory layout (16-word stride, so address generation is a 4-bit shift):

====  =========================================================
word  sequential entry            balanced-tree node
====  =========================================================
0-3   prefix network (msw first)  prefix network (msw first)
4-7   prefix mask                 prefix mask
8     output interface            output interface
9     prefix length               prefix length
10    (unused)                    left child index  (NIL = 0xFFFFFFFF)
11    (unused)                    right child index (NIL = 0xFFFFFFFF)
12    (unused)                    enclosing node index (NIL = none)
====  =========================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.ipv6.address import Ipv6Address
from repro.routing.base import RoutingTable
from repro.routing.sequential import SequentialRoutingTable
from repro.routing.balanced_tree import BalancedTreeRoutingTable
from repro.tta.fu import FunctionalUnit
from repro.tta.memory import DataMemory
from repro.tta.ports import PortKind

ENTRY_STRIDE_WORDS = 16
ENTRY_STRIDE_SHIFT = 4
NIL_INDEX = 0xFFFFFFFF

OFF_NETWORK = 0
OFF_MASK = 4
OFF_INTERFACE = 8
OFF_LENGTH = 9
OFF_LEFT = 10
OFF_RIGHT = 11
OFF_ENCLOSING = 12


class RoutingTableUnit(FunctionalUnit):
    kind = "rtu"

    def __init__(self, name: str, table: RoutingTable, memory: DataMemory,
                 base_word: int = 0x8000, search_latency: int = 1):
        if search_latency < 1:
            raise ConfigurationError(
                f"search latency must be >= 1 cycle: {search_latency}")
        self.table = table
        self.memory = memory
        self.base_word = base_word
        self.search_latency = search_latency
        super().__init__(name)
        self.refresh()

    def _declare_ports(self) -> None:
        # table geometry for software searches (statically valid)
        self.add_port("r_base", PortKind.RESULT)
        self.add_port("r_root", PortKind.RESULT)
        self.add_port("r_size", PortKind.RESULT)
        # CAM search interface
        self.add_port("o_a0", PortKind.OPERAND)
        self.add_port("o_a1", PortKind.OPERAND)
        self.add_port("o_a2", PortKind.OPERAND)
        self.add_port("t_a3", PortKind.TRIGGER)
        self.add_port("r_iface", PortKind.RESULT)

    # -- materialisation ----------------------------------------------------------

    def refresh(self) -> None:
        """(Re)write the table image into data memory after updates."""
        self._padded_size = len(self.table)
        if isinstance(self.table, SequentialRoutingTable):
            self._materialize_sequential()
        elif isinstance(self.table, BalancedTreeRoutingTable):
            self._materialize_tree()
        elif getattr(self.table, "hardware_search", False):
            # CAM / multibit-trie / Bloom: the search engine is the RTU
            # itself; nothing to materialise, only the latency to honour.
            self.latency = self.search_latency
        else:
            raise ConfigurationError(
                f"RTU cannot host a {type(self.table).__name__}")
        self.port("r_base").value = self.base_word
        # r_size is the scan length (padded for the sequential image)
        self.port("r_size").value = self._padded_size

    def _write_prefix_words(self, address: int, entry) -> None:
        for i, word in enumerate(entry.prefix.network.words()):
            self.memory.store(address + OFF_NETWORK + i, word)
        for i, word in enumerate(entry.prefix.mask_words()):
            self.memory.store(address + OFF_MASK + i, word)
        self.memory.store(address + OFF_INTERFACE, entry.interface)
        self.memory.store(address + OFF_LENGTH, entry.prefix.length)

    def _materialize_sequential(self) -> None:
        layout = self.table.memory_layout()  # type: ignore[attr-defined]
        for index, entry in enumerate(layout):
            self._write_prefix_words(
                self.base_word + index * ENTRY_STRIDE_WORDS, entry)
        # Pad to a multiple of six with unmatchable guard entries so both
        # the 3-strand and the unroll-by-2 scans can treat the image as
        # whole windows. Guard network ff..f under an all-ones mask can
        # only match a multicast destination, which validation punts
        # before any search.
        self._padded_size = len(layout)
        while self._padded_size % 6:
            address = self.base_word + self._padded_size * ENTRY_STRIDE_WORDS
            for i in range(4):
                self.memory.store(address + OFF_NETWORK + i, 0xFFFFFFFF)
                self.memory.store(address + OFF_MASK + i, 0xFFFFFFFF)
            self.memory.store(address + OFF_INTERFACE, 0)
            self.memory.store(address + OFF_LENGTH, 128)
            self._padded_size += 1
        self.port("r_root").value = 0

    def _materialize_tree(self) -> None:
        # Assign indices in insertion-independent (in-order) sequence and
        # encode child/enclosing links by index.
        tree: BalancedTreeRoutingTable = self.table  # type: ignore[assignment]
        index_of: Dict[int, int] = {}
        ordered = []

        def visit(node):
            if node is None:
                return
            index_of[id(node)] = len(ordered)
            ordered.append(node)
            visit(node.left)
            visit(node.right)

        visit(tree._root)  # noqa: SLF001 — the RTU is the tree's memory image
        for index, node in enumerate(ordered):
            address = self.base_word + index * ENTRY_STRIDE_WORDS
            self._write_prefix_words(address, node.entry)
            self.memory.store(address + OFF_LEFT,
                              index_of[id(node.left)] if node.left else NIL_INDEX)
            self.memory.store(address + OFF_RIGHT,
                              index_of[id(node.right)] if node.right else NIL_INDEX)
            if node.enclosing is not None:
                enclosing_node = tree._nodes[node.enclosing]  # noqa: SLF001
                self.memory.store(address + OFF_ENCLOSING,
                                  index_of[id(enclosing_node)])
            else:
                self.memory.store(address + OFF_ENCLOSING, NIL_INDEX)
        root_index = index_of[id(tree._root)] if tree._root else NIL_INDEX  # noqa: SLF001
        self.port("r_root").value = root_index

    # -- CAM search ----------------------------------------------------------------

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if trigger_port != "t_a3":
            raise SimulationError(f"unknown RTU trigger {trigger_port!r}")
        if not getattr(self.table, "hardware_search", False):
            raise SimulationError(
                f"RTU hosts a {self.table.kind} table; hardware search is "
                f"only available with a CAM, multibit trie, or Bloom bank")
        address = Ipv6Address.from_words((
            self.operand("o_a0"), self.operand("o_a1"),
            self.operand("o_a2"), value))
        result = self.table.lookup(address)
        if result is None:
            self.finish(cycle, {"r_iface": NIL_INDEX}, result_bit=False,
                        latency=self.search_latency)
        else:
            self.finish(cycle, {"r_iface": result.interface}, result_bit=True,
                        latency=self.search_latency)

    # -- geometry helpers for program generators -----------------------------------

    def entry_address(self, index: int) -> int:
        return self.base_word + index * ENTRY_STRIDE_WORDS

    def reset(self) -> None:
        super().reset()
        # Geometry ports are statically driven; restore them after reset.
        self.refresh()
