"""Shifter FU: logical/arithmetic shifts.

"In addition to logical shifting, a Shifter can also be used for
arithmetical multiplication by 2" (paper §3) — the Fig. 3 optimisation
example relies on exactly that (``b * 2`` and ``/ 4`` become shifts).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind, truncate


class Shifter(FunctionalUnit):
    """r = trigger_value shifted by the ``o`` operand (mod 32)."""

    kind = "shifter"

    def _declare_ports(self) -> None:
        self.add_port("o", PortKind.OPERAND)      # shift amount
        self.add_port("t_sll", PortKind.TRIGGER)  # shift left logical
        self.add_port("t_srl", PortKind.TRIGGER)  # shift right logical
        self.add_port("t_sra", PortKind.TRIGGER)  # shift right arithmetic
        self.add_port("r", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        amount = self.operand("o") & 31
        if trigger_port == "t_sll":
            result = truncate(value << amount)
        elif trigger_port == "t_srl":
            result = value >> amount
        elif trigger_port == "t_sra":
            signed = value - (1 << 32) if value & 0x80000000 else value
            result = truncate(signed >> amount)
        else:
            raise SimulationError(f"unknown shifter trigger {trigger_port!r}")
        self.finish(cycle, {"r": result}, result_bit=result != 0)
