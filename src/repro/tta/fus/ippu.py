"""Input preprocessing unit (ippu).

"The Preprocessing Unit scans the input buffers for new datagrams. If a
datagram is pending it is stored in the main memory. A pointer to the
memory address where the datagram was stored is saved in a queue, along
with the interface identifier of the input buffer. ... It also provides a
1-bit signal connected to the Interconnection Network Controller to notify
it of new entries pending in the queue" (paper §3).

The DMA engine runs autonomously in :meth:`tick`: one datagram per cycle is
moved from a line card into a free memory slot (round-robin over cards).
The program consumes the queue with ``t_pop``, which latches the head's
pointer and interface onto ``r_ptr``/``r_iface``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence, Tuple

from repro.errors import SimulationError
from repro.router.linecard import LineCard
from repro.tta.devices import SlotPool
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind


class InputPreprocessingUnit(FunctionalUnit):
    kind = "ippu"

    def __init__(self, name: str, line_cards: Sequence[LineCard],
                 slots: SlotPool):
        self.line_cards = list(line_cards)
        self.slots = slots
        self._queue: Deque[Tuple[int, int]] = deque()  # (slot ptr, iface)
        self._scan_index = 0
        self.datagrams_admitted = 0
        self.stalls_no_slot = 0
        super().__init__(name)

    def _declare_ports(self) -> None:
        self.add_port("t_pop", PortKind.TRIGGER)
        self.add_port("r_ptr", PortKind.RESULT)
        self.add_port("r_iface", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if not self._queue:
            raise SimulationError(
                f"cycle {cycle}: ippu popped with an empty queue "
                f"(guard on the ippu result bit before popping)")
        ptr, iface = self._queue.popleft()
        self.finish(cycle, {"r_ptr": ptr, "r_iface": iface})

    def tick(self, cycle: int) -> None:
        # Autonomous DMA: admit at most one pending datagram per cycle.
        for offset in range(len(self.line_cards)):
            card = self.line_cards[(self._scan_index + offset) % len(self.line_cards)]
            if not card.has_pending_input():
                continue
            slot = self.slots.allocate()
            if slot is None:
                self.stalls_no_slot += 1
                break
            datagram = card.pop_input()
            assert datagram is not None
            self.slots.store_datagram(slot, datagram, card.index)
            self._queue.append((slot, card.index))
            self.datagrams_admitted += 1
            self._scan_index = (card.index + 1) % len(self.line_cards)
            break
        # The NC-visible "entries pending" wire reflects queue occupancy,
        # except a completion already scheduled by t_pop wins at commit.
        self.result_bit = bool(self._queue)

    def pending(self) -> int:
        return len(self._queue)

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._scan_index = 0
        self.datagrams_admitted = 0
        self.stalls_no_slot = 0
