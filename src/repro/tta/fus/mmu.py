"""Memory management unit: the data-memory port of the processor.

One MMU = one memory port. With a single MMU, every load/store in flight
serialises through its trigger port — the structural bottleneck that caps
the benefit of tripling the matcher/counter/comparator counts in the
sequential and tree rows of Table 1.

Protocol: ``t_read`` is triggered with the address and produces the loaded
word on ``r``; ``t_write`` is triggered with the *data* and takes the
address from the ``o_addr`` operand latch.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.memory import DataMemory
from repro.tta.ports import PortKind


class MemoryManagementUnit(FunctionalUnit):
    kind = "mmu"

    def __init__(self, name: str, memory: DataMemory):
        self.memory = memory
        super().__init__(name)

    def _declare_ports(self) -> None:
        self.add_port("o_addr", PortKind.OPERAND)
        self.add_port("t_read", PortKind.TRIGGER)   # value = address
        self.add_port("t_write", PortKind.TRIGGER)  # value = data
        self.add_port("r", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if trigger_port == "t_read":
            self.finish(cycle, {"r": self.memory.load(value)}, result_bit=True)
        elif trigger_port == "t_write":
            self.memory.store(self.operand("o_addr"), value)
            self.finish(cycle, {}, result_bit=True)
        else:
            raise SimulationError(f"unknown MMU trigger {trigger_port!r}")
