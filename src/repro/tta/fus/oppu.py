"""Output postprocessing unit (oppu).

"The PostProcessing Unit manages the output traffic of the router. The
unit contains an internal queue in which pointers to memory addresses of
the datagrams to be sent are stored along with the output interface
identifier. The oppu interrogates its internal queue and for each entry it
moves the corresponding datagram from the data memory to the specified
output buffer" (paper §3).

Protocol: the program latches the slot pointer into ``o_ptr`` and triggers
``t_send`` with the output interface index. The DMA drain in :meth:`tick`
moves one datagram per cycle to its line card and releases the slot.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence, Tuple

from repro.errors import SimulationError
from repro.router.linecard import LineCard
from repro.tta.devices import SlotPool
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind


class OutputPostprocessingUnit(FunctionalUnit):
    kind = "oppu"

    def __init__(self, name: str, line_cards: Sequence[LineCard],
                 slots: SlotPool):
        self.line_cards = list(line_cards)
        self.slots = slots
        self._queue: Deque[Tuple[int, int]] = deque()  # (slot ptr, iface)
        self.datagrams_sent = 0
        #: slots handed to the slow path (control plane); the host drains
        #: this list and releases the slots when done
        self.punted: Deque[int] = deque()
        super().__init__(name)

    def _declare_ports(self) -> None:
        self.add_port("o_ptr", PortKind.OPERAND)
        self.add_port("t_send", PortKind.TRIGGER)  # value = output interface
        self.add_port("t_drop", PortKind.TRIGGER)  # free the slot, send nothing
        self.add_port("t_punt", PortKind.TRIGGER)  # hand slot to the slow path

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        pointer = self.operand("o_ptr")
        if trigger_port == "t_send":
            if not 0 <= value < len(self.line_cards):
                raise SimulationError(
                    f"cycle {cycle}: oppu told to send on nonexistent "
                    f"interface {value}")
            self._queue.append((pointer, value))
            self.finish(cycle, {}, result_bit=True)
        elif trigger_port == "t_drop":
            self.slots.release(pointer)
            self.finish(cycle, {}, result_bit=False)
        elif trigger_port == "t_punt":
            self.punted.append(pointer)
            self.finish(cycle, {}, result_bit=False)
        else:
            raise SimulationError(f"unknown oppu trigger {trigger_port!r}")

    def tick(self, cycle: int) -> None:
        if not self._queue:
            return
        pointer, iface = self._queue.popleft()
        datagram = self.slots.load_datagram(pointer)
        self.line_cards[iface].transmit(datagram)
        self.slots.release(pointer)
        self.datagrams_sent += 1

    def backlog(self) -> int:
        return len(self._queue)

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self.punted.clear()
        self.datagrams_sent = 0
