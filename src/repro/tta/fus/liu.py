"""Local Info Unit (LIU): the router's own identity and configuration.

Appears in the paper's architecture diagram (Fig. 2). Holds small indexed
configuration words — the router's interface addresses (as 32-bit words),
interface count, and flags — so programs can ask "is this datagram
addressed to me?" without memory traffic.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind


class LocalInfoUnit(FunctionalUnit):
    kind = "liu"

    def __init__(self, name: str, words: Sequence[int] = ()):
        self._words = list(words)
        super().__init__(name)

    def _declare_ports(self) -> None:
        self.add_port("o_idx", PortKind.OPERAND)
        self.add_port("t_get", PortKind.TRIGGER)  # value = index
        self.add_port("t_set", PortKind.TRIGGER)  # value = data, index = o_idx
        self.add_port("r", PortKind.RESULT)

    def configure(self, words: Sequence[int]) -> None:
        self._words = list(words)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        if trigger_port == "t_get":
            if not 0 <= value < len(self._words):
                raise SimulationError(
                    f"cycle {cycle}: LIU index {value} out of range "
                    f"({len(self._words)} words configured)")
            self.finish(cycle, {"r": self._words[value]}, result_bit=True)
        elif trigger_port == "t_set":
            index = self.operand("o_idx")
            if not 0 <= index < len(self._words):
                raise SimulationError(
                    f"cycle {cycle}: LIU index {index} out of range")
            self._words[index] = value
            self.finish(cycle, {}, result_bit=True)
        else:
            raise SimulationError(f"unknown LIU trigger {trigger_port!r}")
