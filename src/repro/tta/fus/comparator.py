"""Comparator FU.

"For comparing operands with a given value a Comparer Unit has been
designed. The result of a comparison ... is signaled to the Network
Controller via a result signal" (paper §3). Comparisons are unsigned, as
everything on the 32-bit datapath is an unsigned word.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SimulationError
from repro.tta.fu import FunctionalUnit
from repro.tta.ports import PortKind

_OPERATIONS: Dict[str, Callable[[int, int], bool]] = {
    "t_eq": lambda a, b: a == b,
    "t_ne": lambda a, b: a != b,
    "t_lt": lambda a, b: a < b,
    "t_le": lambda a, b: a <= b,
    "t_gt": lambda a, b: a > b,
    "t_ge": lambda a, b: a >= b,
}


class Comparator(FunctionalUnit):
    """result_bit = trigger_value OP reference operand."""

    kind = "comparator"

    def _declare_ports(self) -> None:
        self.add_port("o", PortKind.OPERAND)
        for trigger in _OPERATIONS:
            self.add_port(trigger, PortKind.TRIGGER)
        self.add_port("r", PortKind.RESULT)

    def _execute(self, trigger_port: str, value: int, cycle: int) -> None:
        operation = _OPERATIONS.get(trigger_port)
        if operation is None:
            raise SimulationError(f"unknown comparator trigger {trigger_port!r}")
        outcome = operation(value, self.operand("o"))
        self.finish(cycle, {"r": int(outcome)}, result_bit=outcome)
