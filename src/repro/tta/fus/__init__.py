"""The TACO functional-unit library (paper Fig. 2)."""

from repro.tta.fus.checksum import ChecksumUnit
from repro.tta.fus.comparator import Comparator
from repro.tta.fus.counter import Counter
from repro.tta.fus.ippu import InputPreprocessingUnit
from repro.tta.fus.liu import LocalInfoUnit
from repro.tta.fus.masker import Masker
from repro.tta.fus.matcher import Matcher
from repro.tta.fus.mmu import MemoryManagementUnit
from repro.tta.fus.oppu import OutputPostprocessingUnit
from repro.tta.fus.rtu import (
    ENTRY_STRIDE_SHIFT,
    ENTRY_STRIDE_WORDS,
    NIL_INDEX,
    OFF_ENCLOSING,
    OFF_INTERFACE,
    OFF_LEFT,
    OFF_LENGTH,
    OFF_MASK,
    OFF_NETWORK,
    OFF_RIGHT,
    RoutingTableUnit,
)
from repro.tta.fus.shifter import Shifter

__all__ = [
    "ChecksumUnit", "Comparator", "Counter", "InputPreprocessingUnit",
    "LocalInfoUnit", "Masker", "Matcher", "MemoryManagementUnit",
    "OutputPostprocessingUnit", "RoutingTableUnit", "Shifter",
    "ENTRY_STRIDE_SHIFT", "ENTRY_STRIDE_WORDS", "NIL_INDEX",
    "OFF_ENCLOSING", "OFF_INTERFACE", "OFF_LEFT", "OFF_LENGTH",
    "OFF_MASK", "OFF_NETWORK", "OFF_RIGHT",
]
