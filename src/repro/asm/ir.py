"""Sequential move IR: the compiler-facing program representation.

The paper's code-generation story (§3, Fig. 3): application code is a
sequence of data moves; optimisation "reduces in fact to well-known bus
scheduling and registry allocation problems". This module gives the moves
a sequential (one-per-line) form organised into labelled basic blocks; the
scheduler in :mod:`repro.asm.scheduler` packs them onto buses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import AssemblyError
from repro.tta.instruction import Move
from repro.tta.ports import Guard, Immediate, PortRef


@dataclass(frozen=True)
class SymbolicMove:
    """A move whose jump targets may still be labels.

    ``label_target`` is set (and ``source`` is None) for moves whose source
    is the address of a label — i.e. jumps ``label -> nc.pc``. The
    assembler resolves these to immediates once addresses are known.
    """

    destination: PortRef
    source: Optional[object] = None  # PortRef | Immediate
    label_target: Optional[str] = None
    guard: Optional[Guard] = None

    def __post_init__(self) -> None:
        has_source = self.source is not None
        has_label = self.label_target is not None
        if has_source == has_label:
            raise AssemblyError(
                "move needs exactly one of a source or a label target")

    def resolved(self, labels: Dict[str, int]) -> Move:
        if self.label_target is not None:
            try:
                address = labels[self.label_target]
            except KeyError:
                raise AssemblyError(
                    f"undefined label {self.label_target!r}") from None
            return Move(source=Immediate(address), destination=self.destination,
                        guard=self.guard)
        return Move(source=self.source, destination=self.destination,  # type: ignore[arg-type]
                    guard=self.guard)

    def __str__(self) -> str:
        guard = f"{self.guard} " if self.guard else ""
        source = f"@{self.label_target}" if self.label_target else str(self.source)
        return f"{guard}{source} -> {self.destination}"


@dataclass
class BasicBlock:
    """A labelled straight-line run of moves.

    Control leaves a block only via moves to ``nc.pc``/``nc.halt`` (which
    the scheduler keeps in order relative to each other and anchors at the
    block end region) or by falling through to the next block.
    """

    label: str
    moves: List[SymbolicMove] = field(default_factory=list)

    def append(self, move: SymbolicMove) -> None:
        self.moves.append(move)

    def __len__(self) -> int:
        return len(self.moves)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"    {m}" for m in self.moves)
        return "\n".join(lines)


@dataclass
class IrProgram:
    """An ordered collection of basic blocks with unique labels."""

    blocks: List[BasicBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        labels = [b.label for b in self.blocks]
        if len(labels) != len(set(labels)):
            raise AssemblyError(f"duplicate block labels in {labels}")

    def block(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise AssemblyError(f"no block labelled {label!r}")

    def move_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __str__(self) -> str:
        return "\n".join(str(b) for b in self.blocks)


class ProgramBuilder:
    """Fluent construction of :class:`IrProgram`.

    >>> b = ProgramBuilder()
    >>> b.block("start")
    >>> b.move(Immediate(1), PortRef("shf0", "o"))
    >>> b.jump("start")
    """

    def __init__(self) -> None:
        self._blocks: List[BasicBlock] = []
        self._current: Optional[BasicBlock] = None

    def block(self, label: str) -> "ProgramBuilder":
        if any(b.label == label for b in self._blocks):
            raise AssemblyError(f"duplicate label {label!r}")
        self._current = BasicBlock(label=label)
        self._blocks.append(self._current)
        return self

    def _require_block(self) -> BasicBlock:
        if self._current is None:
            raise AssemblyError("open a block before emitting moves")
        return self._current

    def move(self, source, destination: PortRef,
             guard: Optional[Guard] = None) -> "ProgramBuilder":
        if isinstance(source, int):
            source = Immediate(source)
        self._require_block().append(
            SymbolicMove(source=source, destination=destination, guard=guard))
        return self

    def jump(self, label: str, guard: Optional[Guard] = None) -> "ProgramBuilder":
        self._require_block().append(SymbolicMove(
            destination=PortRef("nc", "pc"), label_target=label, guard=guard))
        return self

    def halt(self, guard: Optional[Guard] = None) -> "ProgramBuilder":
        self._require_block().append(SymbolicMove(
            source=Immediate(0), destination=PortRef("nc", "halt"), guard=guard))
        return self

    def build(self) -> IrProgram:
        if not self._blocks:
            raise AssemblyError("program has no blocks")
        return IrProgram(blocks=list(self._blocks))


def sequential_moves(program: IrProgram) -> Sequence[SymbolicMove]:
    """All moves in program order (the unscheduled, 1-bus-equivalent form)."""
    out: List[SymbolicMove] = []
    for block in program.blocks:
        out.extend(block.moves)
    return out
