"""Top-level assembly pipeline: IR → (optimise) → schedule → program image.

Also provides the textual TACO assembly round trip used by tools and
tests: :func:`format_program` renders an instruction stream, and
:func:`parse_assembly` reads the sequential IR text form.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional

from repro.asm.ir import BasicBlock, IrProgram, SymbolicMove
from repro.asm.optimizer import optimize
from repro.asm.scheduler import BusScheduler, instructions_from_schedule
from repro.errors import AssemblyError
from repro.tta.instruction import Instruction
from repro.tta.memory import ProgramMemory
from repro.tta.ports import Guard, Immediate, PortRef
from repro.tta.processor import TacoProcessor


def assemble(program: IrProgram, processor: TacoProcessor,
             optimize_code: bool = True,
             temp_registers: Iterable[PortRef] = ()) -> ProgramMemory:
    """The full pipeline the paper sketches in Fig. 3."""
    if optimize_code:
        program = optimize(program, processor, temp_registers=temp_registers)
    scheduler = BusScheduler(processor)
    schedule = scheduler.schedule(program)
    instructions = instructions_from_schedule(schedule)
    if not instructions:
        raise AssemblyError("program scheduled to zero instructions")
    return ProgramMemory(instructions)


# -- textual form -----------------------------------------------------------------------

_MOVE_RE = re.compile(
    r"^(?:(?P<neg>!)?(?P<guard>\w+)\?\s+)?"
    r"(?P<src>\#?-?\w+(?:\.\w+)?|@\w+)\s*->\s*"
    r"(?P<dst>\w+\.\w+)$")


def parse_assembly(text: str) -> IrProgram:
    """Parse sequential TACO assembly.

    Grammar (one move per line)::

        label:
            [!]fu? source -> fu.port      ; guarded move
            #imm -> fu.port               ; immediate
            fu.port -> fu.port            ; transport
            @label -> nc.pc               ; jump

    ``;`` starts a comment. Blocks begin at ``label:`` lines.
    """
    blocks: List[BasicBlock] = []
    current: Optional[BasicBlock] = None
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label.isidentifier():
                raise AssemblyError(f"bad label: {label!r}")
            current = BasicBlock(label=label)
            blocks.append(current)
            continue
        if current is None:
            current = BasicBlock(label="entry")
            blocks.append(current)
        current.append(_parse_move(line))
    if not blocks:
        raise AssemblyError("empty assembly text")
    return IrProgram(blocks=blocks)


def _parse_move(line: str) -> SymbolicMove:
    match = _MOVE_RE.match(line)
    if not match:
        raise AssemblyError(f"cannot parse move: {line!r}")
    guard = None
    if match.group("guard"):
        guard = Guard(fu=match.group("guard"), negate=bool(match.group("neg")))
    dst_fu, dst_port = match.group("dst").split(".")
    destination = PortRef(dst_fu, dst_port)
    src = match.group("src")
    if src.startswith("@"):
        return SymbolicMove(destination=destination, label_target=src[1:],
                            guard=guard)
    if src.startswith("#"):
        value = int(src[1:], 0)
        return SymbolicMove(destination=destination, source=Immediate(value),
                            guard=guard)
    if "." not in src:
        raise AssemblyError(f"source must be fu.port, #imm or @label: {src!r}")
    src_fu, src_port = src.split(".")
    return SymbolicMove(destination=destination,
                        source=PortRef(src_fu, src_port), guard=guard)


def format_ir(program: IrProgram) -> str:
    """Render IR back to the textual form (round-trips with the parser)."""
    lines: List[str] = []
    for block in program.blocks:
        lines.append(f"{block.label}:")
        for move in block.moves:
            lines.append(f"    {move}")
    return "\n".join(lines) + "\n"


def format_program(program: ProgramMemory,
                   labels: Optional[Dict[str, int]] = None) -> str:
    """Disassemble a scheduled program, one instruction (cycle) per line."""
    address_labels: Dict[int, str] = {}
    if labels:
        for name, address in labels.items():
            address_labels[address] = name
    lines = []
    for address, instruction in enumerate(program):
        if address in address_labels:
            lines.append(f"{address_labels[address]}:")
        lines.append(f"  {address:4d}: {instruction}")
    return "\n".join(lines) + "\n"
