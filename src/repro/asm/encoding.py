"""Binary instruction encoding for TACO programs.

"TTAs are in essence one instruction processors ... the instruction word
of any TTA processor consists mostly of source and destination addresses"
(paper §1). This module derives, per architecture instance, the concrete
move-slot format:

``[guard | destination address | immediate flag | source address/immediate]``

* the guard field enumerates "always" plus the true/negated forms of
  every FU result bit wired to the network controller;
* destination addresses enumerate every writable port (operand, trigger,
  register, plus the NC's pc/halt destinations);
* source addresses enumerate every readable port (results, registers);
  with the immediate flag set, the source field carries a literal.

The immediate field is kept at a full 32 bits, so the slot width here is
an *upper bound* on what a production TACO packs (short-immediate
optimisation would shrink it); the encoder's purpose is an exact,
reversible machine representation plus a program-store size the physical
estimation can price.

The instruction word is ``bus_count`` slots side by side, one per bus,
with an all-ones destination denoting an idle slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.tta.instruction import Instruction, Move
from repro.tta.memory import ProgramMemory
from repro.tta.ports import Guard, Immediate, PortRef
from repro.tta.processor import TacoProcessor

IMMEDIATE_BITS = 32


def _bits_for(count: int) -> int:
    if count <= 1:
        return 1
    return (count - 1).bit_length()


@dataclass(frozen=True)
class EncodingScheme:
    """The move-slot format of one architecture instance."""

    sources: Tuple[PortRef, ...]
    destinations: Tuple[PortRef, ...]
    guards: Tuple[Optional[Guard], ...]  # index 0 = unconditional
    bus_count: int

    # -- construction ---------------------------------------------------------------

    @classmethod
    def for_processor(cls, processor: TacoProcessor) -> "EncodingScheme":
        sources: List[PortRef] = []
        destinations: List[PortRef] = []
        guards: List[Optional[Guard]] = [None]
        for name in sorted(processor.fus):
            fu = processor.fus[name]
            for port_name in sorted(fu.ports):
                port = fu.ports[port_name]
                ref = PortRef(name, port_name)
                if port.readable():
                    sources.append(ref)
                if port.writable():
                    destinations.append(ref)
            guards.append(Guard(name, negate=False))
            guards.append(Guard(name, negate=True))
        return cls(sources=tuple(sources), destinations=tuple(destinations),
                   guards=tuple(guards), bus_count=processor.bus_count)

    # -- geometry -------------------------------------------------------------------

    @property
    def guard_bits(self) -> int:
        return _bits_for(len(self.guards))

    @property
    def destination_bits(self) -> int:
        # one extra code for the idle slot (all ones)
        return _bits_for(len(self.destinations) + 1)

    @property
    def source_bits(self) -> int:
        return 1 + max(_bits_for(len(self.sources)), IMMEDIATE_BITS)

    @property
    def slot_bits(self) -> int:
        return self.guard_bits + self.destination_bits + self.source_bits

    @property
    def instruction_bits(self) -> int:
        return self.slot_bits * self.bus_count

    def program_bytes(self, instruction_count: int) -> int:
        """Program-store footprint, rounded up to whole bytes per word."""
        word_bytes = (self.instruction_bits + 7) // 8
        return word_bytes * instruction_count

    # -- encoding -------------------------------------------------------------------

    def encode_move(self, move: Optional[Move]) -> int:
        idle_destination = (1 << self.destination_bits) - 1
        if move is None:
            return idle_destination << self.source_bits
        try:
            guard_code = self.guards.index(move.guard)
        except ValueError:
            raise AssemblyError(f"unencodable guard {move.guard}") from None
        try:
            destination_code = self.destinations.index(move.destination)
        except ValueError:
            raise AssemblyError(
                f"unencodable destination {move.destination}") from None
        if isinstance(move.source, Immediate):
            source_code = (1 << (self.source_bits - 1)) | move.source.value
        else:
            try:
                source_code = self.sources.index(move.source)
            except ValueError:
                raise AssemblyError(
                    f"unencodable source {move.source}") from None
        word = guard_code
        word = (word << self.destination_bits) | destination_code
        word = (word << self.source_bits) | source_code
        return word

    def decode_move(self, word: int) -> Optional[Move]:
        source_mask = (1 << self.source_bits) - 1
        destination_mask = (1 << self.destination_bits) - 1
        source_code = word & source_mask
        destination_code = (word >> self.source_bits) & destination_mask
        guard_code = word >> (self.source_bits + self.destination_bits)
        if destination_code == destination_mask:
            return None
        if destination_code >= len(self.destinations):
            raise AssemblyError(f"bad destination code {destination_code}")
        if guard_code >= len(self.guards):
            raise AssemblyError(f"bad guard code {guard_code}")
        if source_code >> (self.source_bits - 1):
            source = Immediate(source_code & ((1 << IMMEDIATE_BITS) - 1))
        else:
            if source_code >= len(self.sources):
                raise AssemblyError(f"bad source code {source_code}")
            source = self.sources[source_code]
        return Move(source=source,
                    destination=self.destinations[destination_code],
                    guard=self.guards[guard_code])

    def encode_instruction(self, instruction: Instruction) -> int:
        if instruction.width != self.bus_count:
            raise AssemblyError(
                f"instruction is {instruction.width} slots wide, scheme "
                f"expects {self.bus_count}")
        word = 0
        for move in instruction.moves:
            word = (word << self.slot_bits) | self.encode_move(move)
        return word

    def decode_instruction(self, word: int) -> Instruction:
        slot_mask = (1 << self.slot_bits) - 1
        slots: List[Optional[Move]] = []
        for i in reversed(range(self.bus_count)):
            slots.append(self.decode_move((word >> (i * self.slot_bits))
                                          & slot_mask))
        return Instruction(moves=tuple(slots))


def encode_program(program: ProgramMemory,
                   scheme: EncodingScheme) -> List[int]:
    return [scheme.encode_instruction(i) for i in program]


def decode_program(words: List[int],
                   scheme: EncodingScheme) -> ProgramMemory:
    return ProgramMemory([scheme.decode_instruction(w) for w in words])


def describe_format(scheme: EncodingScheme) -> str:
    """A short datasheet of the slot layout."""
    return (
        f"move slot: {scheme.slot_bits} bits = "
        f"guard[{scheme.guard_bits}] + dst[{scheme.destination_bits}] + "
        f"imm-flag/src[{scheme.source_bits}]; "
        f"instruction word: {scheme.bus_count} x {scheme.slot_bits} = "
        f"{scheme.instruction_bits} bits "
        f"({len(scheme.sources)} sources, {len(scheme.destinations)} "
        f"destinations, {len(scheme.guards)} guard codes)")
