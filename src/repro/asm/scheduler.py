"""Bus (list) scheduler: packs sequential moves onto N buses.

"Code optimization for TACO processors reduces in fact to well-known bus
scheduling and registry allocation problems" (paper §3). This is a classic
in-order list scheduler over one basic block at a time:

* every move is placed at the earliest cycle allowed by its dependences
  and by bus availability (lexicographic (cycle, bus) order, respecting
  socket connectivity);
* control moves (``nc.pc`` / ``nc.halt``) act as barriers: everything
  textually before them finishes no later than their cycle, everything
  after starts strictly later — which is exactly what makes the scheduled
  linear instruction stream preserve fall-through semantics.

Dependence edges (with minimum cycle separation):

=====================================================  ==========
result read after the trigger that produces it          FU latency
guard evaluated after the trigger that sets the bit     FU latency
register (GPR) read after write                         1
register/operand overwrite after a read / after write   1
trigger serialisation on one FU                         1
trigger after its operand writes                        0 (bus order)
trigger after readers of the FU's previous result       0
=====================================================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.tta.instruction import Instruction
from repro.tta.ports import PortKind, PortRef
from repro.tta.processor import TacoProcessor
from repro.asm.ir import BasicBlock, IrProgram, SymbolicMove

CONTROL_FU = "nc"

#: FU kinds whose triggers touch data memory (directly or via DMA) and
#: therefore stay mutually ordered
MEMORY_ORDERED_KINDS = frozenset({"mmu", "oppu", "ippu"})


@dataclass
class ScheduledBlock:
    """One block's schedule: per-cycle lists of (bus, move)."""

    label: str
    cycles: List[List[Tuple[int, SymbolicMove]]] = field(default_factory=list)

    def length(self) -> int:
        return len(self.cycles)


@dataclass
class ScheduledProgram:
    blocks: List[ScheduledBlock]
    bus_count: int

    def length(self) -> int:
        return sum(b.length() for b in self.blocks)

    def label_addresses(self) -> Dict[str, int]:
        addresses: Dict[str, int] = {}
        cursor = 0
        for block in self.blocks:
            addresses[block.label] = cursor
            cursor += block.length()
        return addresses


class BusScheduler:
    """Schedules an :class:`IrProgram` for a given processor instance."""

    def __init__(self, processor: TacoProcessor):
        self.processor = processor
        self.bus_count = processor.bus_count

    # -- public -------------------------------------------------------------------

    def schedule(self, program: IrProgram) -> ScheduledProgram:
        blocks = [self._schedule_block(b) for b in program.blocks]
        return ScheduledProgram(blocks=blocks, bus_count=self.bus_count)

    # -- per-block list scheduling ---------------------------------------------------

    def _schedule_block(self, block: BasicBlock) -> ScheduledBlock:
        cycles: List[List[Tuple[int, SymbolicMove]]] = []
        # tracking state for dependence computation
        last_port_write: Dict[Tuple[str, str], int] = {}
        last_port_read: Dict[Tuple[str, str], int] = {}
        last_trigger: Dict[str, int] = {}          # fu -> cycle
        last_result_read: Dict[str, int] = {}      # fu -> cycle
        last_memory_trigger = -1                   # cross-unit memory order
        barrier_cycle = -1
        max_scheduled = -1

        def ensure_cycle(index: int) -> None:
            while len(cycles) <= index:
                cycles.append([])

        for move in block.moves:
            earliest = barrier_cycle + 1 if barrier_cycle >= 0 else 0
            dest_fu, dest_port = self._resolve(move.destination)
            is_trigger = dest_port.kind is PortKind.TRIGGER
            is_control = move.destination.fu == CONTROL_FU

            # source dependences
            source = move.source if isinstance(move.source, PortRef) else None
            if source is not None:
                src_fu, src_port = self._resolve(source)
                if src_port.kind is PortKind.RESULT:
                    trigger_cycle = last_trigger.get(source.fu)
                    if trigger_cycle is not None:
                        earliest = max(earliest,
                                       trigger_cycle + src_fu.latency)
                else:  # register read-after-write
                    write_cycle = last_port_write.get((source.fu, source.port))
                    if write_cycle is not None:
                        earliest = max(earliest, write_cycle + 1)

            # guard depends on the trigger producing the bit
            if move.guard is not None:
                guard_fu = self.processor.fu(move.guard.fu)
                trigger_cycle = last_trigger.get(move.guard.fu)
                if trigger_cycle is not None:
                    earliest = max(earliest, trigger_cycle + guard_fu.latency)

            # destination hazards
            dest_key = (move.destination.fu, move.destination.port)
            write_cycle = last_port_write.get(dest_key)
            if write_cycle is not None:  # WAW
                earliest = max(earliest, write_cycle + 1)
            read_cycle = last_port_read.get(dest_key)
            if read_cycle is not None:  # WAR (same cycle is fine: reads first)
                earliest = max(earliest, read_cycle)
            if dest_port.kind is PortKind.OPERAND:
                # Overwriting an operand latch the FU's previous trigger
                # consumed must wait a cycle (avoids bus-order subtleties).
                trigger_cycle = last_trigger.get(move.destination.fu)
                if trigger_cycle is not None:
                    earliest = max(earliest, trigger_cycle + 1)
            if is_trigger:
                # serialise triggers per FU; wait for operand writes (same
                # cycle allowed, bus order guarantees visibility); wait for
                # readers of the previous result
                trigger_cycle = last_trigger.get(move.destination.fu)
                if trigger_cycle is not None:
                    earliest = max(earliest, trigger_cycle + 1)
                for (fu_name, port_name), cycle in last_port_write.items():
                    if fu_name == move.destination.fu:
                        earliest = max(earliest, cycle)
                result_read = last_result_read.get(move.destination.fu)
                if result_read is not None:
                    earliest = max(earliest, result_read)
                # an operand consumed by the previous trigger may not be
                # overwritten... (handled by WAW/WAR above for the port)
            if is_control:
                earliest = max(earliest, max_scheduled)
            if is_trigger and dest_fu.kind in MEMORY_ORDERED_KINDS:
                # Units that read/write data memory autonomously (mmu DMA
                # peers) must observe each other's effects in program
                # order. Same-cycle is safe: DMA ticks run after the whole
                # write phase of a cycle.
                earliest = max(earliest, last_memory_trigger)

            cycle, bus = self._place(cycles, earliest, move)
            ensure_cycle(cycle)
            cycles[cycle].append((bus, move))
            max_scheduled = max(max_scheduled, cycle)

            # Update tracking. List scheduling is out-of-order in *time*
            # (a later move can land at an earlier cycle), so every map
            # must keep the maximum cycle seen, never the last one —
            # otherwise a pending read/write at a later cycle would be
            # forgotten and a hazard slipped past.
            last_port_write[dest_key] = max(
                last_port_write.get(dest_key, -1), cycle)
            if source is not None:
                source_key = (source.fu, source.port)
                last_port_read[source_key] = max(
                    last_port_read.get(source_key, -1), cycle)
                src_fu2, src_port2 = self._resolve(source)
                if src_port2.kind is PortKind.RESULT:
                    last_result_read[source.fu] = max(
                        last_result_read.get(source.fu, -1), cycle)
            if is_trigger and not is_control:
                last_trigger[move.destination.fu] = max(
                    last_trigger.get(move.destination.fu, -1), cycle)
                if dest_fu.kind in MEMORY_ORDERED_KINDS:
                    last_memory_trigger = max(last_memory_trigger, cycle)
            if is_control:
                barrier_cycle = max(barrier_cycle, cycle)

        return ScheduledBlock(label=block.label, cycles=cycles)

    # -- helpers --------------------------------------------------------------------

    def _resolve(self, ref: PortRef):
        return self.processor.resolve(ref)

    def _place(self, cycles: List[List[Tuple[int, SymbolicMove]]],
               earliest: int, move: SymbolicMove) -> Tuple[int, int]:
        """Earliest (cycle, bus) with a free, connectivity-legal bus slot."""
        source_ref = move.source if isinstance(move.source, PortRef) else None
        cycle = max(earliest, 0)
        while True:
            occupied = {bus for bus, _ in cycles[cycle]} if cycle < len(cycles) else set()
            for bus in range(self.bus_count):
                if bus in occupied:
                    continue
                if self.processor.interconnect.allows(bus, source_ref,
                                                      move.destination):
                    return cycle, bus
            cycle += 1
            if cycle > 1_000_000:
                raise AssemblyError(f"cannot place move {move}")


def instructions_from_schedule(schedule: ScheduledProgram,
                               labels: Optional[Dict[str, int]] = None
                               ) -> List[Instruction]:
    """Flatten a schedule into instruction bundles with labels resolved."""
    if labels is None:
        labels = schedule.label_addresses()
    out: List[Instruction] = []
    for block in schedule.blocks:
        for cycle_moves in block.cycles:
            slots: List[Optional[object]] = [None] * schedule.bus_count
            for bus, symbolic in cycle_moves:
                if slots[bus] is not None:
                    raise AssemblyError(
                        f"bus {bus} double-booked in block {block.label}")
                slots[bus] = symbolic.resolved(labels)
            out.append(Instruction(moves=tuple(slots)))  # type: ignore[arg-type]
    return out
