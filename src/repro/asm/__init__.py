"""TACO assembly toolchain: IR, optimiser, bus scheduler, assembler."""

from repro.asm.assembler import assemble, format_ir, format_program, parse_assembly
from repro.asm.encoding import (
    EncodingScheme,
    decode_program,
    describe_format,
    encode_program,
)
from repro.asm.ir import (
    BasicBlock,
    IrProgram,
    ProgramBuilder,
    SymbolicMove,
    sequential_moves,
)
from repro.asm.optimizer import (
    bypass,
    eliminate_dead_writes,
    optimize,
    share_operands,
)
from repro.asm.scheduler import (
    BusScheduler,
    ScheduledBlock,
    ScheduledProgram,
    instructions_from_schedule,
)

__all__ = [
    "assemble", "format_ir", "format_program", "parse_assembly",
    "EncodingScheme", "decode_program", "describe_format", "encode_program",
    "BasicBlock", "IrProgram", "ProgramBuilder", "SymbolicMove",
    "sequential_moves",
    "bypass", "eliminate_dead_writes", "optimize", "share_operands",
    "BusScheduler", "ScheduledBlock", "ScheduledProgram",
    "instructions_from_schedule",
]
