"""TTA code optimisations (paper §3, Fig. 3).

"Using registers for FUs allows using optimization techniques like moving
operands from an output register to an input register without additional
temporary storage (bypassing), using the same output register or general
purpose register for multiple data transports (operand sharing), easy
removing of registers that are no longer in use" — the three passes here:

* :func:`bypass` — ``x -> gpr.rK`` followed by ``gpr.rK -> y`` becomes
  ``x -> y`` when the value provably survives (no clobber of x in between);
* :func:`eliminate_dead_writes` — register writes nothing ever reads are
  dropped (scoped to registers declared block-local);
* :func:`share_operands` — rewriting an operand latch with the value it
  already holds is dropped (immediates only, conservatively).

All passes work block-locally and preserve observable behaviour; tests
check equivalence by simulating before/after.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.asm.ir import BasicBlock, IrProgram, SymbolicMove
from repro.tta.ports import Immediate, PortKind, PortRef
from repro.tta.processor import TacoProcessor

CONTROL_FU = "nc"


def optimize(program: IrProgram, processor: TacoProcessor,
             temp_registers: Iterable[PortRef] = ()) -> IrProgram:
    """Run every pass; *temp_registers* are registers dead at block exits."""
    temps = set(temp_registers)
    blocks = []
    for block in program.blocks:
        moves = list(block.moves)
        moves = bypass_block(moves, processor)
        moves = share_operands_block(moves, processor)
        moves = eliminate_dead_writes_block(moves, temps)
        blocks.append(BasicBlock(label=block.label, moves=moves))
    return IrProgram(blocks=blocks)


# -- bypassing ---------------------------------------------------------------------


def bypass(program: IrProgram, processor: TacoProcessor) -> IrProgram:
    return IrProgram(blocks=[
        BasicBlock(label=b.label, moves=bypass_block(list(b.moves), processor))
        for b in program.blocks])


def bypass_block(moves: List[SymbolicMove],
                 processor: TacoProcessor) -> List[SymbolicMove]:
    """Forward sources through single-use register copies."""
    out = list(moves)
    changed = True
    while changed:
        changed = False
        for i, copy_move in enumerate(out):
            forwarded = _try_forward(out, i, processor)
            if forwarded is not None:
                j, replacement = forwarded
                out[j] = replacement
                changed = True
                break
    return out


def _try_forward(moves: List[SymbolicMove], i: int,
                 processor: TacoProcessor) -> Optional[Tuple[int, SymbolicMove]]:
    copy_move = moves[i]
    if copy_move.guard is not None or copy_move.source is None:
        return None
    destination = copy_move.destination
    _, dest_port = processor.resolve(destination)
    if dest_port.kind is not PortKind.REGISTER:
        return None
    source = copy_move.source
    for j in range(i + 1, len(moves)):
        later = moves[j]
        # clobbers of the register or of the forwarded source end the window
        if later.source == destination and later.guard is None:
            # candidate read: forward if the original source is still live
            if isinstance(source, PortRef) and _source_clobbered(
                    moves, i + 1, j, source, processor):
                return None
            if later.destination == destination:
                return None
            return j, SymbolicMove(source=source,
                                   destination=later.destination,
                                   label_target=None, guard=later.guard)
        if later.destination == destination:
            return None
        if isinstance(source, PortRef) and _source_clobbered(
                moves, j, j + 1, source, processor):
            return None
        if later.destination.fu == CONTROL_FU:
            return None
    return None


def _source_clobbered(moves: List[SymbolicMove], start: int, end: int,
                      source: PortRef, processor: TacoProcessor) -> bool:
    src_fu, src_port = processor.resolve(source)
    for k in range(start, end):
        move = moves[k]
        if move.destination == source:
            return True
        if src_port.kind is PortKind.RESULT:
            # any new trigger of the producing FU overwrites its results
            _, dport = processor.resolve(move.destination)
            if move.destination.fu == source.fu and dport.kind is PortKind.TRIGGER:
                return True
    return False


# -- dead register writes -------------------------------------------------------------


def eliminate_dead_writes(program: IrProgram,
                          temp_registers: Iterable[PortRef]) -> IrProgram:
    temps = set(temp_registers)
    return IrProgram(blocks=[
        BasicBlock(label=b.label,
                   moves=eliminate_dead_writes_block(list(b.moves), temps))
        for b in program.blocks])


def eliminate_dead_writes_block(moves: List[SymbolicMove],
                                temps: Set[PortRef]) -> List[SymbolicMove]:
    keep = [True] * len(moves)
    for i, move in enumerate(moves):
        if move.destination not in temps or move.guard is not None:
            continue
        read_later = False
        for j in range(i + 1, len(moves)):
            if moves[j].source == move.destination:
                read_later = True
                break
            if (moves[j].destination == move.destination
                    and moves[j].guard is None):
                break  # overwritten before any read
        if not read_later:
            keep[i] = False
    return [m for m, k in zip(moves, keep) if k]


# -- operand sharing -------------------------------------------------------------------


def share_operands(program: IrProgram, processor: TacoProcessor) -> IrProgram:
    return IrProgram(blocks=[
        BasicBlock(label=b.label,
                   moves=share_operands_block(list(b.moves), processor))
        for b in program.blocks])


def share_operands_block(moves: List[SymbolicMove],
                         processor: TacoProcessor) -> List[SymbolicMove]:
    """Drop rewrites of an operand latch with the immediate it holds."""
    latch_value = {}
    out: List[SymbolicMove] = []
    for move in moves:
        destination = move.destination
        _, dest_port = processor.resolve(destination)
        if (dest_port.kind is PortKind.OPERAND
                and isinstance(move.source, Immediate)
                and move.guard is None):
            if latch_value.get(destination) == move.source.value:
                continue
            latch_value[destination] = move.source.value
            out.append(move)
            continue
        if dest_port.kind is PortKind.OPERAND:
            latch_value.pop(destination, None)
        if destination.fu == CONTROL_FU:
            # after a (possible) control transfer the latch cache is stale
            latch_value.clear()
        out.append(move)
    return out
