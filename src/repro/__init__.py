"""repro — TACO protocol-processor evaluation for IPv6 routing.

A complete, from-scratch reproduction of *"Fast Evaluation of Protocol
Processor Architectures for IPv6 Routing"* (Lilius, Truscan, Virtanen,
DATE 2003): a cycle-accurate transport-triggered-architecture (TTA)
processor model with the paper's functional-unit library, an assembly
toolchain (move IR, optimiser, bus scheduler), an IPv6 + RIPng protocol
substrate, three routing-table implementations (sequential, balanced
tree, CAM), physical area/power/frequency estimation, and the
design-space exploration that regenerates the paper's Table 1.

Quick start::

    from repro.dse import Evaluator, generate_table1, render_table1
    print(render_table1(generate_table1()))
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
