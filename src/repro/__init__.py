"""repro — TACO protocol-processor evaluation for IPv6 routing.

A complete, from-scratch reproduction of *"Fast Evaluation of Protocol
Processor Architectures for IPv6 Routing"* (Lilius, Truscan, Virtanen,
DATE 2003): a cycle-accurate transport-triggered-architecture (TTA)
processor model with the paper's functional-unit library, an assembly
toolchain (move IR, optimiser, bus scheduler), an IPv6 + RIPng protocol
substrate, three routing-table implementations (sequential, balanced
tree, CAM), physical area/power/frequency estimation, and the
design-space exploration that regenerates the paper's Table 1 — in
parallel over a process pool when asked.

Quick start (the stable facade — prefer it over deep module paths)::

    from repro import api
    rows = api.table1(jobs=4)      # parallel sweep, deterministic output
    print(api.render_table1(rows))
"""

__version__ = "1.1.0"

from repro.errors import ReproError
from repro import api
from repro.api import (
    ArchitectureConfiguration,
    EvaluationResult,
    ExplorationOutcome,
    ResilienceReport,
    Table1Row,
    evaluate,
    explore,
    metrics,
    metrics_registry,
    render_metrics,
    render_table1,
    run_chaos,
    table1,
)

__all__ = [
    "api",
    "evaluate", "table1", "explore", "run_chaos", "render_table1",
    "metrics", "metrics_registry", "render_metrics",
    "ArchitectureConfiguration", "EvaluationResult", "ExplorationOutcome",
    "ResilienceReport", "Table1Row",
    "ReproError", "__version__",
]
