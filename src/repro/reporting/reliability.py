"""Rendering for datapath-reliability (SDC sweep) results.

One fixed-width vulnerability table per sweep: a row per architecture
configuration with its outcome histogram and the three derived
vulnerability metrics. Rendered purely from journal records, so a
resumed or parallel sweep prints byte-identically to a sequential one.
"""

from __future__ import annotations

from typing import List

from repro.reporting.tables import render_rows


def _pct(value) -> str:
    return "NA" if value is None else f"{value * 100:.1f}"


def _mean(value) -> str:
    return "NA" if value is None else f"{value:.1f}"


def render_vulnerability_table(result) -> str:
    """Text artifact for one :class:`~repro.dse.sdc.SdcSweepResult`."""
    rows: List[List[object]] = []
    for row in result.rows:
        outcomes = row["outcomes"]
        rows.append([
            row["table"], row["config"],
            row["trials"] + row["failed"],
            outcomes["masked"], outcomes["detected"], outcomes["sdc"],
            outcomes["crash"], outcomes["hang"],
            _pct(row["sdc_rate"]),
            _pct(row["detection_coverage"]),
            _mean(row["mean_faults_to_failure"]),
        ])
    table = render_rows(
        ["Table", "Configuration", "Trials", "Masked", "Detected", "SDC",
         "Crash", "Hang", "SDC%", "Coverage%", "MFTF"], rows)
    totals = result.outcome_totals
    trials = sum(totals.values())
    footer = (f"{trials} trials over {len(result.rows)} configurations, "
              f"sites {'/'.join(result.sites)}, "
              f"rate {result.rate:g}, seed {result.seed}: "
              + ", ".join(f"{outcome} {count}"
                          for outcome, count in sorted(totals.items())))
    return table + "\n" + footer
