"""Rendering for datapath-reliability (SDC sweep) results.

One fixed-width vulnerability table per sweep: a row per architecture
configuration with its outcome histogram and the three derived
vulnerability metrics. Rendered purely from journal records, so a
resumed or parallel sweep prints byte-identically to a sequential one.
"""

from __future__ import annotations

from typing import List

from repro.reporting.tables import render_rows


def _pct(value) -> str:
    return "NA" if value is None else f"{value * 100:.1f}"


def _mean(value) -> str:
    return "NA" if value is None else f"{value:.1f}"


def render_vulnerability_table(result) -> str:
    """Text artifact for one :class:`~repro.dse.sdc.SdcSweepResult`."""
    rows: List[List[object]] = []
    for row in result.rows:
        outcomes = row["outcomes"]
        rows.append([
            row["table"], row["config"],
            row["trials"] + row["failed"],
            outcomes["masked"], outcomes["detected"], outcomes["sdc"],
            outcomes["crash"], outcomes["hang"],
            _pct(row["sdc_rate"]),
            _pct(row["detection_coverage"]),
            _mean(row["mean_faults_to_failure"]),
        ])
    table = render_rows(
        ["Table", "Configuration", "Trials", "Masked", "Detected", "SDC",
         "Crash", "Hang", "SDC%", "Coverage%", "MFTF"], rows)
    totals = result.outcome_totals
    trials = sum(totals.values())
    footer = (f"{trials} trials over {len(result.rows)} configurations, "
              f"sites {'/'.join(result.sites)}, "
              f"rate {result.rate:g}, seed {result.seed}: "
              + ", ".join(f"{outcome} {count}"
                          for outcome, count in sorted(totals.items())))
    return table + "\n" + footer


def render_memory_vulnerability_table(result) -> str:
    """Text artifact for one :class:`~repro.dse.sdc.MemorySweepResult`.

    One row per (table kind, protection mode) cell: outcome histogram,
    the derived SDC rate and detection coverage, and the Table-1-style
    cost of carrying the protection words (extra table bytes, area and
    power deltas).
    """
    rows: List[List[object]] = []
    for row in result.rows:
        outcomes = row["outcomes"]
        cost = row["protection_cost"] or {}
        rows.append([
            row["kind"], row["protection"],
            row["trials"] + row["failed"],
            outcomes["masked"], outcomes["detected"], outcomes["sdc"],
            outcomes["crash"], outcomes["hang"],
            _pct(row["sdc_rate"]),
            _pct(row["detection_coverage"]),
            cost.get("overhead_bytes", 0),
            f"{cost.get('area_delta_mm2', 0.0):+.3f}",
            f"{cost.get('power_delta_w', 0.0):+.3f}",
        ])
    table = render_rows(
        ["Table", "Protection", "Trials", "Masked", "Detected", "SDC",
         "Crash", "Hang", "SDC%", "Coverage%", "OverheadB",
         "dArea_mm2", "dPower_W"], rows)
    totals = result.outcome_totals
    trials = sum(totals.values())
    footer = (f"{trials} state-flip trials over {len(result.rows)} "
              f"(kind, protection) cells, "
              f"{result.prefix_count} prefixes, {result.lookups} lookups, "
              f"flips {result.flips}, seed {result.seed}: "
              + ", ".join(f"{outcome} {count}"
                          for outcome, count in sorted(totals.items())))
    return table + "\n" + footer
