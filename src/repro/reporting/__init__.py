"""Reporting helpers: text tables and architecture descriptions."""

from repro.reporting.architecture import (
    architecture_manifest,
    describe_machine,
    to_dot,
)
from repro.reporting.hazards import (
    aggregate_hazard_counts,
    render_hazard_summary,
)
from repro.reporting.reliability import render_vulnerability_table
from repro.reporting.tables import render_rows, render_sweep
from repro.reporting.utilization import (
    idle_units,
    module_utilization,
    render_utilization,
    saturated_units,
)

__all__ = ["render_rows", "render_sweep", "render_vulnerability_table",
           "architecture_manifest", "describe_machine", "to_dot",
           "aggregate_hazard_counts", "render_hazard_summary",
           "idle_units", "module_utilization", "render_utilization",
           "saturated_units"]
