"""Top-level architecture descriptions of TACO instances.

The TACO flow keeps three synchronized models (SystemC simulation, Matlab
estimation, VHDL synthesis) whose "top-level description files for a
given architecture can be automatically generated ... using a single
hardware design tool" [14]. This module is that generator's counterpart
for the Python model: given a configured machine it emits

* a human-readable datasheet (:func:`describe_machine`) — unit inventory,
  port maps, interconnect, memories;
* a Graphviz DOT rendering of Fig. 2 for the instance (:func:`to_dot`);
* a machine-readable dict (:func:`architecture_manifest`) that external
  tools (or a future VHDL generator) can consume.
"""

from __future__ import annotations

from typing import Dict, List

from repro.programs.machine import RouterMachine
from repro.tta.ports import PortKind
from repro.tta.processor import TacoProcessor

_KIND_ORDER = ("nc", "mmu", "rtu", "ippu", "oppu", "liu", "gpr",
               "matcher", "counter", "comparator", "shifter", "masker",
               "checksum")


def _sorted_units(processor: TacoProcessor):
    def key(fu):
        try:
            rank = _KIND_ORDER.index(fu.kind)
        except ValueError:
            rank = len(_KIND_ORDER)
        return (rank, fu.name)

    return sorted(processor.fus.values(), key=key)


def describe_machine(machine: RouterMachine) -> str:
    """A textual datasheet for one architecture instance."""
    processor = machine.processor
    config = machine.config
    lines: List[str] = []
    lines.append(f"TACO architecture instance: {config.describe()}")
    lines.append("=" * len(lines[0]))
    lines.append("")
    lines.append(f"interconnection network: {processor.bus_count} x 32-bit "
                 f"data bus(es), fully connected sockets")
    lines.append(f"data memory:             {len(machine.memory)} words "
                 f"({len(machine.memory) * 4 // 1024} KiB)")
    lines.append(f"datagram slots:          {machine.slots.slot_count} x "
                 f"{machine.slots.slot_bytes} B at "
                 f"{machine.slots.base_word:#x}")
    lines.append(f"routing table:           {machine.table.kind}, capacity "
                 f"{machine.table.capacity}, image at "
                 f"{machine.rtu.base_word:#x}")
    lines.append(f"line cards:              {len(machine.line_cards)}")
    lines.append("")
    lines.append("functional units")
    lines.append("-" * 16)
    for fu in _sorted_units(processor):
        ports = []
        for name, port in fu.ports.items():
            marker = {PortKind.OPERAND: "o", PortKind.TRIGGER: "T",
                      PortKind.RESULT: "r", PortKind.REGISTER: "="}[port.kind]
            ports.append(f"{name}[{marker}]")
        latency = getattr(fu, "latency", 1)
        lines.append(f"  {fu.name:<6} ({fu.kind}, latency {latency}): "
                     + ", ".join(ports))
    return "\n".join(lines) + "\n"


def to_dot(machine: RouterMachine) -> str:
    """Graphviz DOT of the instance, in the style of the paper's Fig. 2."""
    processor = machine.processor
    lines = [
        "digraph taco {",
        "  rankdir=TB;",
        "  node [shape=box, fontname=Helvetica];",
        '  label="TACO: ' + machine.config.describe() + '";',
    ]
    for i in range(processor.bus_count):
        lines.append(f'  bus{i} [shape=record, style=filled, '
                     f'fillcolor=lightgrey, label="bus {i}"];')
    for fu in _sorted_units(processor):
        shape = "box3d" if fu.kind in ("mmu", "rtu", "ippu", "oppu") \
            else "box"
        lines.append(f'  {fu.name} [shape={shape}, '
                     f'label="{fu.name}\\n({fu.kind})"];')
        for i in sorted(processor.interconnect.reachable(fu.name)):
            lines.append(f"  {fu.name} -> bus{i} [dir=both, arrowsize=0.5];")
    lines.append('  dmem [shape=cylinder, label="data\\nmemory"];')
    lines.append("  mmu0 -> dmem;")
    lines.append("  rtu0 -> dmem;")
    for card in machine.line_cards:
        lines.append(f'  card{card.index} [shape=component, '
                     f'label="line card {card.index}"];')
        lines.append(f"  card{card.index} -> ippu0;")
        lines.append(f"  oppu0 -> card{card.index};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def architecture_manifest(machine: RouterMachine) -> Dict[str, object]:
    """Machine-readable instance description (for downstream generators)."""
    processor = machine.processor
    units = []
    for fu in _sorted_units(processor):
        units.append({
            "name": fu.name,
            "kind": fu.kind,
            "latency": getattr(fu, "latency", 1),
            "pipelined": getattr(fu, "pipelined", True),
            "ports": {name: port.kind.value
                      for name, port in fu.ports.items()},
            "buses": sorted(processor.interconnect.reachable(fu.name)),
        })
    return {
        "configuration": machine.config.label(),
        "table_kind": machine.config.table_kind,
        "bus_count": processor.bus_count,
        "bus_width_bits": 32,
        "data_memory_words": len(machine.memory),
        "line_cards": len(machine.line_cards),
        "functional_units": units,
    }
