"""Rendering for hazard diagnostics aggregated across runs."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.dse.evaluator import EvaluationResult


def aggregate_hazard_counts(results: Iterable[EvaluationResult]
                            ) -> Dict[str, int]:
    """Sum hazard occurrences over results that carry a hazard report."""
    counts: Dict[str, int] = {}
    for result in results:
        if result.run is None or result.run.hazard_report is None:
            continue
        for kind, count in result.run.hazard_report.by_kind().items():
            counts[kind] = counts.get(kind, 0) + count
    return counts


def render_hazard_summary(counts: Optional[Dict[str, int]]) -> str:
    if not counts:
        return "hazards: none detected"
    body = ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
    return f"hazards: {body}"
