"""Plain-text table rendering for benchmark and DSE reports."""

from __future__ import annotations

from typing import List, Sequence


def render_rows(headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}")
    cells: List[List[str]] = [[_format(value) for value in row]
                              for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells))
              if cells else len(headers[i]) for i in range(columns)]
    numeric = [all(_is_numeric(row[i]) for row in rows) if rows else False
               for i in range(columns)]

    def fmt_line(values: Sequence[str]) -> str:
        parts = []
        for i, value in enumerate(values):
            parts.append(value.rjust(widths[i]) if numeric[i]
                         else value.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [fmt_line(headers), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(row) for row in cells)
    return "\n".join(lines)


def render_sweep(name: str, x_label: str, series: dict) -> str:
    """Render a named parameter sweep: {series: [(x, y), ...]}."""
    xs = sorted({x for points in series.values() for x, _ in points})
    headers = [x_label] + list(series)
    lookup = {label: dict(points) for label, points in series.items()}
    rows = []
    for x in xs:
        rows.append([x] + [lookup[label].get(x, "") for label in series])
    return f"{name}\n{render_rows(headers, rows)}"


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0 or abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
