"""Module-utilisation reports.

"From the high level simulations we obtain performance data such as
clock cycle requirements and module utilization" (paper §1.1). This
module renders the per-FU activity of a simulation run — triggers per
cycle for each functional unit, plus per-bus occupancy — which is the
designer's signal for removing idle units or adding saturated ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.reporting.tables import render_rows
from repro.tta.processor import TacoProcessor
from repro.tta.stats import SimulationReport


def module_utilization(report: SimulationReport,
                       processor: Optional[TacoProcessor] = None
                       ) -> List[Tuple[str, float]]:
    """(fu name, triggers per cycle), busiest first; NC excluded.

    When *processor* is supplied, every one of its FUs gets a row — a
    never-triggered unit shows up at 0.0 instead of silently vanishing
    from the table (an idle unit is exactly the designer's signal for
    removing it, so it must be visible). Names present only in the
    report are still restricted to the processor's units, as before.
    """
    names = set(report.fu_triggers)
    if processor is not None:
        names.update(processor.fus)
    rows: List[Tuple[str, float]] = []
    for name in sorted(names):
        if name == "nc":
            continue
        if processor is not None and name not in processor.fus:
            continue
        rows.append((name, report.fu_utilization(name)))
    rows.sort(key=lambda item: (-item[1], item[0]))
    return rows


def saturated_units(report: SimulationReport,
                    threshold: float = 0.5) -> List[str]:
    """Units triggered in more than *threshold* of cycles: the ones the
    Y-chart iteration would consider duplicating."""
    return [name for name, util in module_utilization(report)
            if util >= threshold]


def idle_units(report: SimulationReport,
               processor: Optional[TacoProcessor] = None,
               threshold: float = 0.01) -> List[str]:
    """Units essentially untouched by the application: candidates for
    removal in a leaner instance."""
    names: Dict[str, int] = dict(report.fu_triggers)
    if processor is not None:
        for name in processor.fus:
            names.setdefault(name, 0)
    out = []
    cycles = max(report.cycles, 1)
    for name in sorted(names):
        if name == "nc":
            continue
        if names[name] / cycles < threshold:
            out.append(name)
    return out


def render_utilization(report: SimulationReport,
                       processor: Optional[TacoProcessor] = None) -> str:
    """Text report of bus and module utilisation."""
    rows = [[name, round(util * 100, 1)]
            for name, util in module_utilization(report, processor)]
    table = render_rows(["module", "triggers/cycle %"], rows)
    buses = ", ".join(f"bus {i}: {u * 100:.0f}%"
                      for i, u in enumerate(report.per_bus_utilization()))
    return (f"cycles: {report.cycles}; transport network: {buses} "
            f"(overall {report.bus_utilization * 100:.0f}%)\n{table}")
