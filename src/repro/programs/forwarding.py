"""TACO forwarding programs for the IPv6 router (paper §3–4).

This module generates, per architecture instance, the application code the
paper simulates: receive a datagram pointer from the ippu, validate the
IPv6 header, find the longest-prefix match with the configured routing
table implementation, decrement the hop limit, and hand the datagram to
the oppu. "The application code needs to be tuned for each instance
separately" (§2): the generator specialises the search code to the number
of parallel search-FU sets (matcher/counter/comparator triples) and lets
the bus scheduler pack the moves onto the configured bus count.

Search strategies
-----------------
* **sequential** — scan the entries (kept sorted by descending prefix
  length, so the first hit is the longest match). Per entry the first
  address word is matched under its mask; only on a first-word hit are the
  remaining three words checked. With *S* FU sets the scan is strided: set
  *s* checks entries ``s, s+S, s+2S, ...`` and set priority (lowest strand
  first) preserves the longest-match-first order within each window.
* **balanced-tree** — the floor-plus-enclosing-chain search over the AVL
  node image the RTU materialises (see :mod:`repro.tta.fus.rtu`). Children
  are prefetched while the 128-bit compare is still deciding, and the
  direction is applied by predicated (guarded) moves.
* **cam** — load the four destination words into the RTU and trigger the
  hardware search; wait out its wall-clock latency.

Register map (GPR file, 16 registers):

====  ==============================================================
r0    datagram slot pointer
r1    datagram base word (slot + 2)
r2-5  destination address words 0..3
r6    resolved output interface
r7    entry/node address (search strand 0)
r8    strand-0 scratch / left-child prefetch
r9    strand-1 scratch / tree node index
r10   sequential end address / tree floor address
r11   header word 1 (payload length | next header | hop limit)
r12   strand-1 entry address
r13   strand-2 entry address
r14   strand-2 scratch
r15   scratch (header word 0, source word, right-child prefetch)
====  ==============================================================
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.asm.ir import IrProgram, ProgramBuilder
from repro.dse.config import HARDWARE_SEARCH_KINDS
from repro.errors import ProgramError
from repro.programs.machine import RouterMachine
from repro.tta.fus.rtu import (
    NIL_INDEX,
    OFF_ENCLOSING,
    OFF_INTERFACE,
    OFF_LEFT,
    OFF_RIGHT,
)
from repro.tta.memory import ProgramMemory
from repro.tta.ports import Guard, PortRef

P = PortRef

MODE_BENCH = "bench"
MODE_ROUTER = "router"

_STRAND_ADDR = ["r7", "r12", "r13"]
_STRAND_SCRATCH = ["r8", "r9", "r14"]


class ForwardingProgramFactory:
    """Generates the per-configuration forwarding program."""

    def __init__(self, machine: RouterMachine, mode: str = MODE_BENCH):
        if mode not in (MODE_BENCH, MODE_ROUTER):
            raise ProgramError(f"unknown mode {mode!r}")
        self.machine = machine
        self.config = machine.config
        self.mode = mode
        self.strands = (self.config.search_fu_sets
                        if self.config.table_kind not in HARDWARE_SEARCH_KINDS
                        else 1)
        if self.strands > 3:
            self.strands = 3  # register map supports up to three strands

    # -- public -------------------------------------------------------------------

    def build_ir(self) -> IrProgram:
        builder = ProgramBuilder()
        self._emit_wait(builder)
        self._emit_receive(builder)
        self._emit_validation(builder)
        if self.config.table_kind in HARDWARE_SEARCH_KINDS:
            # CAM, multibit-trie and Bloom all trigger the RTU's search
            # engine with the same four-word handshake; only the result
            # latency differs, and that is the RTU's to honour.
            self._emit_cam_search(builder)
        elif self.config.table_kind == "sequential":
            self._emit_sequential_search(builder)
        else:
            self._emit_tree_search(builder)
        self._emit_found(builder)
        self._emit_drop(builder)
        return builder.build()

    def assemble(self) -> ProgramMemory:
        # The generator emits explicitly ordered moves; the optimiser's
        # block-local passes are safe on top of them.
        return assemble(self.build_ir(), self.machine.processor,
                        optimize_code=False)

    # -- common sections --------------------------------------------------------------

    def _emit_wait(self, b: ProgramBuilder) -> None:
        # Boot: spin until the ippu DMA admits the first datagram. Without
        # this, benchmark mode would halt in the cycle or two before the
        # autonomous input engine raises its pending signal.
        b.block("boot")
        b.jump("boot", guard=Guard("ippu0", negate=True))
        b.block("wait")
        b.jump("got", guard=Guard("ippu0"))
        if self.mode == MODE_ROUTER:
            b.jump("wait")
        else:
            # Input drained. The ippu admits one datagram per cycle while
            # forwarding takes tens of cycles, so an empty queue here means
            # the whole offered batch has been processed.
            b.halt()

    def _emit_receive(self, b: ProgramBuilder) -> None:
        b.block("got")
        b.move(0, P("ippu0", "t_pop"))
        b.move(P("ippu0", "r_ptr"), P("gpr", "r0"))
        # base = ptr + 2 (skip the slot header words)
        b.move(2, P("cnt0", "o"))
        b.move(P("gpr", "r0"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("gpr", "r1"))

    def _emit_validation(self, b: ProgramBuilder) -> None:
        """Load the header words and run the §3 validity checks."""
        b.block("header")
        # header word 0 (version | traffic class | flow label)
        b.move(P("gpr", "r1"), P("mmu0", "t_read"))
        b.move(1, P("cnt0", "o"))
        b.move(P("gpr", "r1"), P("cnt0", "t_add"))       # base+1
        b.move(P("mmu0", "r"), P("gpr", "r15"))
        # header word 1 (payload length | next header | hop limit)
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("cnt0", "r"), P("cnt0", "t_inc"))       # base+2
        b.move(P("mmu0", "r"), P("gpr", "r11"))
        # source address word 0 (for the multicast-source check)
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(4, P("cnt0", "o"))
        b.move(P("cnt0", "r"), P("cnt0", "t_add"))       # base+6
        b.move(P("mmu0", "r"), P("gpr", "r9"))
        # destination address words 0..3 -> r2..r5
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("cnt0", "r"), P("cnt0", "t_inc"))       # base+7
        b.move(P("mmu0", "r"), P("gpr", "r2"))
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("cnt0", "r"), P("cnt0", "t_inc"))       # base+8
        b.move(P("mmu0", "r"), P("gpr", "r3"))
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("cnt0", "r"), P("cnt0", "t_inc"))       # base+9
        b.move(P("mmu0", "r"), P("gpr", "r4"))
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("mmu0", "r"), P("gpr", "r5"))
        # version == 6
        b.move(0xF0000000, P("mat0", "o_mask"))
        b.move(0x60000000, P("mat0", "o_ref"))
        b.move(P("gpr", "r15"), P("mat0", "t"))
        b.jump("drop", guard=Guard("mat0", negate=True))
        # hop limit > 1
        b.move(0xFF, P("msk0", "o_val"))
        b.move(P("gpr", "r11"), P("msk0", "t_and"))
        b.move(1, P("cmp0", "o"))
        b.move(P("msk0", "r"), P("cmp0", "t_gt"))
        b.jump("drop", guard=Guard("cmp0", negate=True))
        # a hop-by-hop options header (next header 0) must be examined by
        # every router: punt it to the slow path ("the IP header can be
        # accompanied by a variable number of extension headers that also
        # have to be taken into consideration", §3)
        b.move(0x0000FF00, P("mat0", "o_mask"))
        b.move(0, P("mat0", "o_ref"))
        b.move(P("gpr", "r11"), P("mat0", "t"))
        b.jump("punt", guard=Guard("mat0"))
        # source must not be multicast (ff00::/8)
        b.move(0xFF000000, P("mat0", "o_mask"))
        b.move(0xFF000000, P("mat0", "o_ref"))
        b.move(P("gpr", "r9"), P("mat0", "t"))
        b.jump("drop", guard=Guard("mat0"))
        # multicast destination is control-plane traffic (RIPng arrives on
        # ff02::9): punt the whole datagram to the slow path
        b.move(P("gpr", "r2"), P("mat0", "t"))
        b.jump("punt", guard=Guard("mat0"))

    def _emit_found(self, b: ProgramBuilder) -> None:
        b.block("found")
        # store the decremented hop limit: header word 1 is at base+1 and
        # hop limit >= 2 here, so word1 - 1 never borrows out of the byte
        b.move(1, P("cnt0", "o"))
        b.move(P("gpr", "r1"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("mmu0", "o_addr"))
        b.move(P("gpr", "r11"), P("cnt0", "t_dec"))
        b.move(P("cnt0", "r"), P("mmu0", "t_write"))
        # hand over to the oppu
        b.move(P("gpr", "r0"), P("oppu0", "o_ptr"))
        b.move(P("gpr", "r6"), P("oppu0", "t_send"))
        b.jump("wait")

    def _emit_drop(self, b: ProgramBuilder) -> None:
        b.block("drop")
        b.move(P("gpr", "r0"), P("oppu0", "o_ptr"))
        b.move(0, P("oppu0", "t_drop"))
        b.jump("wait")
        b.block("punt")
        b.move(P("gpr", "r0"), P("oppu0", "o_ptr"))
        b.move(0, P("oppu0", "t_punt"))
        b.jump("wait")

    # -- CAM search ---------------------------------------------------------------------

    def _emit_cam_search(self, b: ProgramBuilder) -> None:
        b.block("search")
        b.move(P("gpr", "r2"), P("rtu0", "o_a0"))
        b.move(P("gpr", "r3"), P("rtu0", "o_a1"))
        b.move(P("gpr", "r4"), P("rtu0", "o_a2"))
        b.move(P("gpr", "r5"), P("rtu0", "t_a3"))
        b.jump("drop", guard=Guard("rtu0", negate=True))
        b.move(P("rtu0", "r_iface"), P("gpr", "r6"))

    # -- sequential search ------------------------------------------------------------------

    def _emit_sequential_search(self, b: ProgramBuilder) -> None:
        if self.strands == 1 and self.config.bus_count >= 2:
            self._emit_sequential_search_unrolled(b)
            return
        strands = self.strands
        b.block("search")
        b.move(P("rtu0", "r_base"), P("gpr", "r7"))
        # end = base + size * 16
        b.move(4, P("shf0", "o"))
        b.move(P("rtu0", "r_size"), P("shf0", "t_sll"))
        b.move(P("rtu0", "r_base"), P("cnt0", "o"))
        b.move(P("shf0", "r"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("gpr", "r10"))
        b.move(P("gpr", "r10"), P("cmp0", "o"))
        for s in range(strands):
            b.move(P("gpr", "r2"), P(f"mat{s}", "o_ref"))
        for s in range(1, strands):
            b.move(16 * s, P(f"cnt{s}", "o"))
            b.move(P("gpr", "r7"), P(f"cnt{s}", "t_add"))
            b.move(P(f"cnt{s}", "r"), P("gpr", _STRAND_ADDR[s]))

        b.block("seq_loop")
        for s in range(strands):
            addr = _STRAND_ADDR[s]
            scratch = _STRAND_SCRATCH[s]
            b.move(P("gpr", addr), P("mmu0", "t_read"))          # net word 0
            b.move(4, P(f"cnt{s}", "o"))
            b.move(P("gpr", addr), P(f"cnt{s}", "t_add"))        # a+4
            b.move(P("mmu0", "r"), P("gpr", scratch))
            b.move(P(f"cnt{s}", "r"), P("mmu0", "t_read"))       # mask word 0
            b.move(P("mmu0", "r"), P(f"mat{s}", "o_mask"))
            b.move(P("gpr", scratch), P(f"mat{s}", "t"))
        # strand 0's priority check rides at the tail of the loop block;
        # the later strands need their own blocks as full-check resume
        # points (lowest strand first preserves longest-match priority)
        b.jump("full0", guard=Guard("mat0"))
        for s in range(1, strands):
            b.block(f"check{s}")
            b.jump(f"full{s}", guard=Guard(f"mat{s}"))

        b.block("seq_advance")
        stride = 16 * strands
        for s in range(strands):
            b.move(stride, P(f"cnt{s}", "o"))
            b.move(P("gpr", _STRAND_ADDR[s]), P(f"cnt{s}", "t_add"))
            b.move(P(f"cnt{s}", "r"), P("gpr", _STRAND_ADDR[s]))
        b.move(P("cnt0", "r"), P("cmp0", "t_lt"))  # strand-0 address < end?
        b.jump("seq_loop", guard=Guard("cmp0"))
        b.jump("drop")  # scanned everything, no match (no default route)

        for s in range(strands):
            self._emit_sequential_full_check(b, s)

    def _emit_sequential_full_check(self, b: ProgramBuilder, s: int) -> None:
        """Verify address words 1..3 of strand *s*'s candidate entry."""
        resume = f"check{s + 1}" if s + 1 < self.strands else "seq_advance"
        self._emit_full_check(b, label=f"full{s}", cnt=f"cnt{s}",
                              mat=f"mat{s}", scratch=_STRAND_SCRATCH[s],
                              addr_reg=_STRAND_ADDR[s], addr_offset=0,
                              resume=resume)

    def _emit_full_check(self, b: ProgramBuilder, label: str, cnt: str,
                         mat: str, scratch: str, addr_reg: str,
                         addr_offset: int, resume: str) -> None:
        """Full 128-bit match of the entry at ``addr_reg + addr_offset``.

        The word-0 check already passed; verify words 1..3 against their
        masks, loading the output interface into r6 on success (-> found)
        and restoring the matcher's word-0 reference on mismatch
        (-> *resume*).
        """
        b.block(label)
        b.move(addr_offset + 4, P(cnt, "o"))
        b.move(P("gpr", addr_reg), P(cnt, "t_add"))          # a+4
        b.move(3, P(cnt, "o"))
        b.move(P(cnt, "r"), P(cnt, "t_sub"))                 # a+1
        for k in range(1, 4):
            b.move(P(cnt, "r"), P("mmu0", "t_read"))         # net word k
            b.move(4, P(cnt, "o"))
            b.move(P(cnt, "r"), P(cnt, "t_add"))             # a+k+4
            b.move(P("mmu0", "r"), P("gpr", scratch))
            b.move(P(cnt, "r"), P("mmu0", "t_read"))         # mask word k
            b.move(P("gpr", f"r{2 + k}"), P(mat, "o_ref"))
            b.move(P("mmu0", "r"), P(mat, "o_mask"))
            b.move(P("gpr", scratch), P(mat, "t"))
            b.jump(f"{label}_mm{k}", guard=Guard(mat, negate=True))
            if k < 3:
                b.move(3, P(cnt, "o"))
                b.move(P(cnt, "r"), P(cnt, "t_sub"))         # a+k+1
        # all four words matched: interface = mem[a + 8]
        b.move(1, P(cnt, "o"))
        b.move(P(cnt, "r"), P(cnt, "t_add"))                 # a+8 (from a+7)
        b.move(P(cnt, "r"), P("mmu0", "t_read"))
        b.move(P("mmu0", "r"), P("gpr", "r6"))
        b.jump("found")
        for k in range(1, 4):
            b.block(f"{label}_mm{k}")
            b.move(P("gpr", "r2"), P(mat, "o_ref"))          # restore word-0 ref
            b.jump(resume)

    def _emit_sequential_search_unrolled(self, b: ProgramBuilder) -> None:
        """Single FU set on >= 2 buses: scan two entries per iteration.

        With one matcher/counter pair the scan is latency-bound, not
        resource-bound; unrolling lets entry B's loads overlap entry A's
        match ("the application code needs to be tuned for each instance
        separately", §2). Entry A sits at r7, entry B at r7 + 16; B's
        word-0 operands are staged through r15/r9 so the single matcher
        can check A first and B immediately after.
        """
        b.block("search")
        b.move(P("rtu0", "r_base"), P("gpr", "r7"))
        b.move(4, P("shf0", "o"))
        b.move(P("rtu0", "r_size"), P("shf0", "t_sll"))
        b.move(P("rtu0", "r_base"), P("cnt0", "o"))
        b.move(P("shf0", "r"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("gpr", "r10"))
        b.move(P("gpr", "r10"), P("cmp0", "o"))
        b.move(P("gpr", "r2"), P("mat0", "o_ref"))

        b.block("seq_loop")
        b.move(P("gpr", "r7"), P("mmu0", "t_read"))       # net0 A
        b.move(4, P("cnt0", "o"))
        b.move(P("gpr", "r7"), P("cnt0", "t_add"))        # a+4
        b.move(P("mmu0", "r"), P("gpr", "r8"))            # net0 A
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))       # mask0 A
        b.move(12, P("cnt0", "o"))
        b.move(P("cnt0", "r"), P("cnt0", "t_add"))        # a+16 (entry B)
        b.move(P("mmu0", "r"), P("mat0", "o_mask"))
        b.move(P("gpr", "r8"), P("mat0", "t"))            # match A word 0
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))       # net0 B
        b.move(4, P("cnt0", "o"))
        b.move(P("cnt0", "r"), P("cnt0", "t_add"))        # a+20
        b.move(P("mmu0", "r"), P("gpr", "r15"))           # net0 B
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))       # mask0 B
        b.move(12, P("cnt0", "o"))
        b.move(P("cnt0", "r"), P("cnt0", "t_add"))        # a+32: next window
        b.move(P("mmu0", "r"), P("gpr", "r9"))            # mask0 B
        b.move(P("cnt0", "r"), P("gpr", "r14"))           # next window addr
        b.jump("full_a", guard=Guard("mat0"))

        b.block("body_b")
        b.move(P("gpr", "r9"), P("mat0", "o_mask"))
        b.move(P("gpr", "r15"), P("mat0", "t"))           # match B word 0
        b.move(P("gpr", "r14"), P("cmp0", "t_lt"))        # next < end?
        b.jump("full_b", guard=Guard("mat0"))

        b.block("seq_wrap")
        b.move(P("gpr", "r14"), P("gpr", "r7"))
        b.jump("seq_loop", guard=Guard("cmp0"))
        b.jump("drop")

        # A full-match mismatch resumes at B's pending word-0 check; B's
        # resumes at the window wrap (the loop condition already fired).
        self._emit_full_check(b, label="full_a", cnt="cnt0", mat="mat0",
                              scratch="r8", addr_reg="r7", addr_offset=0,
                              resume="body_b")
        self._emit_full_check(b, label="full_b", cnt="cnt0", mat="mat0",
                              scratch="r8", addr_reg="r7", addr_offset=16,
                              resume="seq_wrap")

    # -- balanced-tree search ------------------------------------------------------------------

    def _emit_tree_search(self, b: ProgramBuilder) -> None:
        # Role allocation: with extra FU sets, dedicate units to roles so
        # operand latches stay constant across iterations (no reload churn)
        # and address arithmetic overlaps the compares.
        multi = self.strands >= 2
        cmp_nil = "cmp1" if multi else "cmp0"   # holds the NIL constant
        cnt_child = "cnt1" if multi else "cnt0"  # child-pointer addresses

        b.block("search")
        b.move(P("rtu0", "r_root"), P("gpr", "r9"))
        b.move(0, P("gpr", "r10"))              # floor address (0 = none)
        b.move(4, P("shf0", "o"))               # node index -> word offset
        b.move(NIL_INDEX, P(cmp_nil, "o"))

        b.block("tree_loop")
        b.move(P("gpr", "r9"), P(cmp_nil, "t_eq"))
        b.jump("tree_chain", guard=Guard(cmp_nil))
        b.block("tree_node")
        # a = base + index * 16
        b.move(P("gpr", "r9"), P("shf0", "t_sll"))
        b.move(P("rtu0", "r_base"), P("cnt0", "o"))
        b.move(P("shf0", "r"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("gpr", "r7"))
        # word 0 of the node network feeds the compare immediately
        b.move(P("gpr", "r7"), P("mmu0", "t_read"))
        # ... while the child pointers are prefetched in parallel
        b.move(OFF_LEFT, P(cnt_child, "o"))
        b.move(P("gpr", "r7"), P(cnt_child, "t_add"))
        b.move(P("mmu0", "r"), P("cmp0", "o"))               # net word 0
        b.move(P(cnt_child, "r"), P("mmu0", "t_read"))       # left index
        b.move(P(cnt_child, "r"), P(cnt_child, "t_inc"))     # a + OFF_RIGHT
        b.move(P("gpr", "r2"), P("cmp0", "t_eq"))
        b.move(P("mmu0", "r"), P("gpr", "r8"))
        b.move(P(cnt_child, "r"), P("mmu0", "t_read"))       # right index
        b.jump("tree_lt0", guard=Guard("cmp0", negate=True))
        b.move(P("mmu0", "r"), P("gpr", "r15"))
        # word 0 equal (rare with random tables): compare words 1..3
        for k in range(1, 4):
            b.move(k, P("cnt0", "o"))
            b.move(P("gpr", "r7"), P("cnt0", "t_add"))
            b.move(P("cnt0", "r"), P("mmu0", "t_read"))
            b.move(P("mmu0", "r"), P("cmp0", "o"))
            b.move(P("gpr", f"r{2 + k}"), P("cmp0", "t_eq"))
            b.jump(f"tree_lt{k}", guard=Guard("cmp0", negate=True))
        b.jump("tree_equal")
        for k in range(4):
            b.block(f"tree_lt{k}")
            if k == 0:
                # the right-child load was still in flight at the branch
                b.move(P("mmu0", "r"), P("gpr", "r15"))
            b.move(P("gpr", f"r{2 + k}"), P("cmp0", "t_lt"))
            b.jump("tree_select")

        b.block("tree_select")
        # cmp0 bit == (dest word < net word) at the deciding position
        b.move(P("gpr", "r8"), P("gpr", "r9"), guard=Guard("cmp0"))
        b.move(P("gpr", "r15"), P("gpr", "r9"), guard=Guard("cmp0", negate=True))
        b.move(P("gpr", "r7"), P("gpr", "r10"), guard=Guard("cmp0", negate=True))
        if not multi:
            b.move(NIL_INDEX, P(cmp_nil, "o"))  # restore the NIL constant
        b.jump("tree_loop")

        b.block("tree_equal")  # networks identical: floor = node, go right
        b.move(P("gpr", "r15"), P("gpr", "r9"))
        b.move(P("gpr", "r7"), P("gpr", "r10"))
        if not multi:
            b.move(NIL_INDEX, P(cmp_nil, "o"))
        b.jump("tree_loop")

        self._emit_tree_chain(b)

    def _emit_tree_chain(self, b: ProgramBuilder) -> None:
        """Walk the enclosing chain from the floor node (r10)."""
        b.block("tree_chain")
        b.move(0, P("cmp0", "o"))
        b.move(P("gpr", "r10"), P("cmp0", "t_eq"))
        b.jump("drop", guard=Guard("cmp0"))              # no floor: no route
        b.block("tree_contain")
        # containment check: ((dest ^ net_k) & mask_k) == 0 for k = 0..3
        b.move(0, P("cnt0", "o"))
        b.move(P("gpr", "r10"), P("cnt0", "t_add"))      # f + 0
        for k in range(4):
            b.move(P("cnt0", "r"), P("mmu0", "t_read"))  # net word k
            b.move(4, P("cnt0", "o"))
            b.move(P("cnt0", "r"), P("cnt0", "t_add"))   # f+k+4
            b.move(P("mmu0", "r"), P("gpr", "r8"))
            b.move(P("cnt0", "r"), P("mmu0", "t_read"))  # mask word k
            b.move(P("gpr", f"r{2 + k}"), P("mat0", "o_ref"))
            b.move(P("mmu0", "r"), P("mat0", "o_mask"))
            b.move(P("gpr", "r8"), P("mat0", "t"))
            b.jump("tree_chain_next", guard=Guard("mat0", negate=True))
            if k < 3:
                b.move(3, P("cnt0", "o"))
                b.move(P("cnt0", "r"), P("cnt0", "t_sub"))  # f+k+1
        # contained: interface = mem[f + 8]
        b.move(1, P("cnt0", "o"))
        b.move(P("cnt0", "r"), P("cnt0", "t_add"))       # f+8 (from f+7)
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("mmu0", "r"), P("gpr", "r6"))
        b.jump("found")

        b.block("tree_chain_next")
        b.move(OFF_ENCLOSING, P("cnt0", "o"))
        b.move(P("gpr", "r10"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        b.move(P("mmu0", "r"), P("gpr", "r9"))
        b.move(NIL_INDEX, P("cmp0", "o"))
        b.move(P("gpr", "r9"), P("cmp0", "t_eq"))
        b.jump("drop", guard=Guard("cmp0"))              # end of chain
        b.move(P("gpr", "r9"), P("shf0", "t_sll"))       # shf0.o is still 4
        b.move(P("rtu0", "r_base"), P("cnt0", "o"))
        b.move(P("shf0", "r"), P("cnt0", "t_add"))
        b.move(P("cnt0", "r"), P("gpr", "r10"))
        b.jump("tree_chain")


def build_forwarding_program(machine: RouterMachine,
                             mode: str = MODE_BENCH) -> ProgramMemory:
    """Generate and assemble the forwarding program for *machine*."""
    return ForwardingProgramFactory(machine, mode=mode).assemble()
