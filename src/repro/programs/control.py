"""Control-plane TACO program: UDP checksum verification for RIPng.

The router terminates RIPng traffic, and UDP over IPv6 carries a
mandatory checksum over a pseudo-header (RFC 2460 §8.1) — this is what
the Checksum functional unit in the paper's architecture (Fig. 2) is
for. The program generated here verifies a received datagram entirely on
the processor: it folds the pseudo-header (source, destination,
upper-layer length, protocol) and every payload word through the
Checksum unit and leaves the verdict in a register. The slow path then
only parses RTEs from datagrams that already passed.

Assumes the datagram has no extension headers (RIPng datagrams don't),
so the UDP length equals the IPv6 payload length.

Register results: r5 = 1 if the checksum verified else 0; r6 = the final
ones'-complement accumulator (0xFFFF when valid).
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.asm.ir import ProgramBuilder
from repro.programs.machine import RouterMachine
from repro.tta.memory import ProgramMemory
from repro.tta.ports import Guard, PortRef
from repro.tta.simulator import simulate

P = PortRef

#: LIU word the program reads the datagram slot pointer from
SLOT_POINTER_INDEX = 0

PROTO_UDP = 17


def build_checksum_program(machine: RouterMachine) -> ProgramMemory:
    """Generate the UDP-verification program for *machine*."""
    b = ProgramBuilder()

    b.block("start")
    # slot pointer from the local info unit; datagram base = ptr + 2
    b.move(SLOT_POINTER_INDEX, P("liu0", "t_get"))
    b.move(P("liu0", "r"), P("gpr", "r0"))
    b.move(2, P("cnt0", "o"))
    b.move(P("gpr", "r0"), P("cnt0", "t_add"))
    b.move(P("cnt0", "r"), P("gpr", "r1"))            # base
    # header word 1: payload length | next header | hop limit
    b.move(1, P("cnt0", "o"))
    b.move(P("gpr", "r1"), P("cnt0", "t_add"))        # base+1
    b.move(P("cnt0", "r"), P("mmu0", "t_read"))
    b.move(P("mmu0", "r"), P("gpr", "r11"))
    b.move(16, P("shf0", "o"))
    b.move(P("gpr", "r11"), P("shf0", "t_srl"))       # upper-layer length
    b.move(P("shf0", "r"), P("gpr", "r10"))
    b.move(0, P("cks0", "t_clear"))

    b.block("pseudo_header")
    # source + destination addresses: words base+2 .. base+9
    b.move(2, P("cnt0", "o"))
    b.move(P("gpr", "r1"), P("cnt0", "t_add"))        # base+2
    for i in range(8):
        b.move(P("cnt0", "r"), P("mmu0", "t_read"))
        if i < 7:
            b.move(P("cnt0", "r"), P("cnt0", "t_inc"))
        b.move(P("mmu0", "r"), P("cks0", "t_add"))
    # upper-layer length (32-bit) and protocol fields of the pseudo-header
    b.move(P("gpr", "r10"), P("cks0", "t_add"))
    b.move(PROTO_UDP, P("cks0", "t_add"))

    b.block("payload_setup")
    # word count = (length + 3) >> 2; loop end = base + 10 + count
    b.move(3, P("cnt0", "o"))
    b.move(P("gpr", "r10"), P("cnt0", "t_add"))
    b.move(2, P("shf0", "o"))
    b.move(P("cnt0", "r"), P("shf0", "t_srl"))        # word count
    b.move(10, P("cnt0", "o"))
    b.move(P("gpr", "r1"), P("cnt0", "t_add"))        # base+10 (payload)
    b.move(P("cnt0", "r"), P("gpr", "r7"))            # cursor
    b.move(P("shf0", "r"), P("cnt0", "o"))
    b.move(P("gpr", "r7"), P("cnt0", "t_add"))        # end address
    b.move(P("cnt0", "r"), P("cmp0", "o"))
    # zero-length payload: skip the loop entirely
    b.move(P("gpr", "r7"), P("cmp0", "t_lt"))
    b.jump("verdict", guard=Guard("cmp0", negate=True))

    b.block("payload_loop")
    b.move(P("gpr", "r7"), P("mmu0", "t_read"))
    b.move(1, P("cnt0", "o"))
    b.move(P("gpr", "r7"), P("cnt0", "t_add"))
    b.move(P("cnt0", "r"), P("gpr", "r7"))
    b.move(P("mmu0", "r"), P("cks0", "t_add"))
    b.move(P("cnt0", "r"), P("cmp0", "t_lt"))
    b.jump("payload_loop", guard=Guard("cmp0"))

    b.block("verdict")
    # the Checksum unit raises its NC bit when the accumulator is 0xFFFF
    b.move(P("cks0", "r_sum"), P("gpr", "r6"))
    b.move(0, P("gpr", "r5"))
    b.move(1, P("gpr", "r5"), guard=Guard("cks0"))
    b.halt()

    return assemble(b.build(), machine.processor, optimize_code=False)


def verify_udp_checksum(machine: RouterMachine, slot_pointer: int) -> "tuple[bool, int, int]":
    """Run the verification program on the datagram at *slot_pointer*.

    Returns ``(valid, accumulator, cycles)``.
    """
    program = build_checksum_program(machine)
    machine.processor.reset()
    machine.processor.fu("liu0").configure([slot_pointer])
    report = simulate(machine.processor, program)
    gpr = machine.processor.fu("gpr")
    return (bool(gpr.ports["r5"].value), gpr.ports["r6"].value,
            report.cycles)
