"""TACO application programs: the tuned per-instance forwarding code."""

from repro.programs.cycle_model import (
    FittedCycleModel,
    crossover_entries,
    fit_cycle_model,
    fit_paper_models,
    measure_cycles,
)
from repro.programs.forwarding import (
    ForwardingProgramFactory,
    MODE_BENCH,
    MODE_ROUTER,
    build_forwarding_program,
)
from repro.programs.machine import RouterMachine, build_machine
from repro.programs.runner import (
    ForwardingRunResult,
    RunOptions,
    expected_forwarding,
    run_forwarding,
)

__all__ = [
    "FittedCycleModel", "crossover_entries", "fit_cycle_model",
    "fit_paper_models", "measure_cycles",
    "ForwardingProgramFactory", "MODE_BENCH", "MODE_ROUTER",
    "build_forwarding_program",
    "RouterMachine", "build_machine",
    "ForwardingRunResult", "RunOptions", "expected_forwarding",
    "run_forwarding",
]
