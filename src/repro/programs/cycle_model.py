"""Analytic cycle model: predict cycles-per-datagram without simulating.

The cycle-accurate simulator is the source of truth, but exhaustive
design-space sweeps and large table-size ablations want a cheap predictor.
The forwarding cost is structurally linear in the table-size term of the
search algorithm::

    cycles(n) = overhead + slope * f(n)

with ``f(n) = n`` for the sequential scan, ``f(n) = log2(n)`` for the
balanced tree, and ``f(n) = 1`` for the hardware-searched options (CAM,
multibit-trie, Bloom). :func:`fit_cycle_model` fits
the two coefficients per configuration from cycle-accurate runs at two
table sizes; tests assert the fitted model tracks fresh simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.dse.config import ArchitectureConfiguration, HARDWARE_SEARCH_KINDS
from repro.errors import EstimationError
from repro.programs.runner import run_forwarding
from repro.workload import generate_routes, worst_case_workload

DEFAULT_FIT_SIZES = (34, 100)
DEFAULT_PACKETS = 8


def _size_term(table_kind: str) -> Callable[[float], float]:
    if table_kind == "sequential":
        return lambda n: float(n)
    if table_kind == "balanced-tree":
        return lambda n: math.log2(max(n, 2))
    return lambda n: 1.0


@dataclass(frozen=True)
class FittedCycleModel:
    """cycles(n) = overhead + slope * f(n) for one configuration."""

    config: ArchitectureConfiguration
    overhead: float
    slope: float

    def predict(self, table_entries: int) -> float:
        if table_entries < 1:
            raise EstimationError(
                f"table size must be positive: {table_entries}")
        term = _size_term(self.config.table_kind)(table_entries)
        return self.overhead + self.slope * term

    def describe(self) -> str:
        kind = self.config.table_kind
        term = {"sequential": "n",
                "balanced-tree": "log2(n)"}.get(kind, "1")
        return (f"{self.config.describe()}: cycles(n) = "
                f"{self.overhead:.1f} + {self.slope:.2f} * {term}")


def measure_cycles(config: ArchitectureConfiguration, table_entries: int,
                   packets: int = DEFAULT_PACKETS,
                   seed: int = 2003) -> float:
    """Cycle-accurate worst-case cycles/packet at one table size."""
    routes = generate_routes(table_entries, seed=seed)
    workload = worst_case_workload(routes, packets, seed=seed + 7)
    result = run_forwarding(config, routes, workload)
    if not result.correct:
        raise EstimationError(
            f"functional mismatch while fitting {config.describe()}")
    return result.cycles_per_packet


def fit_cycle_model(config: ArchitectureConfiguration,
                    sizes: Tuple[int, int] = DEFAULT_FIT_SIZES,
                    packets: int = DEFAULT_PACKETS) -> FittedCycleModel:
    """Fit (overhead, slope) from simulations at two table sizes."""
    n1, n2 = sizes
    if n1 == n2:
        raise EstimationError("need two distinct table sizes to fit")
    term = _size_term(config.table_kind)
    c1 = measure_cycles(config, n1, packets=packets)
    c2 = measure_cycles(config, n2, packets=packets)
    t1, t2 = term(n1), term(n2)
    if config.table_kind in HARDWARE_SEARCH_KINDS:
        # constant model: slope absorbs the (fixed) search cost
        return FittedCycleModel(config=config, overhead=0.0,
                                slope=(c1 + c2) / 2.0)
    slope = (c2 - c1) / (t2 - t1)
    overhead = c1 - slope * t1
    if slope <= 0:
        raise EstimationError(
            f"non-positive slope fitting {config.describe()}: "
            f"{c1} @ {n1}, {c2} @ {n2}")
    return FittedCycleModel(config=config, overhead=max(overhead, 0.0),
                            slope=slope)


def fit_paper_models(kinds: Sequence[str] = ("sequential", "balanced-tree",
                                             "cam"),
                     sizes: Tuple[int, int] = DEFAULT_FIT_SIZES
                     ) -> Dict[str, FittedCycleModel]:
    """One fitted model per table kind at the 1-bus baseline config."""
    out: Dict[str, FittedCycleModel] = {}
    for kind in kinds:
        config = ArchitectureConfiguration(bus_count=1, table_kind=kind)
        out[kind] = fit_cycle_model(config, sizes=sizes)
    return out


def crossover_entries(seq_model: FittedCycleModel,
                      other_model: FittedCycleModel,
                      max_entries: int = 4096) -> Optional[int]:
    """Smallest table size where *other_model* beats the sequential scan."""
    for n in range(1, max_entries + 1):
        if other_model.predict(n) < seq_model.predict(n):
            return n
    return None
