"""Build a concrete TACO processor for an architecture configuration.

This is the counterpart of the paper's hardware design tool [14] that
generates the top-level model for a chosen configuration: given an
:class:`~repro.dse.config.ArchitectureConfiguration`, a routing table and
line cards, it instantiates the FU inventory of Fig. 2 and wires it to the
interconnection network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dse.config import ArchitectureConfiguration
from repro.router.linecard import LineCard
from repro.routing import make_table
from repro.routing.base import RoutingTable
from repro.routing.entry import RouteEntry
from repro.tta import DataMemory, Interconnect, TacoProcessor
from repro.tta.devices import SlotPool
from repro.tta.fu import RegisterFileUnit
from repro.tta.fus import (
    ChecksumUnit,
    Comparator,
    Counter,
    InputPreprocessingUnit,
    LocalInfoUnit,
    Masker,
    Matcher,
    MemoryManagementUnit,
    OutputPostprocessingUnit,
    RoutingTableUnit,
    Shifter,
)

DEFAULT_MEMORY_WORDS = 1 << 17
TABLE_BASE_WORD = 0x8000
SLOT_BASE_WORD = 0x100


@dataclass
class RouterMachine:
    """A configured processor plus its peripherals, ready to simulate."""

    config: ArchitectureConfiguration
    processor: TacoProcessor
    table: RoutingTable
    rtu: RoutingTableUnit
    ippu: InputPreprocessingUnit
    oppu: OutputPostprocessingUnit
    line_cards: List[LineCard]
    slots: SlotPool
    memory: DataMemory

    ripng: Optional["RipngEngine"] = None

    def load_routes(self, entries: Sequence[RouteEntry]) -> None:
        self.table.load(list(entries))
        self.rtu.refresh()

    def offered_load(self, interface: int, datagram: bytes) -> bool:
        return self.line_cards[interface].deliver(datagram)

    def transmitted(self, interface: int) -> List[bytes]:
        return self.line_cards[interface].transmitted

    # -- slow path (control plane) ---------------------------------------------------

    def attach_ripng(self,
                     interface_addresses: Sequence["Ipv6Address"],
                     **engine_options) -> "RipngEngine":
        """Attach a RIPng engine that consumes punted control datagrams.

        The TACO fast path punts multicast-destined datagrams (RIPng
        arrives on ff02::9) via the oppu; :meth:`process_punted` feeds
        them to this engine and re-materialises the RTU image after any
        table change — the paper's "builds and maintains its routing
        table" duty.
        """
        from repro.router.ripng_engine import RipngEngine
        self.ripng = RipngEngine(
            router_name="taco", table=self.table,
            interface_count=len(self.line_cards), **engine_options)
        self.interface_addresses = list(interface_addresses)
        return self.ripng

    def process_punted(self, now: float = 0.0) -> int:
        """Drain the oppu punt queue through the control plane.

        Returns the number of datagrams processed. Slots are released and
        the RTU memory image refreshed when the table changed.
        """
        from repro.ipv6.address import Ipv6Address as _Addr
        from repro.ipv6.header import PROTO_UDP as _UDP
        from repro.ipv6.packet import Ipv6Datagram as _Datagram
        from repro.ipv6.ripng import RIPNG_PORT as _PORT
        from repro.ipv6.udp import UdpDatagram as _Udp
        from repro.errors import Ipv6Error as _Error

        processed = 0
        table_before = len(self.table), self.table.stats.total_update_steps
        while self.oppu.punted:
            pointer = self.oppu.punted.popleft()
            interface = self.memory.load(pointer + 1)
            raw = self.slots.load_datagram(pointer)
            self.slots.release(pointer)
            processed += 1
            if self.ripng is None:
                continue
            try:
                datagram = _Datagram.from_bytes(raw)
                if datagram.upper_layer_protocol != _UDP:
                    continue
                udp = _Udp.from_bytes(datagram.payload,
                                      datagram.header.source,
                                      datagram.header.destination)
            except _Error:
                continue
            if udp.destination_port != _PORT:
                continue
            self.ripng.receive(udp.payload, sender=datagram.header.source,
                               interface=interface, now=now)
        table_after = len(self.table), self.table.stats.total_update_steps
        if processed and table_after != table_before:
            self.rtu.refresh()
        return processed


def build_machine(config: ArchitectureConfiguration,
                  line_card_count: int = 4,
                  table: Optional[RoutingTable] = None,
                  table_capacity: int = 100,
                  memory_words: int = DEFAULT_MEMORY_WORDS,
                  slot_count: int = 64,
                  slot_bytes: int = 2048,
                  connectivity: Optional[dict] = None) -> RouterMachine:
    """Instantiate the full router machine for *config*.

    *connectivity* optionally restricts which buses each FU's sockets
    reach (FU name -> frozenset of bus indices); absent FUs stay fully
    connected. The bus scheduler honours the restriction, so tuned
    programs still assemble — just onto fewer legal slots.
    """
    memory = DataMemory(memory_words)
    line_cards = [LineCard(i) for i in range(line_card_count)]
    slots = SlotPool(memory, base_word=SLOT_BASE_WORD,
                     slot_bytes=slot_bytes, slot_count=slot_count)
    if table is None:
        table = make_table(config.table_kind, capacity=table_capacity)
    elif table.kind != config.table_kind:
        raise ValueError(
            f"configuration expects a {config.table_kind} table, "
            f"got {table.kind}")

    if table.hardware_search and table.kind != "cam":
        # Trie/Bloom engines have a fixed pipeline depth the structure
        # itself reports; only the CAM's latency is clock-dependent.
        search_latency = table.search_latency_cycles()  # type: ignore[attr-defined]
    else:
        search_latency = config.cam_search_latency
    rtu = RoutingTableUnit("rtu0", table, memory, base_word=TABLE_BASE_WORD,
                           search_latency=search_latency)
    ippu = InputPreprocessingUnit("ippu0", line_cards, slots)
    oppu = OutputPostprocessingUnit("oppu0", line_cards, slots)
    units = [
        MemoryManagementUnit("mmu0", memory),
        rtu, ippu, oppu,
        LocalInfoUnit("liu0", words=[0] * 16),
        RegisterFileUnit("gpr", config.gpr_registers),
    ]
    units.extend(Matcher(f"mat{i}") for i in range(config.matchers))
    units.extend(Counter(f"cnt{i}") for i in range(config.counters))
    units.extend(Comparator(f"cmp{i}") for i in range(config.comparators))
    units.extend(Shifter(f"shf{i}") for i in range(config.shifters))
    units.extend(Masker(f"msk{i}") for i in range(config.maskers))
    units.extend(ChecksumUnit(f"cks{i}") for i in range(config.checksums))

    interconnect = Interconnect(bus_count=config.bus_count,
                                connectivity=connectivity or {})
    processor = TacoProcessor(interconnect, units, data_memory=memory)
    return RouterMachine(config=config, processor=processor, table=table,
                         rtu=rtu, ippu=ippu, oppu=oppu,
                         line_cards=line_cards, slots=slots, memory=memory)
