"""End-to-end forwarding measurement: simulate and verify a packet batch.

This is the reproduction of the paper's system-level simulation step: it
builds the architecture instance, generates the tuned program, pushes real
IPv6 datagrams through the line cards, runs the cycle-accurate simulator,
checks functional correctness against the golden (pure-Python) forwarding
semantics, and reports cycles-per-datagram plus utilisation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dse.config import ArchitectureConfiguration
from repro.errors import SimulationError
from repro.ipv6.address import Ipv6Address
from repro.ipv6.packet import validate_for_forwarding
from repro.programs.forwarding import MODE_BENCH, build_forwarding_program
from repro.programs.machine import RouterMachine, build_machine
from repro.routing import make_table
from repro.routing.entry import RouteEntry
from repro.tta.backends import create_simulator
from repro.tta.hazards import HazardDetector, HazardReport
from repro.tta.simulator import DEFAULT_RUN_MAX_CYCLES, Simulator
from repro.tta.stats import SimulationReport


@dataclass(frozen=True)
class RunOptions:
    """How one forwarding batch should be executed and observed.

    The one options object every evaluation path accepts — the runner,
    the DSE evaluator, :mod:`repro.api`, the campaign runners, and the
    CLI all thread it (or its fields) down to :func:`run_forwarding`.
    ``None`` fields mean "use the shared default": the backend resolves
    through :func:`repro.tta.backends.resolve_backend_name` and the
    cycle ceiling through
    :data:`repro.tta.simulator.DEFAULT_RUN_MAX_CYCLES`.
    """

    #: simulation engine name ("interpreter" | "compiled" | "auto");
    #: None = the registry default
    backend: Optional[str] = None
    #: cycle budget; None = DEFAULT_RUN_MAX_CYCLES
    max_cycles: Optional[int] = None
    #: cross-check line-card output against the golden forwarding model
    verify: bool = True
    #: attach the hazard detector (forces an interpreter fallback on the
    #: compiled backend)
    detect_hazards: bool = False
    #: called with the Simulator after hazard attachment, before run();
    #: the seam fault injectors and tracers use
    instrument: Optional[Callable[[Simulator], None]] = None
    #: replaces the default tuned program generator; the seam the
    #: conformance suite's program mutants use
    program_factory: Optional[Callable[["RouterMachine"], object]] = None

    def merged(self, **overrides) -> "RunOptions":
        """A copy with the non-None *overrides* applied."""
        changes = {key: value for key, value in overrides.items()
                   if value is not None}
        return replace(self, **changes) if changes else self

    @property
    def effective_max_cycles(self) -> int:
        return DEFAULT_RUN_MAX_CYCLES if self.max_cycles is None \
            else self.max_cycles


#: kwargs of the pre-RunOptions run_forwarding signature that now live on
#: the options object; still accepted, with a DeprecationWarning
_LEGACY_OPTION_KWARGS = ("detect_hazards", "instrument", "program_factory")


@dataclass
class ForwardingRunResult:
    """Outcome of one simulated forwarding batch."""

    config: ArchitectureConfiguration
    report: SimulationReport
    packets_offered: int
    packets_forwarded: int
    packets_dropped: int
    mismatches: List[str] = field(default_factory=list)
    #: the machine and program used, for post-run inspection (program
    #: store sizing, tracing, punt-queue processing)
    machine: Optional["RouterMachine"] = None
    program_length: int = 0
    #: populated when the run was made with ``detect_hazards=True``
    hazard_report: Optional[HazardReport] = None
    #: the backend that actually executed the run ("interpreter" even
    #: under backend="compiled" when a hook forced a fallback)
    backend: str = "interpreter"

    @property
    def cycles_per_packet(self) -> float:
        if self.packets_offered == 0:
            return 0.0
        return self.report.cycles / self.packets_offered

    @property
    def bus_utilization(self) -> float:
        return self.report.bus_utilization

    @property
    def correct(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        return (f"{self.config.describe()}: "
                f"{self.report.cycles} cycles for {self.packets_offered} "
                f"packets ({self.cycles_per_packet:.1f}/packet), "
                f"bus util {self.bus_utilization * 100:.0f}%, "
                f"{'OK' if self.correct else 'MISMATCHES'}")


def expected_forwarding(routes: Sequence[RouteEntry],
                        packets: Sequence[Tuple[int, bytes]],
                        ) -> List[Optional[Tuple[int, bytes]]]:
    """Golden behaviour: (output interface, rewritten bytes) or None=drop."""
    reference = make_table("sequential", capacity=max(len(routes), 1))
    reference.load(list(routes))
    expectations: List[Optional[Tuple[int, bytes]]] = []
    for _iface, raw in packets:
        if validate_for_forwarding(raw) is not None:
            expectations.append(None)
            continue
        if raw[6] == 0:  # hop-by-hop options: punted to the slow path
            expectations.append(None)
            continue
        destination = Ipv6Address.from_bytes(raw[24:40])
        if destination.is_multicast():
            expectations.append(None)  # punted to the control plane
            continue
        result = reference.lookup(destination)
        if result is None:
            expectations.append(None)
            continue
        rewritten = raw[:7] + bytes([raw[7] - 1]) + raw[8:]
        expectations.append((result.interface, rewritten))
    return expectations


def run_forwarding(config: ArchitectureConfiguration,
                   routes: Sequence[RouteEntry],
                   packets: Sequence[Tuple[int, bytes]],
                   machine: Optional[RouterMachine] = None,
                   options: Optional[RunOptions] = None,
                   max_cycles: Optional[int] = None,
                   verify: Optional[bool] = None,
                   backend: Optional[str] = None,
                   **legacy) -> ForwardingRunResult:
    """Simulate one batch of datagrams through a fresh machine.

    Execution and observation knobs travel on *options* (a
    :class:`RunOptions`); *max_cycles*, *verify* and *backend* stay
    first-class keyword shortcuts that override the options object when
    given. The pre-options ``detect_hazards=`` / ``instrument=`` /
    ``program_factory=`` keywords still work but emit a
    ``DeprecationWarning``.
    """
    if options is None:
        options = RunOptions()
    if legacy:
        unknown = [key for key in legacy if key not in _LEGACY_OPTION_KWARGS]
        if unknown:
            raise TypeError(
                f"run_forwarding() got unexpected keyword arguments "
                f"{sorted(unknown)}")
        warnings.warn(
            f"passing {sorted(legacy)} to run_forwarding() directly is "
            f"deprecated; put them on a RunOptions (options=...) instead",
            DeprecationWarning, stacklevel=2)
        options = options.merged(**legacy)
    options = options.merged(max_cycles=max_cycles, verify=verify,
                             backend=backend)

    if machine is None:
        machine = build_machine(config, table_capacity=max(len(routes), 100))
    machine.load_routes(routes)
    program = options.program_factory(machine) \
        if options.program_factory is not None \
        else build_forwarding_program(machine, mode=MODE_BENCH)

    for iface, raw in packets:
        if not machine.offered_load(iface, raw):
            raise SimulationError(
                f"line card {iface} dropped an offered packet; raise its "
                f"queue depth for batches of {len(packets)}")

    machine.processor.reset()
    simulator = create_simulator(machine.processor, program, strict=True,
                                 backend=options.backend)
    detector = None
    if options.detect_hazards:
        detector = HazardDetector(machine.processor)
        detector.attach(simulator)
    if options.instrument is not None:
        options.instrument(simulator)
    report = simulator.run(max_cycles=options.effective_max_cycles)

    mismatches: List[str] = []
    forwarded = sum(len(card.transmitted) for card in machine.line_cards)
    if options.verify:
        mismatches = _verify(machine, routes, packets)
    return ForwardingRunResult(
        config=config, report=report,
        packets_offered=len(packets),
        packets_forwarded=forwarded,
        packets_dropped=len(packets) - forwarded,
        mismatches=mismatches,
        machine=machine,
        program_length=len(program),
        hazard_report=detector.report if detector else None,
        backend=simulator.metrics_backend,
    )


def _verify(machine: RouterMachine, routes: Sequence[RouteEntry],
            packets: Sequence[Tuple[int, bytes]]) -> List[str]:
    expectations = expected_forwarding(routes, packets)
    expected_per_card: Dict[int, List[bytes]] = {
        card.index: [] for card in machine.line_cards}
    for expectation in expectations:
        if expectation is None:
            continue
        iface, rewritten = expectation
        expected_per_card[iface].append(rewritten)

    mismatches: List[str] = []
    for card in machine.line_cards:
        expected = expected_per_card[card.index]
        actual = card.transmitted
        # The ippu round-robins across cards, so global order interleaves;
        # compare as multisets per output card, then order within a flow is
        # checked by the router-level tests.
        if sorted(expected) != sorted(actual):
            mismatches.append(
                f"card {card.index}: expected {len(expected)} datagrams, "
                f"got {len(actual)}"
                + ("" if len(expected) != len(actual) else " (content differs)"))
    return mismatches
