"""End-to-end forwarding measurement: simulate and verify a packet batch.

This is the reproduction of the paper's system-level simulation step: it
builds the architecture instance, generates the tuned program, pushes real
IPv6 datagrams through the line cards, runs the cycle-accurate simulator,
checks functional correctness against the golden (pure-Python) forwarding
semantics, and reports cycles-per-datagram plus utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dse.config import ArchitectureConfiguration
from repro.errors import SimulationError
from repro.ipv6.address import Ipv6Address
from repro.ipv6.packet import validate_for_forwarding
from repro.programs.forwarding import MODE_BENCH, build_forwarding_program
from repro.programs.machine import RouterMachine, build_machine
from repro.routing import make_table
from repro.routing.entry import RouteEntry
from repro.tta.hazards import HazardDetector, HazardReport
from repro.tta.simulator import Simulator
from repro.tta.stats import SimulationReport


@dataclass
class ForwardingRunResult:
    """Outcome of one simulated forwarding batch."""

    config: ArchitectureConfiguration
    report: SimulationReport
    packets_offered: int
    packets_forwarded: int
    packets_dropped: int
    mismatches: List[str] = field(default_factory=list)
    #: the machine and program used, for post-run inspection (program
    #: store sizing, tracing, punt-queue processing)
    machine: Optional["RouterMachine"] = None
    program_length: int = 0
    #: populated when the run was made with ``detect_hazards=True``
    hazard_report: Optional[HazardReport] = None

    @property
    def cycles_per_packet(self) -> float:
        if self.packets_offered == 0:
            return 0.0
        return self.report.cycles / self.packets_offered

    @property
    def bus_utilization(self) -> float:
        return self.report.bus_utilization

    @property
    def correct(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        return (f"{self.config.describe()}: "
                f"{self.report.cycles} cycles for {self.packets_offered} "
                f"packets ({self.cycles_per_packet:.1f}/packet), "
                f"bus util {self.bus_utilization * 100:.0f}%, "
                f"{'OK' if self.correct else 'MISMATCHES'}")


def expected_forwarding(routes: Sequence[RouteEntry],
                        packets: Sequence[Tuple[int, bytes]],
                        ) -> List[Optional[Tuple[int, bytes]]]:
    """Golden behaviour: (output interface, rewritten bytes) or None=drop."""
    reference = make_table("sequential", capacity=max(len(routes), 1))
    reference.load(list(routes))
    expectations: List[Optional[Tuple[int, bytes]]] = []
    for _iface, raw in packets:
        if validate_for_forwarding(raw) is not None:
            expectations.append(None)
            continue
        if raw[6] == 0:  # hop-by-hop options: punted to the slow path
            expectations.append(None)
            continue
        destination = Ipv6Address.from_bytes(raw[24:40])
        if destination.is_multicast():
            expectations.append(None)  # punted to the control plane
            continue
        result = reference.lookup(destination)
        if result is None:
            expectations.append(None)
            continue
        rewritten = raw[:7] + bytes([raw[7] - 1]) + raw[8:]
        expectations.append((result.interface, rewritten))
    return expectations


def run_forwarding(config: ArchitectureConfiguration,
                   routes: Sequence[RouteEntry],
                   packets: Sequence[Tuple[int, bytes]],
                   machine: Optional[RouterMachine] = None,
                   max_cycles: int = 5_000_000,
                   verify: bool = True,
                   detect_hazards: bool = False,
                   instrument: Optional[Callable[[Simulator], None]] = None,
                   program_factory: Optional[
                       Callable[["RouterMachine"], object]] = None,
                   ) -> ForwardingRunResult:
    """Simulate one batch of datagrams through a fresh machine.

    *instrument* is called with the :class:`Simulator` after the hazard
    detector (if any) is attached and before the run starts — the seam
    fault injectors and tracers use to hook the datapath without this
    module knowing about them.

    *program_factory* replaces the default tuned program generator —
    the seam the conformance suite's program mutants use to prove the
    golden cross-check actually detects a broken datapath.
    """
    if machine is None:
        machine = build_machine(config, table_capacity=max(len(routes), 100))
    machine.load_routes(routes)
    program = program_factory(machine) if program_factory is not None \
        else build_forwarding_program(machine, mode=MODE_BENCH)

    for iface, raw in packets:
        if not machine.offered_load(iface, raw):
            raise SimulationError(
                f"line card {iface} dropped an offered packet; raise its "
                f"queue depth for batches of {len(packets)}")

    machine.processor.reset()
    simulator = Simulator(machine.processor, program, strict=True)
    detector = None
    if detect_hazards:
        detector = HazardDetector(machine.processor)
        detector.attach(simulator)
    if instrument is not None:
        instrument(simulator)
    report = simulator.run(max_cycles=max_cycles)

    mismatches: List[str] = []
    forwarded = sum(len(card.transmitted) for card in machine.line_cards)
    if verify:
        mismatches = _verify(machine, routes, packets)
    return ForwardingRunResult(
        config=config, report=report,
        packets_offered=len(packets),
        packets_forwarded=forwarded,
        packets_dropped=len(packets) - forwarded,
        mismatches=mismatches,
        machine=machine,
        program_length=len(program),
        hazard_report=detector.report if detector else None,
    )


def _verify(machine: RouterMachine, routes: Sequence[RouteEntry],
            packets: Sequence[Tuple[int, bytes]]) -> List[str]:
    expectations = expected_forwarding(routes, packets)
    expected_per_card: Dict[int, List[bytes]] = {
        card.index: [] for card in machine.line_cards}
    for expectation in expectations:
        if expectation is None:
            continue
        iface, rewritten = expectation
        expected_per_card[iface].append(rewritten)

    mismatches: List[str] = []
    for card in machine.line_cards:
        expected = expected_per_card[card.index]
        actual = card.transmitted
        # The ippu round-robins across cards, so global order interleaves;
        # compare as multisets per output card, then order within a flow is
        # checked by the router-level tests.
        if sorted(expected) != sorted(actual):
            mismatches.append(
                f"card {card.index}: expected {len(expected)} datagrams, "
                f"got {len(actual)}"
                + ("" if len(expected) != len(actual) else " (content differs)"))
    return mismatches
