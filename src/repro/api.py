"""Stable public facade for the repro package.

The one import users need::

    from repro import api

    result = api.evaluate(api.ArchitectureConfiguration(
        bus_count=3, table_kind="cam"))
    rows = api.table1(jobs=4)          # parallel sweep, identical output
    print(api.render_table1(rows))
    outcome = api.explore(max_power=25.0, jobs=4)
    report = api.run_chaos(seed=42, drop=0.10)

Every simulation entry point accepts ``backend=`` — ``"interpreter"``
(the reference loop, the default), ``"compiled"`` (the pre-decoded fast
path, bit-identical reports), or ``"auto"``. :func:`backends` lists
what is registered; see :mod:`repro.tta.backends`.

Everything here returns the library's existing dataclasses
(:class:`EvaluationResult`, :class:`Table1Row`,
:class:`ExplorationOutcome`, :class:`ResilienceReport` — each with the
uniform ``render()`` / ``to_dict()`` pair), so moving from the facade to
the deep modules later costs nothing. The deep module paths
(``repro.dse.evaluator``, ``repro.faults.scenario``, ...) remain
importable but are **not** covered by any stability promise; this module
is.

``jobs=N`` fans design-space sweeps out over a ``multiprocessing``
process pool (one evaluator per worker); the default ``jobs=1`` is the
plain sequential path. Parallel output is byte-identical to sequential
output, and the crash-safe ``journal``/``resume`` options work the same
either way.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Union

from repro.conformance import ConformanceReport
from repro.conformance import run_conformance as _run_conformance
from repro.dse.campaign import (
    CampaignPolicy,
    CampaignRunner,
    run_table1_campaign,
)
from repro.dse.config import ArchitectureConfiguration
from repro.dse.evaluator import (
    DEFAULT_EVALUATION_MAX_CYCLES,
    ArchitectureEvaluator,
    EvaluationResult,
)
from repro.dse.explorer import ExplorationOutcome, GreedyExplorer
from repro.dse.parallel import ParallelCampaignRunner
from repro.dse.pareto import DesignConstraints
from repro.dse.sdc import (
    DEFAULT_MEMORY_FLIPS,
    DEFAULT_MEMORY_LOOKUPS,
    DEFAULT_RATE,
    DEFAULT_TRIALS,
    MemorySweepResult,
    MemorySweepRunner,
    SdcSweepResult,
    SdcSweepRunner,
)
from repro.dse.lookup_sweep import (
    DEFAULT_LOOKUPS,
    DEFAULT_PREFIX_COUNTS,
    LookupSweepResult,
    LookupSweepRunner,
)
from repro.dse.space import DesignSpace
from repro.dse.table1 import Table1Row, generate_table1, render_table1
from repro.faults.control import (
    ATTACK_KINDS,
    AssaultReport,
    ControlPlaneAssault,
)
from repro.faults.flaps import FlapSchedule
from repro.faults.scenario import ChaosScenario, ResilienceReport
from repro.pcap import ReplayReport, read_pcap
from repro.pcap import replay as _replay
from repro.obs import MetricsRegistry, get_registry, render_snapshot
from repro.programs.runner import RunOptions
from repro.tta.backends import SimulatorBackend, available_backends
from repro.router.network import line_topology, ring_topology
from repro.service import (
    CampaignService,
    JobRecord,
    ServiceChaosReport,
    SupervisionPolicy,
    run_service_chaos,
)

__all__ = [
    "evaluate",
    "table1",
    "lookup_sweep",
    "explore",
    "backends",
    "conformance",
    "replay_pcap",
    "run_assault",
    "run_chaos",
    "sdc_sweep",
    "memory_sdc_sweep",
    "campaign_service",
    "service_chaos",
    "metrics",
    "metrics_registry",
    "render_metrics",
    "render_table1",
    "ArchitectureConfiguration",
    "CampaignService",
    "DesignConstraints",
    "DesignSpace",
    "EvaluationResult",
    "ExplorationOutcome",
    "FlapSchedule",
    "AssaultReport",
    "ConformanceReport",
    "JobRecord",
    "LookupSweepResult",
    "ReplayReport",
    "MemorySweepResult",
    "ResilienceReport",
    "RunOptions",
    "SdcSweepResult",
    "SimulatorBackend",
    "ServiceChaosReport",
    "SupervisionPolicy",
    "Table1Row",
]


def _evaluator_factory(entries: int, packets: int, hazards: bool,
                       backend: Optional[str] = None):
    """A picklable factory (``partial`` over the class) so the same spec
    builds the evaluator in the parent and in every pool worker —
    including the chosen simulation backend."""
    return partial(ArchitectureEvaluator, table_entries=entries,
                   packet_batch=packets, detect_hazards=hazards,
                   backend=backend)


def backends() -> List[SimulatorBackend]:
    """The registered simulation engines, in registration order.

    Each entry carries ``name``, ``description``, and an
    ``accelerated`` property (True when the backend batches state
    updates through numpy in this process). Pass an entry's ``name`` as
    the ``backend=`` argument anywhere in this facade.
    """
    return available_backends()


def _runner(factory, *, jobs: int, journal: Optional[str], resume: bool,
            cycle_budget: Optional[int]
            ) -> Union[CampaignRunner, ParallelCampaignRunner]:
    policy = CampaignPolicy(
        cycle_budget=cycle_budget or DEFAULT_EVALUATION_MAX_CYCLES)
    if jobs > 1:
        return ParallelCampaignRunner(
            factory, jobs=jobs, journal_path=journal, resume=resume,
            policy=policy)
    return CampaignRunner(factory(), journal_path=journal, resume=resume,
                          policy=policy)


def evaluate(config: ArchitectureConfiguration, *,
             jobs: int = 1,
             entries: int = 100,
             packets: int = 12,
             hazards: bool = False,
             max_cycles: Optional[int] = None,
             backend: Optional[str] = None) -> EvaluationResult:
    """Evaluate one architecture configuration (simulate + estimate).

    *entries*/*packets* size the routing-table workload; *hazards*
    attaches the TTA hazard detector; *max_cycles* caps the simulation;
    *backend* picks the simulation engine (see :func:`backends`).
    *jobs* is accepted for signature symmetry with the sweep entry
    points — a single evaluation always runs in-process.
    """
    del jobs  # a single evaluation has nothing to fan out
    factory = _evaluator_factory(entries, packets, hazards, backend)
    return factory().evaluate(config, max_cycles=max_cycles)


def table1(*, entries: int = 100,
           packets: int = 12,
           jobs: int = 1,
           journal: Optional[str] = None,
           resume: bool = False,
           cycle_budget: Optional[int] = None,
           hazards: bool = False,
           backend: Optional[str] = None) -> List[Table1Row]:
    """Regenerate the paper's Table 1 (nine rows, paper values attached).

    With ``jobs > 1`` the nine evaluations fan out over a process pool;
    the returned rows — and their rendering via :func:`render_table1` —
    are byte-identical to the sequential result. ``journal``/``resume``
    make the sweep crash-safe exactly as on the CLI. Configurations that
    fail under a journal-backed run are quarantined and absent from the
    returned rows.
    """
    factory = _evaluator_factory(entries, packets, hazards, backend)
    if jobs == 1 and journal is None and not resume and not cycle_budget:
        return generate_table1(factory())
    runner = _runner(factory, jobs=jobs, journal=journal, resume=resume,
                     cycle_budget=cycle_budget)
    rows, _ = run_table1_campaign(runner)
    return rows


def lookup_sweep(*, kinds=None,
                 prefix_counts=None,
                 lookups: int = DEFAULT_LOOKUPS,
                 seed: int = 2026,
                 jobs: int = 1,
                 journal: Optional[str] = None,
                 resume: bool = False) -> LookupSweepResult:
    """Scaling lookup sweep: every table kind at 10²–10⁶ prefixes.

    Each ``(kind, prefix_count)`` cell synthesizes a BGP-shaped FIB
    (:mod:`repro.workload.fib`), bulk-loads it, measures mean lookup
    steps under Zipf-skewed traffic, and derives required clock / area /
    power through the calibrated analytic models
    (:mod:`repro.estimation.lookup`). Defaults sweep all five kinds at
    ``(100, 1000, 10000, 100000, 1000000)`` prefixes.

    ``jobs``/``journal``/``resume`` behave exactly as in :func:`table1`:
    parallel, resumed, and sequential sweeps produce byte-identical
    output.
    """
    runner = LookupSweepRunner(
        kinds=kinds,
        prefix_counts=prefix_counts or DEFAULT_PREFIX_COUNTS,
        lookups=lookups, seed=seed, jobs=jobs, journal_path=journal,
        resume=resume)
    return runner.run()


def explore(*, space: Optional[DesignSpace] = None,
            max_area: Optional[float] = None,
            max_power: Optional[float] = None,
            jobs: int = 1,
            entries: int = 100,
            packets: int = 12,
            journal: Optional[str] = None,
            resume: bool = False,
            cycle_budget: Optional[int] = None,
            hazards: bool = False,
            backend: Optional[str] = None) -> ExplorationOutcome:
    """Run the heuristic design-space explorer.

    With ``jobs > 1`` the explorer expands each search frontier (all
    restart points, all neighbours of the current best) concurrently
    over a process pool.
    """
    constraints = DesignConstraints(max_area_mm2=max_area,
                                    max_power_w=max_power)
    factory = _evaluator_factory(entries, packets, hazards, backend)
    if jobs > 1 or journal is not None or resume or cycle_budget:
        evaluator = _runner(factory, jobs=jobs, journal=journal,
                            resume=resume, cycle_budget=cycle_budget)
    else:
        evaluator = factory()
    explorer = GreedyExplorer(evaluator, constraints)
    return explorer.explore(space or DesignSpace())


def run_chaos(*, topology: str = "line",
              routers: int = 5,
              seed: int = 0,
              drop: float = 0.0,
              corrupt: float = 0.0,
              duplicate: float = 0.0,
              reorder: float = 0.0,
              latency_steps: int = 0,
              jitter_steps: int = 0,
              flaps: Optional[FlapSchedule] = None,
              chaos_seconds: float = 300.0) -> ResilienceReport:
    """Run one seeded fault-injection scenario and report resilience.

    Same seed, same report, bit for bit, on any machine.
    """
    if topology == "line":
        network = line_topology(routers)
    elif topology == "ring":
        network = ring_topology(routers)
    else:
        raise ValueError(f"unknown topology {topology!r}; "
                         f"choose 'line' or 'ring'")
    scenario = ChaosScenario.uniform(
        network, seed=seed, drop=drop, corrupt=corrupt,
        duplicate=duplicate, reorder=reorder,
        latency_steps=latency_steps, jitter_steps=jitter_steps,
        flaps=flaps if flaps is not None and len(flaps) else None,
        chaos_seconds=chaos_seconds)
    return scenario.run()


#: CLI-friendly aliases for routing-table kinds
_TABLE_ALIASES = {"tree": "balanced-tree", "trie": "multibit-trie"}


def conformance(*, table_kind: str = "sequential",
                config: Optional[ArchitectureConfiguration] = None,
                mac: bool = True,
                mutant: Optional[str] = None,
                datapath: bool = True) -> ConformanceReport:
    """Run the table-driven forwarding conformance suite.

    The matrix crosses packet kind (tcpv6/udpv6/icmpv6), destination
    class (on-link / LPM / default / no-route) and hop limit (64/1/0),
    asserts the full forwarding contract per case — LPM selection,
    hop-limit decrement, ICMPv6 Time Exceeded / Destination Unreachable,
    my-station check, MAC rewrite, checksum preservation — and
    cross-checks the cycle-accurate TTA datapath against the golden
    model. ``table_kind`` accepts ``"tree"`` as an alias for
    ``"balanced-tree"``; *mutant* names a deliberately broken router or
    program (the suite must then fail, with case-level diagnosis).
    """
    return _run_conformance(
        table_kind=_TABLE_ALIASES.get(table_kind, table_kind),
        config=config, mac=mac, mutant=mutant, datapath=datapath)


def run_assault(*, topology: str = "line",
                routers: int = 4,
                seed: int = 2080,
                victim: Optional[str] = None,
                kinds=None,
                attack_rounds: int = 30,
                burst_per_round: int = 2) -> AssaultReport:
    """Drive an adversarial RIPng campaign at a converged network.

    Injects malformed, martian, spoofed-next-hop, withdrawal and
    oversized advertisements (seeded — same seed, same report) and
    asserts graceful degradation: no exceptions, no poisoned routes
    installed, reconvergence, and every attack visible in drop counters.
    """
    if topology == "line":
        network = line_topology(routers)
    elif topology == "ring":
        network = ring_topology(routers)
    else:
        raise ValueError(f"unknown topology {topology!r}; "
                         f"choose 'line' or 'ring'")
    assault = ControlPlaneAssault(
        network, victim=victim, seed=seed,
        kinds=tuple(kinds) if kinds else ATTACK_KINDS,
        attack_rounds=attack_rounds, burst_per_round=burst_per_round)
    return assault.run()


def replay_pcap(path: str, *,
                table_kind: str = "sequential",
                interface: int = 0) -> ReplayReport:
    """Replay a classic pcap capture through the conformance fixture,
    measuring per-packet latency (published as obs percentiles)."""
    return _replay(read_pcap(path),
                   table_kind=_TABLE_ALIASES.get(table_kind, table_kind),
                   interface=interface)


def sdc_sweep(configs, *,
              entries: int = 20,
              packets: int = 4,
              sites=None,
              trials: int = DEFAULT_TRIALS,
              rate: float = DEFAULT_RATE,
              seed: int = 0,
              max_faults: Optional[int] = None,
              jobs: int = 1,
              journal: Optional[str] = None,
              resume: bool = False,
              backend: Optional[str] = None) -> SdcSweepResult:
    """Soft-error vulnerability sweep over *configs*.

    Every configuration runs ``trials`` seeded datapath-injection trials
    per fault site (bus transfers, operand/trigger/result latches,
    socket decodes); each trial is classified against the fault-free
    golden run as ``masked`` / ``detected`` / ``sdc`` / ``crash`` /
    ``hang`` by the differential oracle (:mod:`repro.verify`). The
    result carries a per-configuration vulnerability row — SDC rate,
    detection coverage, mean faults-to-failure — plus every trial
    record, and renders to a deterministic text table.

    ``jobs``/``journal``/``resume`` behave exactly as in :func:`table1`:
    parallel, resumed, and sequential sweeps produce byte-identical
    output.
    """
    runner = SdcSweepRunner(
        entries=entries, packet_batch=packets, sites=sites,
        trials=trials, rate=rate, seed=seed, max_faults=max_faults,
        jobs=jobs, journal_path=journal, resume=resume, backend=backend)
    return runner.run(list(configs))


def memory_sdc_sweep(*, kinds=None,
                     protections=None,
                     prefixes: int = 1000,
                     lookups: int = DEFAULT_MEMORY_LOOKUPS,
                     trials: int = DEFAULT_TRIALS,
                     flips: int = DEFAULT_MEMORY_FLIPS,
                     seed: int = 0,
                     fib_seed: int = 2026,
                     jobs: int = 1,
                     journal: Optional[str] = None,
                     resume: bool = False) -> MemorySweepResult:
    """Table-state (stored FIB) soft-error vulnerability sweep.

    Where :func:`sdc_sweep` flips bits *in flight* on the datapath,
    this sweep flips bits *at rest*: each trial loads a routing table
    of every requested kind with a synthesized ``prefixes``-route FIB
    (:mod:`repro.workload.fib`), corrupts one of its memory sites
    (entries, tree nodes, CAM rows, trie node/slot arrays, Bloom
    vectors and buckets), replays Zipf traffic against the differential
    oracle, and classifies the divergence. Each (kind, protection)
    cell also prices its parity/checksum hardware via
    :func:`repro.estimation.estimate_protection_overhead`, so the
    result reads as a protection-cost-vs-SDC-rate tradeoff.

    ``jobs``/``journal``/``resume`` behave exactly as in
    :func:`sdc_sweep`: sequential, parallel, and resumed sweeps are
    byte-identical.
    """
    runner = MemorySweepRunner(
        kinds=kinds, protections=protections, prefixes=prefixes,
        lookups=lookups, trials=trials, flips=flips, seed=seed,
        fib_seed=fib_seed, jobs=jobs, journal_path=journal,
        resume=resume)
    return runner.run()


def campaign_service(root: str, *,
                     jobs: int = 1,
                     cache: bool = True,
                     heartbeat: Optional[float] = 30.0,
                     job_timeout: Optional[float] = None,
                     min_jobs: int = 1,
                     seed: int = 0) -> CampaignService:
    """Open (or create) the self-healing campaign service at *root*.

    The async-style flow::

        svc = api.campaign_service("/tmp/dse", jobs=4)
        job_id = svc.submit({"kind": "table1", "entries": 100,
                             "packets": 12})
        svc.run_pending()               # or: repro serve --root /tmp/dse
        print(svc.poll(job_id))         # progress while running
        document = svc.fetch(job_id)    # completed result + render

    Jobs execute under supervision (worker heartbeats, stall teardown,
    pool degradation, capped backoff) against a SHA-256
    integrity-checked evaluation cache shared across jobs; a service
    that crashes mid-job recovers on the next start and *resumes* from
    the job's journal — fetched results are byte-identical to an
    uninterrupted sequential run.
    """
    return CampaignService(
        root, jobs=jobs, cache=cache, seed=seed,
        supervision=SupervisionPolicy(heartbeat_seconds=heartbeat,
                                      job_timeout_seconds=job_timeout,
                                      min_jobs=min_jobs))


def service_chaos(root: Optional[str] = None, *,
                  entries: int = 10,
                  packets: int = 2,
                  jobs: int = 2,
                  seed: int = 0) -> ServiceChaosReport:
    """Run the service-level chaos campaign (see
    :mod:`repro.service.chaos`): worker kills, stalls past the heartbeat
    deadline, cache corruption/truncation, and a service crash/restart
    mid-job — each phase asserting recovery to byte-identical results
    against a clean sequential run, plus a warm-cache speedup floor.
    *root* defaults to a fresh temporary directory.
    """
    if root is None:
        import tempfile
        root = tempfile.mkdtemp(prefix="repro-service-chaos-")
    return run_service_chaos(root, entries=entries, packets=packets,
                             jobs=jobs, seed=seed)


def metrics(*, reset: bool = False) -> dict:
    """Snapshot of the process-wide metrics registry (JSON-ready).

    Every facade call above publishes into the same registry
    (:mod:`repro.obs`): simulation throughput, per-evaluation latency,
    routing-table activity, network convergence, pool utilisation.
    ``reset=True`` clears recorded values after snapshotting, so a
    caller can attribute metrics to one workload at a time. Disable the
    layer entirely with ``REPRO_NO_METRICS=1`` or
    ``metrics_registry().disable()``.
    """
    snapshot = get_registry().snapshot()
    if reset:
        get_registry().reset()
    return snapshot


def metrics_registry() -> MetricsRegistry:
    """The live process-wide registry (enable/disable/reset/instrument)."""
    return get_registry()


def render_metrics(snapshot: Optional[dict] = None) -> str:
    """Fixed-width table for a metrics snapshot (default: the live one)."""
    return render_snapshot(snapshot if snapshot is not None
                           else get_registry().snapshot())
