"""``taco-explore``: command-line front end for the evaluation flows.

Subcommands:

* ``table1`` — regenerate the paper's Table 1 (all nine rows;
  ``--prefixes N`` swaps in a synthesized BGP-shaped FIB and ``--kinds
  all`` adds the post-paper multibit-trie / Bloom rows);
* ``lookup-sweep`` — the scaling study Table 1 cannot host: every
  table kind against synthesized FIBs at 10²–10⁶ prefixes, measured
  lookup steps fed through the calibrated clock/area/power models;
* ``evaluate`` — evaluate one configuration;
* ``explore`` — run the heuristic design-space explorer (future-work tool);
* ``ripng`` — simulate RIPng convergence on a line/ring topology;
* ``chaos`` — run a seeded fault-injection scenario and report resilience;
* ``sdc`` — datapath soft-error sweep: seeded bit flips in bus
  transfers/FU latches/socket decodes, each trial classified against the
  fault-free golden run (masked/detected/sdc/crash/hang);
* ``submit`` — enqueue a campaign plan on the self-healing service
  (spool directory; prints the job id);
* ``serve`` — recover and drain the service's queued jobs under
  supervision (heartbeats, stall teardown, pool degradation, evaluation
  cache);
* ``jobs`` — list/poll service jobs, or fetch a completed result;
* ``service-chaos`` — the service-level chaos campaign: worker kills,
  stalls, cache corruption and a service crash/restart, each asserting
  recovery to byte-identical results;
* ``metrics`` — render a metrics snapshot (live, or the ``metrics``
  section of a saved ``--output`` JSON) as a table.

``table1`` and ``explore`` run as crash-safe campaigns when given
``--journal`` (resume with ``--resume``) and fan out over a process pool
with ``--jobs N`` (parallel output is byte-identical to sequential);
``--hazards`` attaches the TTA hazard detector to every simulation.
``--backend interpreter|compiled|auto`` (on ``table1``/``evaluate``/
``explore``/``sdc``/``submit``) selects the simulation engine; the
``compiled`` fast path produces bit-identical reports and falls back to
the interpreter whenever an observation hook is attached.
``--output PATH`` writes the subcommand's result as JSON (the uniform
``to_dict()`` document) atomically to PATH; every such document carries a
``metrics`` section (the process-wide :mod:`repro.obs` snapshot — disable
with ``REPRO_NO_METRICS=1``). Metrics never change what is printed or
measured: stdout is byte-identical with metrics on or off.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from typing import Optional, Sequence

from repro.dse import (
    ArchitectureConfiguration,
    ArchitectureEvaluator,
    CampaignPolicy,
    CampaignRunner,
    DesignConstraints,
    DesignSpace,
    GreedyExplorer,
    ParallelCampaignRunner,
    generate_table1,
    render_table1,
    run_table1_campaign,
    shape_checks,
    write_atomic,
)
from repro.dse.evaluator import DEFAULT_EVALUATION_MAX_CYCLES
from repro.dse.table1 import table1_to_dict
from repro.ipv6.address import Ipv6Prefix
from repro.obs import get_registry, render_snapshot
from repro.router.network import (
    line_topology,
    ring_topology,
    seed_fib_routes,
)
from repro.tta.backends import BACKEND_AUTO, available_backends


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in ("table1", "explore", "lookup-sweep"):
        from repro.errors import CampaignError
        handler = {"table1": _cmd_table1, "explore": _cmd_explore,
                   "lookup-sweep": _cmd_lookup_sweep}[args.command]
        try:
            return handler(args)
        except CampaignError as exc:
            print(f"campaign error: {exc}", file=sys.stderr)
            return 2
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "ripng":
        return _cmd_ripng(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "sdc":
        from repro.errors import CampaignError
        try:
            return _cmd_sdc(args)
        except CampaignError as exc:
            print(f"campaign error: {exc}", file=sys.stderr)
            return 2
    if args.command == "conformance":
        return _cmd_conformance(args)
    if args.command == "assault":
        return _cmd_assault(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command in ("submit", "serve", "jobs", "service-chaos"):
        from repro.errors import ServiceError
        handler = {"submit": _cmd_submit, "serve": _cmd_serve,
                   "jobs": _cmd_jobs,
                   "service-chaos": _cmd_service_chaos}[args.command]
        try:
            return handler(args)
        except ServiceError as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 2
    parser.print_help()
    return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="taco-explore",
        description="TACO protocol-processor evaluation for IPv6 routing")
    sub = parser.add_subparsers(dest="command")

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--entries", type=int, default=100,
                        help="routing table size (default 100)")
    table1.add_argument("--prefixes", type=int, default=None, metavar="N",
                        help="replace the paper workload with a "
                             "synthesized BGP-shaped FIB of N prefixes "
                             "(repro.workload.fib)")
    table1.add_argument("--kinds", default="paper",
                        choices=("paper", "all"),
                        help="'paper' = the published three table "
                             "options; 'all' adds multibit-trie and "
                             "Bloom rows")
    table1.add_argument("--seed", type=int, default=2026,
                        help="FIB synthesis seed for --prefixes")
    table1.add_argument("--packets", type=int, default=12,
                        help="measurement batch size (default 12)")
    _add_backend_argument(table1)
    _add_campaign_arguments(table1)
    _add_output_argument(table1)

    sweep = sub.add_parser(
        "lookup-sweep",
        help="scaling sweep: every table kind at 10^2..10^6 prefixes")
    sweep.add_argument("--kind", action="append", default=None,
                       choices=("sequential", "balanced-tree", "cam",
                                "multibit-trie", "bloom"),
                       help="table kind to sweep (repeatable; "
                            "default: all five)")
    sweep.add_argument("--prefixes", type=int, nargs="+", default=None,
                       metavar="N",
                       help="FIB sizes to sweep (default: 100 1000 "
                            "10000 100000 1000000)")
    sweep.add_argument("--lookups", type=int, default=None, metavar="N",
                       help="Zipf-skewed probe addresses per cell "
                            "(default 2000)")
    sweep.add_argument("--seed", type=int, default=2026,
                       help="root seed (sweeps replay bit-for-bit)")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan cells out over N worker processes "
                            "(default 1; output is byte-identical)")
    sweep.add_argument("--journal", default=None, metavar="PATH",
                       help="crash-safe JSONL journal of every cell")
    sweep.add_argument("--resume", action="store_true",
                       help="replay the journal and skip measured cells")
    _add_output_argument(sweep)

    ev = sub.add_parser("evaluate", help="evaluate one configuration")
    ev.add_argument("--buses", type=int, default=1)
    ev.add_argument("--fu-sets", type=int, default=1,
                    help="matcher/counter/comparator count")
    ev.add_argument("--table", default="sequential",
                    choices=("sequential", "balanced-tree", "cam",
                             "multibit-trie", "bloom"))
    ev.add_argument("--entries", type=int, default=100)
    ev.add_argument("--hazards", action="store_true",
                    help="attach the hazard detector and print its report")
    _add_backend_argument(ev)
    _add_output_argument(ev)

    ex = sub.add_parser("explore", help="heuristic design-space exploration")
    ex.add_argument("--max-power", type=float, default=None,
                    help="power budget in watts")
    ex.add_argument("--max-area", type=float, default=None,
                    help="area budget in mm^2")
    _add_backend_argument(ex)
    _add_campaign_arguments(ex)
    _add_output_argument(ex)

    rip = sub.add_parser("ripng", help="RIPng convergence simulation")
    rip.add_argument("--topology", choices=("line", "ring"), default="line")
    rip.add_argument("--routers", type=int, default=4)
    rip.add_argument("--prefixes", type=int, default=None, metavar="N",
                     help="originate a synthesized N-prefix BGP-shaped "
                          "FIB across the routers before converging")
    rip.add_argument("--fib-seed", type=int, default=2026,
                     help="FIB synthesis seed for --prefixes "
                          "(default 2026)")
    rip.add_argument("--capture", default=None, metavar="PATH",
                     help="tap every link and write the run's frames as "
                          "a classic pcap (replayable via "
                          "'conformance --replay')")
    _add_output_argument(rip)

    conf = sub.add_parser(
        "conformance",
        help="table-driven forwarding conformance suite")
    conf.add_argument("--table", default="sequential",
                      choices=("sequential", "tree", "balanced-tree",
                               "cam", "multibit-trie", "trie", "bloom"),
                      help="routing-table implementation under test "
                           "('tree' is an alias for 'balanced-tree', "
                           "'trie' for 'multibit-trie')")
    conf.add_argument("--no-mac", action="store_true",
                      help="skip the link-layer (my-station / MAC "
                           "rewrite) cases")
    conf.add_argument("--no-datapath", action="store_true",
                      help="skip the TTA-vs-golden datapath cross-check")
    conf.add_argument("--mutant", default=None,
                      help="run against a deliberately broken router or "
                           "program (the suite must fail); one of: "
                           "no-decrement, forward-expired, no-icmp, "
                           "wrong-interface, program-no-decrement")
    conf.add_argument("--replay", default=None, metavar="PATH",
                      help="also replay a classic pcap through the "
                           "fixture, with per-packet latency percentiles "
                           "in the metrics section")
    _add_output_argument(conf)

    assault = sub.add_parser(
        "assault", help="adversarial RIPng campaign against a victim")
    assault.add_argument("--topology", choices=("line", "ring"),
                         default="line")
    assault.add_argument("--routers", type=int, default=4)
    assault.add_argument("--seed", type=int, default=2080,
                         help="attack seed (campaigns replay bit-for-bit)")
    assault.add_argument("--kind", action="append", default=None,
                         choices=("malformed", "martian",
                                  "spoofed-next-hop", "withdrawal",
                                  "oversized"),
                         help="attack kind to inject (repeatable; "
                              "default: all five)")
    assault.add_argument("--rounds", type=int, default=30,
                         help="attack rounds (default 30)")
    assault.add_argument("--burst", type=int, default=2,
                         help="hostile datagrams per round (default 2)")
    _add_output_argument(assault)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection / resilience scenario")
    chaos.add_argument("--topology", choices=("line", "ring"),
                       default="line")
    chaos.add_argument("--routers", type=int, default=5)
    chaos.add_argument("--prefixes", type=int, default=None, metavar="N",
                       help="originate a synthesized N-prefix FIB "
                            "across the routers before the chaos phase")
    chaos.add_argument("--fib-seed", type=int, default=2026,
                       help="FIB synthesis seed for --prefixes "
                            "(default 2026)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="scenario seed (runs replay bit-for-bit)")
    chaos.add_argument("--drop", type=float, default=0.0,
                       help="per-frame drop probability on every link")
    chaos.add_argument("--corrupt", type=float, default=0.0,
                       help="per-frame single-bit-flip probability")
    chaos.add_argument("--duplicate", type=float, default=0.0,
                       help="per-frame duplication probability")
    chaos.add_argument("--reorder", type=float, default=0.0,
                       help="per-frame reordering probability")
    chaos.add_argument("--latency", type=int, default=0,
                       help="fixed link latency in simulation steps")
    chaos.add_argument("--jitter", type=int, default=0,
                       help="uniform 0..N extra latency steps")
    chaos.add_argument("--chaos-seconds", type=float, default=300.0,
                       help="chaos phase duration (default 300)")
    chaos.add_argument("--flap", action="append", default=[],
                       metavar="ROUTER:IFACE:DOWN:UP",
                       help="flap a link, e.g. r1:1:60:320 (repeatable)")
    _add_output_argument(chaos)

    sdc = sub.add_parser(
        "sdc", help="soft-error (SDC) vulnerability sweep: datapath "
                    "bit flips by default, stored-FIB (memory-state) "
                    "flips with --prefixes")
    sdc.add_argument("--table", action="append", default=None,
                     choices=("sequential", "balanced-tree", "cam",
                              "multibit-trie", "bloom"),
                     help="routing-table kind to sweep (repeatable; "
                          "datapath default: sequential/balanced-tree/"
                          "cam; memory default: all five)")
    sdc.add_argument("--prefixes", type=int, default=None, metavar="N",
                     help="switch to the memory-state sweep: strike "
                          "stored-FIB bits of tables loaded with a "
                          "synthesized N-prefix FIB (repro.workload.fib)")
    sdc.add_argument("--protection", action="append", default=None,
                     choices=("none", "parity", "checksum"),
                     help="integrity-protection mode for the memory "
                          "sweep (repeatable; default: all three)")
    sdc.add_argument("--lookups", type=int, default=200,
                     help="Zipf probe addresses per memory trial "
                          "(default 200)")
    sdc.add_argument("--flips", type=int, default=1,
                     help="stored bits flipped per memory trial "
                          "(default 1)")
    sdc.add_argument("--fib-seed", type=int, default=2026,
                     help="FIB synthesis seed for --prefixes "
                          "(default 2026)")
    sdc.add_argument("--buses", type=int, nargs="+", default=[1, 2, 3],
                     metavar="N", help="bus counts to sweep (default 1 2 3)")
    sdc.add_argument("--site", action="append", default=None,
                     choices=("bus", "operand", "trigger", "result",
                              "socket"),
                     help="fault site to inject at (repeatable; "
                          "default: all five)")
    sdc.add_argument("--trials", type=int, default=8,
                     help="injection trials per (config, site) (default 8)")
    sdc.add_argument("--rate", type=float, default=0.002,
                     help="per-transport fault probability (default 0.002)")
    sdc.add_argument("--seed", type=int, default=0,
                     help="root seed (sweeps replay bit-for-bit)")
    sdc.add_argument("--max-faults", type=int, default=None, metavar="N",
                     help="cap applied faults per trial (e.g. 1 for "
                          "single-event-upset studies)")
    sdc.add_argument("--entries", type=int, default=20,
                     help="routing table size (default 20)")
    sdc.add_argument("--packets", type=int, default=4,
                     help="measurement batch size (default 4)")
    sdc.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="fan trials out over N worker processes "
                          "(default 1; output is byte-identical)")
    sdc.add_argument("--journal", default=None, metavar="PATH",
                     help="crash-safe JSONL journal of every trial")
    sdc.add_argument("--resume", action="store_true",
                     help="replay the journal and skip completed trials")
    _add_backend_argument(sdc)
    _add_output_argument(sdc)

    desc = sub.add_parser(
        "describe", help="emit an instance's top-level description")
    desc.add_argument("--buses", type=int, default=3)
    desc.add_argument("--fu-sets", type=int, default=1)
    desc.add_argument("--table", default="cam",
                      choices=("sequential", "balanced-tree", "cam",
                               "multibit-trie", "bloom"))
    desc.add_argument("--format", dest="fmt", default="text",
                      choices=("text", "dot"))

    submit = sub.add_parser(
        "submit", help="enqueue a campaign plan on the service")
    submit.add_argument("--root", required=True, metavar="DIR",
                        help="service spool directory (created if absent)")
    submit.add_argument("--plan", default=None, metavar="JSON",
                        help="full plan document, e.g. "
                             "'{\"kind\": \"table1\", \"entries\": 50}'")
    submit.add_argument("--entries", type=int, default=100)
    submit.add_argument("--packets", type=int, default=12)
    submit.add_argument("--hazards", action="store_true")
    _add_backend_argument(submit)

    serve = sub.add_parser(
        "serve", help="recover and drain the service's queued jobs")
    serve.add_argument("--root", required=True, metavar="DIR",
                       help="service spool directory")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker-pool size per campaign (default 1)")
    serve.add_argument("--heartbeat", type=float, default=30.0,
                       metavar="SECONDS",
                       help="stall deadline: longest tolerated silence "
                            "with zero chunk completions (default 30)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock ceiling per job (progress is "
                            "journalled; a resubmit resumes)")
    serve.add_argument("--min-jobs", type=int, default=1, metavar="N",
                       help="pool-degradation floor (default 1)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the shared evaluation cache")
    serve.add_argument("--max-jobs", type=int, default=None, metavar="N",
                       help="execute at most N queued jobs, then exit")
    serve.add_argument("--seed", type=int, default=0,
                       help="backoff-jitter seed")

    jobs = sub.add_parser(
        "jobs", help="list, poll, or fetch service jobs")
    jobs.add_argument("--root", required=True, metavar="DIR",
                      help="service spool directory")
    jobs.add_argument("--poll", default=None, metavar="JOB_ID",
                      help="print one job's point-in-time progress")
    jobs.add_argument("--fetch", default=None, metavar="JOB_ID",
                      help="print a completed job's rendered result")
    _add_output_argument(jobs)

    schaos = sub.add_parser(
        "service-chaos",
        help="service-level chaos campaign (kills, stalls, corruption, "
             "crash/restart)")
    schaos.add_argument("--root", default=None, metavar="DIR",
                        help="scratch directory (default: a fresh "
                             "temporary directory)")
    schaos.add_argument("--entries", type=int, default=10)
    schaos.add_argument("--packets", type=int, default=2)
    schaos.add_argument("--jobs", type=int, default=2, metavar="N")
    schaos.add_argument("--seed", type=int, default=0)
    _add_output_argument(schaos)

    metrics = sub.add_parser(
        "metrics", help="render a metrics snapshot as a table")
    metrics.add_argument("--input", default=None, metavar="PATH",
                         help="read the snapshot from a saved --output "
                              "JSON (its 'metrics' section) instead of "
                              "the live registry")
    metrics.add_argument("--format", dest="fmt", default="text",
                         choices=("text", "json"))
    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    choices = tuple(backend.name for backend in available_backends()) \
        + (BACKEND_AUTO,)
    parser.add_argument("--backend", default=None, choices=choices,
                        help="simulation engine (default: interpreter; "
                             "'compiled' is the bit-identical fast path, "
                             "'auto' picks the fastest)")


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the sweep out over N worker processes "
                             "(default 1 = sequential; output is "
                             "byte-identical either way)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="crash-safe JSONL journal of every evaluation")
    parser.add_argument("--resume", action="store_true",
                        help="replay the journal and skip completed configs")
    parser.add_argument("--cycle-budget", type=int,
                        default=DEFAULT_EVALUATION_MAX_CYCLES,
                        help="per-evaluation cycle deadline (one retry at "
                             "4x before quarantine)")
    parser.add_argument("--hazards", action="store_true",
                        help="attach the TTA hazard detector to every "
                             "simulation and report aggregated counts")


def _add_output_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the result as JSON (to_dict()) "
                             "atomically to PATH")


def _write_json(path: str, payload: dict) -> None:
    """Write a result document, attaching the process metrics snapshot.

    Metrics ride the transport layer rather than the result objects so
    the results themselves stay deterministic (parallel == sequential,
    resume byte-identical); only the serialised document gains the
    observability section.
    """
    if "metrics" not in payload:
        payload = dict(payload)
        payload["metrics"] = get_registry().snapshot()
    write_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.input:
        with open(args.input, encoding="utf-8") as handle:
            document = json.load(handle)
        snapshot = document.get("metrics", document)
        if not isinstance(snapshot, dict) or "counters" not in snapshot:
            print(f"{args.input}: no metrics section found",
                  file=sys.stderr)
            return 2
    else:
        snapshot = get_registry().snapshot()
    if args.fmt == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_snapshot(snapshot))
    return 0


def _evaluator_factory(args: argparse.Namespace):
    """Picklable evaluator spec shared by the parent and pool workers."""
    routes = None
    if getattr(args, "prefixes", None) is not None:
        from repro.workload.fib import synthesize_fib
        routes = synthesize_fib(args.prefixes,
                                seed=getattr(args, "seed", 2026))
    return partial(ArchitectureEvaluator,
                   routes=routes,
                   table_entries=args.entries,
                   packet_batch=getattr(args, "packets", 12),
                   detect_hazards=args.hazards,
                   backend=getattr(args, "backend", None))


def _make_campaign_runner(factory, args: argparse.Namespace
                          ) -> CampaignRunner:
    policy = CampaignPolicy(cycle_budget=args.cycle_budget)
    if args.jobs > 1:
        return ParallelCampaignRunner(
            factory, jobs=args.jobs, journal_path=args.journal,
            resume=args.resume, policy=policy)
    return CampaignRunner(factory(), journal_path=args.journal,
                          resume=args.resume, policy=policy)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.dse.config import ALL_TABLE_KINDS, TABLE_KINDS

    kinds = ALL_TABLE_KINDS if args.kinds == "all" else TABLE_KINDS
    factory = _evaluator_factory(args)
    campaign = None
    runner = None
    if args.journal or args.jobs > 1:
        runner = _make_campaign_runner(factory, args)
        rows, campaign = run_table1_campaign(runner, kinds=kinds)
    else:
        rows = generate_table1(factory(), kinds=kinds)
    text = render_table1(rows)
    if campaign is not None:
        for failure in campaign.failures:
            text += f"\nquarantined: {failure.render()}"
    print(text)
    # shape_checks self-guards: with an incomplete paper grid it
    # reports that single violation, and extended kinds ride along
    # unconstrained.
    violations = shape_checks(rows)
    if args.output:
        _write_json(args.output, table1_to_dict(rows, violations))
    if campaign is not None:
        if args.hazards:
            from repro.reporting import render_hazard_summary
            print(render_hazard_summary(runner.hazard_counts()))
        if campaign.resumed:
            print(f"(resumed {campaign.resumed} evaluation(s) "
                  f"from {args.journal})", file=sys.stderr)
        if campaign.failures:
            return 3
    if violations:
        print("\nshape violations:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\nall qualitative shape checks passed")
    return 0


def _cmd_lookup_sweep(args: argparse.Namespace) -> int:
    from repro.dse.lookup_sweep import (
        DEFAULT_LOOKUPS,
        LookupSweepRunner,
    )

    runner = LookupSweepRunner(
        kinds=args.kind, prefix_counts=args.prefixes,
        lookups=args.lookups if args.lookups is not None
        else DEFAULT_LOOKUPS,
        seed=args.seed, jobs=args.jobs,
        journal_path=args.journal, resume=args.resume)
    result = runner.run()
    print(result.render())
    if args.output:
        _write_json(args.output, result.to_dict())
    if result.resumed:
        print(f"(resumed {result.resumed} cell(s) from {args.journal})",
              file=sys.stderr)
    failed = sum(r["status"] != "ok" for r in result.records)
    return 3 if failed else 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    config = ArchitectureConfiguration(
        bus_count=args.buses, matchers=args.fu_sets,
        counters=args.fu_sets, comparators=args.fu_sets,
        table_kind=args.table)
    evaluator = ArchitectureEvaluator(table_entries=args.entries,
                                      detect_hazards=args.hazards,
                                      backend=args.backend)
    result = evaluator.evaluate(config)
    print(result.summary())
    if args.output:
        _write_json(args.output, result.to_dict())
    if args.hazards and result.run is not None \
            and result.run.hazard_report is not None:
        print(result.run.hazard_report.render())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.reporting import aggregate_hazard_counts, render_hazard_summary

    constraints = DesignConstraints(max_area_mm2=args.max_area,
                                    max_power_w=args.max_power)
    args.entries = getattr(args, "entries", 100)
    factory = _evaluator_factory(args)
    runner = None
    if args.journal or args.jobs > 1:
        runner = _make_campaign_runner(factory, args)
    explorer = GreedyExplorer(runner if runner is not None else factory(),
                              constraints)
    outcome = explorer.explore(DesignSpace())
    print(f"evaluations used: {outcome.evaluations_used}")
    if args.output:
        _write_json(args.output, outcome.to_dict())
    if runner is not None and runner.resumed:
        print(f"(resumed {runner.resumed} evaluation(s) "
              f"from {args.journal})", file=sys.stderr)
    for config in (runner.quarantined if runner is not None
                   else outcome.failed):
        print(f"quarantined: {config.describe()}")
    if args.hazards:
        counts = runner.hazard_counts() if runner is not None \
            else aggregate_hazard_counts(outcome.evaluated)
        print(render_hazard_summary(counts))
    if outcome.best is None:
        print("no configuration satisfies the constraints")
        return 1
    print(f"selected: {outcome.best.summary()}")
    return 0


def _build_scenario_network(args: argparse.Namespace):
    """Topology for the ripng/chaos commands, optionally FIB-seeded.

    With ``--prefixes`` every router's table is sized for the full
    synthesized FIB plus the connected/closing prefixes the topology
    itself originates, and the routes are distributed before the
    simulation starts so convergence spreads a realistic table.
    """
    builder = line_topology if args.topology == "line" else ring_topology
    prefixes = getattr(args, "prefixes", None)
    if prefixes:
        capacity = prefixes + 4 * args.routers + 8
        network = builder(args.routers, table_capacity=capacity)
        seeded = seed_fib_routes(network, prefixes, seed=args.fib_seed)
        print(f"originated {seeded} synthesized routes "
              f"(fib seed {args.fib_seed})")
    else:
        network = builder(args.routers)
    return network


def _cmd_ripng(args: argparse.Namespace) -> int:
    network = _build_scenario_network(args)
    taps = None
    if args.capture:
        from repro.pcap import attach_taps
        taps = attach_taps(network)
    report = network.run_until_converged()
    if taps is not None:
        from repro.pcap import merged_capture, write_pcap
        count = write_pcap(args.capture, merged_capture(taps))
        print(f"captured {count} frames to {args.capture}")
    print(f"{args.topology} of {args.routers}: converged={report.converged} "
          f"in {report.rounds} rounds, "
          f"{report.messages_delivered} datagrams exchanged")
    if args.output:
        _write_json(args.output, {
            "topology": args.topology,
            "routers": args.routers,
            "converged": report.converged,
            "rounds": report.rounds,
            "messages_delivered": report.messages_delivered,
            "time_elapsed": report.time_elapsed,
        })
    probe = Ipv6Prefix.parse("2001:db8:0:1::/64")
    for name in network.routers:
        print(f"  {name}: metric to {probe} = "
              f"{network.route_metric(name, probe)}")
    return 0 if report.converged else 1


def _parse_flap(spec: str):
    from repro.errors import FaultInjectionError
    parts = spec.split(":")
    if len(parts) != 4:
        raise FaultInjectionError(
            f"flap spec must be ROUTER:IFACE:DOWN:UP, got {spec!r}")
    router, interface, down_at, up_at = parts
    try:
        return (router, int(interface)), float(down_at), float(up_at)
    except ValueError as exc:
        raise FaultInjectionError(f"bad flap spec {spec!r}: {exc}") from exc


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.faults import ChaosScenario, FlapSchedule

    network = _build_scenario_network(args)
    try:
        flaps = FlapSchedule()
        for spec in args.flap:
            endpoint, down_at, up_at = _parse_flap(spec)
            flaps.flap(endpoint, down_at=down_at, up_at=up_at)
        scenario = ChaosScenario.uniform(
            network, seed=args.seed, drop=args.drop, corrupt=args.corrupt,
            duplicate=args.duplicate, reorder=args.reorder,
            latency_steps=args.latency, jitter_steps=args.jitter,
            flaps=flaps if len(flaps) else None,
            chaos_seconds=args.chaos_seconds)
        report = scenario.run()
    except ReproError as exc:
        print(f"chaos scenario failed: {exc}", file=sys.stderr)
        return 2
    print(f"{args.topology} of {args.routers}, seed {args.seed}:")
    print(report.summary())
    if args.output:
        _write_json(args.output, report.to_dict())
    return 0 if report.converged and report.all_tables_agree else 1


def _cmd_sdc(args: argparse.Namespace) -> int:
    if args.prefixes is not None:
        return _cmd_sdc_memory(args)
    from repro.dse.sdc import SdcSweepRunner

    tables = args.table or ["sequential", "balanced-tree", "cam"]
    configs = [ArchitectureConfiguration(bus_count=buses, table_kind=table)
               for table in tables for buses in args.buses]
    runner = SdcSweepRunner(
        entries=args.entries, packet_batch=args.packets,
        sites=args.site, trials=args.trials, rate=args.rate,
        seed=args.seed, max_faults=args.max_faults,
        jobs=args.jobs, journal_path=args.journal, resume=args.resume,
        backend=args.backend)
    result = runner.run(configs)
    print(result.render())
    if args.output:
        _write_json(args.output, result.to_dict())
    if result.resumed:
        print(f"(resumed {result.resumed} trial(s) from {args.journal})",
              file=sys.stderr)
    failed = sum(row["failed"] for row in result.rows)
    return 3 if failed else 0


def _cmd_sdc_memory(args: argparse.Namespace) -> int:
    from repro.dse.sdc import MemorySweepRunner

    runner = MemorySweepRunner(
        kinds=args.table, protections=args.protection,
        prefixes=args.prefixes, lookups=args.lookups,
        trials=args.trials, flips=args.flips,
        seed=args.seed, fib_seed=args.fib_seed,
        jobs=args.jobs, journal_path=args.journal, resume=args.resume)
    result = runner.run()
    print(result.render())
    if args.output:
        _write_json(args.output, result.to_dict())
    if result.resumed:
        print(f"(resumed {result.resumed} trial(s) from {args.journal})",
              file=sys.stderr)
    failed = sum(row["failed"] for row in result.rows)
    return 3 if failed else 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro import api
    from repro.errors import ReproError

    try:
        report = api.conformance(table_kind=args.table,
                                 mac=not args.no_mac,
                                 mutant=args.mutant,
                                 datapath=not args.no_datapath)
    except ReproError as exc:
        print(f"conformance suite failed to run: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    payload = report.to_dict()
    if args.replay:
        try:
            replay_report = api.replay_pcap(args.replay,
                                            table_kind=args.table)
        except (ReproError, OSError) as exc:
            print(f"replay failed: {exc}", file=sys.stderr)
            return 2
        print(replay_report.render())
        payload["replay"] = replay_report.to_dict()
    if args.output:
        _write_json(args.output, payload)
    return 0 if report.passed else 1


def _cmd_assault(args: argparse.Namespace) -> int:
    from repro import api
    from repro.errors import ReproError

    try:
        report = api.run_assault(topology=args.topology,
                                 routers=args.routers, seed=args.seed,
                                 kinds=args.kind,
                                 attack_rounds=args.rounds,
                                 burst_per_round=args.burst)
    except ReproError as exc:
        print(f"assault failed to run: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.output:
        _write_json(args.output, report.to_dict())
    return 0 if report.passed else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro import api

    if args.plan is not None:
        try:
            plan = json.loads(args.plan)
        except ValueError as exc:
            print(f"--plan is not valid JSON: {exc}", file=sys.stderr)
            return 2
    else:
        plan = {"kind": "table1", "entries": args.entries,
                "packets": args.packets, "hazards": args.hazards}
        if args.backend is not None:
            plan["backend"] = args.backend
    service = api.campaign_service(args.root)
    job_id = service.submit(plan)
    print(job_id)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import api

    service = api.campaign_service(
        args.root, jobs=args.jobs, cache=not args.no_cache,
        heartbeat=args.heartbeat, job_timeout=args.job_timeout,
        min_jobs=args.min_jobs, seed=args.seed)
    recovered = service.recover()
    for job_id in recovered:
        print(f"recovered {job_id} (was running; will resume from its "
              f"journal)", file=sys.stderr)
    executed = service.run_pending(max_jobs=args.max_jobs)
    for job in executed:
        print(job.render())
    if not executed:
        print("(queue empty)")
    return 3 if any(job.state != "completed" for job in executed) else 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro import api

    service = api.campaign_service(args.root)
    if args.poll:
        progress = service.poll(args.poll)
        print(json.dumps(progress, indent=2, sort_keys=True))
        return 0
    if args.fetch:
        document = service.fetch(args.fetch)
        print(document["render"])
        if args.output:
            _write_json(args.output, document)
        return 0
    jobs = service.list_jobs()
    for job in jobs:
        print(job.render())
    if not jobs:
        print("(no jobs)")
    return 0


def _cmd_service_chaos(args: argparse.Namespace) -> int:
    from repro import api

    report = api.service_chaos(args.root, entries=args.entries,
                               packets=args.packets, jobs=args.jobs,
                               seed=args.seed)
    print(report.render())
    if args.output:
        _write_json(args.output, report.to_dict())
    return 0 if report.passed else 1


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.programs.machine import build_machine
    from repro.reporting import describe_machine, to_dot

    config = ArchitectureConfiguration(
        bus_count=args.buses, matchers=args.fu_sets,
        counters=args.fu_sets, comparators=args.fu_sets,
        table_kind=args.table)
    machine = build_machine(config)
    if args.fmt == "dot":
        print(to_dot(machine), end="")
    else:
        print(describe_machine(machine), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
