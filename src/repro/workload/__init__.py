"""Workload generators: routing tables and synthetic IPv6 traffic."""

from repro.workload.packets import (
    PACKET_SIZE_MIX,
    build_datagram,
    forwarding_workload,
    mean_packet_bytes,
    worst_case_workload,
)
from repro.workload.fib import (
    FIB_LENGTH_WEIGHTS,
    FibProfile,
    synthesize_fib,
    zipf_addresses,
)
from repro.workload.tables import (
    PREFIX_LENGTH_MIX,
    addresses_for_routes,
    address_inside,
    generate_routes,
    random_prefix,
)

__all__ = [
    "PACKET_SIZE_MIX", "build_datagram", "forwarding_workload",
    "mean_packet_bytes", "worst_case_workload",
    "PREFIX_LENGTH_MIX", "addresses_for_routes", "address_inside",
    "generate_routes", "random_prefix",
    "FIB_LENGTH_WEIGHTS", "FibProfile", "synthesize_fib", "zipf_addresses",
]
