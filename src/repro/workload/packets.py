"""Synthetic IPv6 traffic generation.

Produces real, parseable datagrams whose byte images feed the TACO data
memory. The throughput constraint enters the evaluation as a packet rate:
at 10 Gbps, rate = 10^9 * 10 / (8 * mean_packet_bytes); the calibration
constant lives in :mod:`repro.estimation.frequency`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.ipv6.address import Ipv6Address
from repro.ipv6.header import PROTO_UDP
from repro.ipv6.packet import Ipv6Datagram
from repro.routing.entry import RouteEntry
from repro.workload.tables import addresses_for_routes

DEFAULT_HOP_LIMIT = 64

#: a simple 2003-era size mix (IMIX-like): many small, some medium, few big
PACKET_SIZE_MIX: Tuple[Tuple[int, float], ...] = (
    (64, 0.55), (506, 0.30), (1280, 0.15))


def mean_packet_bytes(mix: Sequence[Tuple[int, float]] = PACKET_SIZE_MIX) -> float:
    return sum(size * share for size, share in mix)


def build_datagram(destination: Ipv6Address, payload_bytes: int = 26,
                   source: Optional[Ipv6Address] = None,
                   hop_limit: int = DEFAULT_HOP_LIMIT) -> bytes:
    """One forwardable UDP-ish datagram of the requested payload size."""
    if source is None:
        source = Ipv6Address.parse("2001:db8:feed::1")
    payload = bytes((i * 31 + 7) & 0xFF for i in range(payload_bytes))
    datagram = Ipv6Datagram.build(source=source, destination=destination,
                                  next_header=PROTO_UDP, payload=payload,
                                  hop_limit=hop_limit)
    return datagram.to_bytes()


def forwarding_workload(routes: Sequence[RouteEntry], packet_count: int,
                        seed: int = 77,
                        default_route_fraction: float = 0.0,
                        payload_bytes: int = 26,
                        interface_count: int = 4) -> List[Tuple[int, bytes]]:
    """(input interface, datagram bytes) pairs for a forwarding run."""
    rng = random.Random(seed + 1)
    addresses = addresses_for_routes(routes, packet_count, seed=seed,
                                     default_route_fraction=default_route_fraction)
    return [(rng.randrange(interface_count), build_datagram(a, payload_bytes))
            for a in addresses]


def worst_case_workload(routes: Sequence[RouteEntry], packet_count: int,
                        seed: int = 77,
                        interface_count: int = 4) -> List[Tuple[int, bytes]]:
    """Every packet matches only the default route: the full-scan case the
    paper's minimum-clock figures must guarantee."""
    return forwarding_workload(routes, packet_count, seed=seed,
                               default_route_fraction=1.0,
                               interface_count=interface_count)
