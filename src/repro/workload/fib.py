"""Realistic large-FIB synthesis: skewed lengths, aggregatable blocks,
Zipf traffic.

``generate_routes`` (tables.py) draws prefixes independently and
uniformly, which is fine at the paper's 100-entry design point but
wrong at FIB scale: real IPv6 tables are dominated by /48 site routes
and /32 provider allocations, and more-specific prefixes overwhelmingly
nest inside announced provider blocks. This module synthesizes FIBs
with those properties:

* **Skewed prefix-length distribution** — a BGP-table-shaped histogram
  (most mass on /48 and /32, a long tail elsewhere) instead of a
  uniform choice.
* **Aggregatable allocations** — provider /24–/32 blocks are drawn
  first; site and subnet prefixes are then carved *inside* a
  Zipf-chosen provider block, so the nesting depth and shared-stem
  structure match deployed tables (this is what exercises enclosing
  chains, trie compression, and per-length table occupancy
  realistically).
* **Zipf-skewed traffic** — ``zipf_addresses`` ranks routes by a
  Zipf(s) law so a handful of hot prefixes absorb most lookups, the
  standard traffic model for cache-friendliness studies.

Everything is deterministic in the seed, so campaign cells remain
byte-identical across runs, resumes, and process pools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.routing.entry import RouteEntry
from repro.workload.tables import GLOBAL_UNICAST_PREFIX, address_inside

#: (prefix length, weight) histogram shaped like a contemporary BGP
#: IPv6 table: /48 site routes dominate, /32 provider allocations next,
#: with a tail of intermediate aggregates and /64 subnet leaks.
FIB_LENGTH_WEIGHTS: Tuple[Tuple[int, int], ...] = (
    (29, 2), (32, 24), (36, 5), (40, 7), (44, 6),
    (48, 45), (56, 4), (64, 7),
)

#: fraction of non-provider prefixes carved inside an existing provider
#: block (the aggregatable share; the rest are independent allocations)
AGGREGATABLE_FRACTION = 0.8

#: lengths at or below this are treated as provider blocks
PROVIDER_MAX_LENGTH = 32

DEFAULT_ZIPF_EXPONENT = 1.1


@dataclass(frozen=True)
class FibProfile:
    """Tunable knobs of the synthesizer (defaults model a BGP table)."""

    length_weights: Tuple[Tuple[int, int], ...] = FIB_LENGTH_WEIGHTS
    aggregatable_fraction: float = AGGREGATABLE_FRACTION
    provider_max_length: int = PROVIDER_MAX_LENGTH
    include_default: bool = True

    def lengths(self) -> List[int]:
        return [length for length, _ in self.length_weights]

    def weights(self) -> List[int]:
        return [weight for _, weight in self.length_weights]


def _global_unicast(value: int) -> int:
    """Force the top three bits to 001 (2000::/3) like tables.py does."""
    return (value & ~(0b111 << 125)) | (0b001 << 125)


def synthesize_fib(prefix_count: int, interface_count: int = 4,
                   seed: int = 2026,
                   profile: FibProfile = FibProfile()) -> List[RouteEntry]:
    """*prefix_count* unique routes with realistic FIB structure.

    The default route is included in the count (as in
    ``generate_routes``); provider blocks are synthesized first so
    later, longer prefixes can nest inside them.
    """
    if prefix_count < 1:
        raise ValueError(f"need at least one prefix: {prefix_count}")
    rng = random.Random(seed)
    routes: List[RouteEntry] = []
    seen = set()

    def emit(prefix: Ipv6Prefix, metric: int = 1) -> bool:
        if prefix in seen:
            return False
        seen.add(prefix)
        routes.append(RouteEntry(
            prefix=prefix,
            next_hop=Ipv6Address(GLOBAL_UNICAST_PREFIX | len(routes)),
            interface=len(routes) % interface_count,
            metric=metric))
        return True

    if profile.include_default:
        emit(Ipv6Prefix.parse("::/0"))

    lengths = profile.lengths()
    weights = profile.weights()
    provider_lengths = [length for length in lengths
                        if length <= profile.provider_max_length]
    providers: List[Ipv6Prefix] = []
    # Zipf-ranked providers: provider i is chosen with weight 1/(i+1),
    # so early (large) providers accumulate the most customer routes.
    provider_harmonic: List[float] = []

    def pick_provider() -> Ipv6Prefix:
        total = provider_harmonic[-1]
        roll = rng.random() * total
        lo, hi = 0, len(provider_harmonic) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if provider_harmonic[mid] < roll:
                lo = mid + 1
            else:
                hi = mid
        return providers[lo]

    while len(routes) < prefix_count:
        length = rng.choices(lengths, weights=weights)[0]
        if length <= profile.provider_max_length or not providers \
                or rng.random() >= profile.aggregatable_fraction:
            # Independent allocation anywhere in 2000::/3.
            value = _global_unicast(rng.getrandbits(128))
            prefix = Ipv6Prefix.of(Ipv6Address(value), length)
        else:
            # Carve a more-specific prefix inside a hot provider block.
            block = pick_provider()
            if length <= block.length:
                continue
            sub_bits = rng.getrandbits(128) & ~block.mask()
            prefix = Ipv6Prefix.of(
                Ipv6Address(block.network.value | sub_bits), length)
        if not emit(prefix):
            continue
        if length in provider_lengths:
            providers.append(prefix)
            previous = provider_harmonic[-1] if provider_harmonic else 0.0
            provider_harmonic.append(previous + 1.0 / len(providers))
    return routes


def zipf_addresses(routes: Sequence[RouteEntry], count: int,
                   seed: int = 77,
                   exponent: float = DEFAULT_ZIPF_EXPONENT) -> List[Ipv6Address]:
    """*count* destination addresses, Zipf(*exponent*)-skewed over *routes*.

    Routes are ranked in a seed-deterministic shuffle; rank r receives
    weight ``1/(r+1)^exponent``, so a few hot prefixes dominate the
    traffic. Sampling uses an inverse-CDF binary search, O(log n) per
    address, so million-route tables stay cheap.
    """
    if count < 0:
        raise ValueError(f"negative address count: {count}")
    if not routes:
        raise ValueError("no routes to draw traffic for")
    rng = random.Random(seed)
    ranked = list(routes)
    rng.shuffle(ranked)
    cumulative: List[float] = []
    total = 0.0
    for rank in range(len(ranked)):
        total += 1.0 / ((rank + 1) ** exponent)
        cumulative.append(total)
    out: List[Ipv6Address] = []
    for _ in range(count):
        roll = rng.random() * total
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < roll:
                lo = mid + 1
            else:
                hi = mid
        out.append(address_inside(ranked[lo].prefix, rng))
    return out
