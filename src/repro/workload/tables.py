"""Synthetic routing-table workloads.

The paper's design constraint is "a maximum size of 100 entries" (§4);
these generators produce tables of any size with a 2003-flavoured prefix
length mix and a default route, plus address generators that hit chosen
entries — the inputs for both the Table 1 measurement and the ablations.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.routing.entry import RouteEntry

#: prefix length distribution: global IPv6 policy of the era allocated
#: /16..  /48 to providers/sites and /64 to subnets
PREFIX_LENGTH_MIX = (16, 24, 32, 32, 48, 48, 48, 64)

#: global-unicast space (2000::/3) keeps generated routes away from the
#: multicast/link-local ranges the router's validation stage filters out
GLOBAL_UNICAST_PREFIX = 0x2000 << 112


def random_prefix(rng: random.Random,
                  length: Optional[int] = None) -> Ipv6Prefix:
    """A random global-unicast prefix (never the default route)."""
    if length is None:
        length = rng.choice(PREFIX_LENGTH_MIX)
    value = GLOBAL_UNICAST_PREFIX | (rng.getrandbits(125))
    # keep the top three bits = 001 (2000::/3)
    value = (value & ~(0b111 << 125)) | (0b001 << 125)
    return Ipv6Prefix.of(Ipv6Address(value), length)


def generate_routes(entry_count: int, interface_count: int = 4,
                    seed: int = 2003,
                    include_default: bool = True) -> List[RouteEntry]:
    """*entry_count* unique routes, default route included in the count."""
    if entry_count < 1:
        raise ValueError(f"need at least one entry: {entry_count}")
    rng = random.Random(seed)
    routes: List[RouteEntry] = []
    seen = set()
    if include_default:
        routes.append(RouteEntry(
            prefix=Ipv6Prefix.parse("::/0"),
            next_hop=Ipv6Address.parse("fe80::1"),
            interface=0, metric=1))
        seen.add(routes[0].prefix)
    while len(routes) < entry_count:
        prefix = random_prefix(rng)
        if prefix in seen:
            continue
        seen.add(prefix)
        routes.append(RouteEntry(
            prefix=prefix,
            next_hop=Ipv6Address(GLOBAL_UNICAST_PREFIX | len(routes)),
            interface=len(routes) % interface_count,
            metric=1 + rng.randrange(8)))
    return routes


def address_inside(prefix: Ipv6Prefix, rng: random.Random) -> Ipv6Address:
    """A random address covered by *prefix* (unicast-safe for ::/0)."""
    host_bits = rng.getrandbits(128) & ~prefix.mask() & ((1 << 128) - 1)
    value = prefix.network.value | host_bits
    if prefix.length == 0:
        # steer the default-route case into global unicast space
        value = (value & ((1 << 125) - 1)) | (0b001 << 125)
    return Ipv6Address(value)


def addresses_for_routes(routes: Sequence[RouteEntry], count: int,
                         seed: int = 77,
                         default_route_fraction: float = 0.0) -> List[Ipv6Address]:
    """Destination addresses matching random routes from *routes*.

    *default_route_fraction* of them fall outside every specific prefix
    (matching only the default route), which drives the worst-case scan of
    the sequential implementation.
    """
    rng = random.Random(seed)
    specific = [r for r in routes if r.prefix.length > 0]
    default = [r for r in routes if r.prefix.length == 0]
    out: List[Ipv6Address] = []
    while len(out) < count:
        roll_default = rng.random() < default_route_fraction or not specific
        if roll_default and default:
            address = address_inside(default[0].prefix, rng)
            if any(r.prefix.contains(address) for r in specific):
                continue
        else:
            address = address_inside(rng.choice(specific).prefix, rng)
        out.append(address)
    return out
