"""Self-healing campaign service: queue, cache, supervision, chaos.

The DSE layer's runners (:mod:`repro.dse.campaign`,
:mod:`repro.dse.parallel`) are libraries you call; this package turns
them into a *service* you submit to:

* :mod:`repro.service.jobs` — the persistent job queue
  (:class:`CampaignService`): submit/status/poll/fetch/cancel over a
  crash-recoverable spool directory;
* :mod:`repro.service.supervisor` — heartbeats, probe/job deadlines,
  capped backoff with jitter, and pool degradation
  (:class:`SupervisedCampaignRunner`, :class:`SupervisionPolicy`);
* :mod:`repro.service.cache` — the content-addressed, SHA-256
  integrity-checked evaluation cache (:class:`EvaluationCache`);
* :mod:`repro.service.chaos` — the service-level chaos harness that
  proves the whole stack recovers to byte-identical results
  (:func:`run_service_chaos`).
"""

from repro.service.cache import CACHE_VERSION, EvaluationCache, \
    record_checksum
from repro.service.chaos import ChaosPhase, ServiceChaosReport, \
    run_service_chaos
from repro.service.jobs import (
    JOB_STATES,
    PLAN_KINDS,
    CampaignService,
    JobRecord,
    normalise_plan,
    plan_configs,
)
from repro.service.supervisor import SupervisedCampaignRunner, \
    SupervisionPolicy

__all__ = [
    "CACHE_VERSION",
    "CampaignService",
    "ChaosPhase",
    "EvaluationCache",
    "JOB_STATES",
    "JobRecord",
    "PLAN_KINDS",
    "normalise_plan",
    "plan_configs",
    "record_checksum",
    "run_service_chaos",
    "ServiceChaosReport",
    "SupervisedCampaignRunner",
    "SupervisionPolicy",
]
