"""Service-level chaos: prove the campaign service heals itself.

The link-level chaos scenario (:mod:`repro.faults.scenario`) attacks the
*simulated* network; this harness attacks the *service* — worker
processes, cache entries, journals, and the service process itself — and
asserts the one contract that matters: **every fetched result is
byte-identical to a clean sequential run**, every induced fault is
visible in counters, and the cache actually pays for itself.

Phases (each compares records + render against the clean baseline):

1. ``cold-service``  — no faults; a plain service run populates the cache;
2. ``warm-cache``    — the same sweep resubmitted; must be all cache hits
   and at least ``speedup_floor`` times faster than the cold run;
3. ``cache-corruption`` — one cache entry bit-flipped, another truncated;
   both must be detected, quarantined, and recomputed;
4. ``worker-kill``   — one worker dies (``os._exit``) mid-sweep; the pool
   is rebuilt, the victim configuration re-probed, the pool shrunk;
5. ``worker-stall``  — one worker sleeps past the heartbeat deadline; the
   supervisor terminates the pool and the probe machinery recovers;
6. ``crash-restart`` — the service "dies" mid-job (journal cut short with
   a torn tail record, job left ``running``); a fresh service instance
   recovers the job and resumes it from the journal;
7. ``obs-visibility`` — every fault injected above must have left a trace
   in the process-wide metrics registry (skipped when metrics are
   disabled; the per-phase instance counters above still apply).

All faults are seeded and one-shot (sentinel files), so the harness is
deterministic in everything except wall-clock timings.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dse.campaign import CampaignRunner, load_journal
from repro.faults.process import ChaosEvaluatorFactory, corrupt_file, \
    truncate_file
from repro.obs import get_registry
from repro.service.jobs import CampaignService, plan_configs
from repro.service.supervisor import SupervisionPolicy

DEFAULT_SPEEDUP_FLOOR = 5.0


@dataclass
class ChaosPhase:
    """Outcome of one chaos phase."""

    name: str
    passed: bool
    details: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        verdict = "ok" if self.passed else "FAILED"
        detail = ", ".join(f"{k}={v}" for k, v in sorted(
            self.details.items()))
        return f"{self.name:<18} {verdict:<7} {detail}"


@dataclass
class ServiceChaosReport:
    """What the chaos campaign proved (or failed to prove)."""

    phases: List[ChaosPhase]
    cold_seconds: float
    warm_seconds: float
    speedup_floor: float

    @property
    def speedup(self) -> float:
        return self.cold_seconds / self.warm_seconds \
            if self.warm_seconds > 0 else float("inf")

    @property
    def passed(self) -> bool:
        return all(phase.passed for phase in self.phases)

    def render(self) -> str:
        lines = ["service chaos campaign:"]
        for phase in self.phases:
            lines.append("  " + phase.render())
        lines.append(
            f"  warm-cache speedup: {self.speedup:.1f}x "
            f"(cold {self.cold_seconds:.3f}s, warm {self.warm_seconds:.3f}s,"
            f" floor {self.speedup_floor:.1f}x)")
        lines.append("PASSED" if self.passed else "FAILED")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "phases": [{"name": p.name, "passed": p.passed,
                        "details": p.details} for p in self.phases],
            "cold_seconds": self.cold_seconds,
            "warm_seconds": self.warm_seconds,
            "speedup": self.speedup,
            "speedup_floor": self.speedup_floor,
            "passed": self.passed,
        }


def _matches_baseline(document: Dict[str, object],
                      baseline_records: List[Dict[str, object]],
                      baseline_render: str) -> bool:
    """The byte-identity contract: journal records and rendered artifact
    (both deliberately free of resume/cache bookkeeping) must match."""
    return document["result"]["records"] == baseline_records \
        and document["render"] == baseline_render


def run_service_chaos(root: str, *,
                      entries: int = 10,
                      packets: int = 2,
                      jobs: int = 2,
                      seed: int = 0,
                      heartbeat_seconds: float = 0.5,
                      stall_seconds: float = 2.5,
                      speedup_floor: float = DEFAULT_SPEEDUP_FLOOR
                      ) -> ServiceChaosReport:
    """Run the full chaos campaign under *root* (a scratch directory)."""
    from functools import partial

    from repro.dse.evaluator import ArchitectureEvaluator

    plan = {"kind": "table1", "entries": entries, "packets": packets}
    factory = partial(ArchitectureEvaluator, table_entries=entries,
                      packet_batch=packets, detect_hazards=False)
    configs = plan_configs(
        {"kind": "table1", "entries": entries, "packets": packets,
         "hazards": False})
    supervision = SupervisionPolicy(heartbeat_seconds=heartbeat_seconds)
    phases: List[ChaosPhase] = []

    # clean sequential ground truth (no service, no cache, no pool)
    baseline = CampaignRunner(factory()).run(configs)
    baseline_records = baseline.records
    baseline_render = baseline.render()

    # -- phase 1: cold service run -------------------------------------------------
    main_root = os.path.join(root, "svc-main")
    service = CampaignService(main_root, jobs=jobs, seed=seed,
                              supervision=supervision)
    cold_id = service.submit(plan)
    t0 = time.perf_counter()
    service.run_pending()
    cold_seconds = time.perf_counter() - t0
    cold = service.fetch(cold_id)
    phases.append(ChaosPhase(
        "cold-service",
        _matches_baseline(cold, baseline_records, baseline_render),
        {"evaluated": len(configs),
         "cache_hits": cold["service"]["cache_hits"]}))

    # -- phase 2: warm cache must be hits-only and fast ----------------------------
    warm_id = service.submit(plan)
    t0 = time.perf_counter()
    service.run_pending()
    warm_seconds = time.perf_counter() - t0
    warm = service.fetch(warm_id)
    warm_ok = _matches_baseline(warm, baseline_records, baseline_render) \
        and warm["service"]["cache_hits"] == len(configs) \
        and cold_seconds >= speedup_floor * warm_seconds
    phases.append(ChaosPhase(
        "warm-cache", warm_ok,
        {"cache_hits": warm["service"]["cache_hits"],
         "speedup": f"{cold_seconds / max(warm_seconds, 1e-9):.1f}x"}))

    # -- phase 3: corrupt + truncate cache entries ---------------------------------
    cache = service.last_runner.cache
    victims = [cache.entry_path(record["key"])
               for record in baseline_records[:2]]
    corrupt_file(victims[0], seed=seed)
    truncate_file(victims[1], keep_fraction=0.5)
    heal_id = service.submit(plan)
    service.run_pending()
    healed = service.fetch(heal_id)
    corrupt_seen = healed["service"]["cache_corrupt"]
    phases.append(ChaosPhase(
        "cache-corruption",
        _matches_baseline(healed, baseline_records, baseline_render)
        and corrupt_seen == 2
        and healed["service"]["cache_hits"] == len(configs) - 2,
        {"corrupt_detected": corrupt_seen,
         "recomputed": len(configs) - healed["service"]["cache_hits"]}))

    # -- phase 4: kill a worker mid-sweep ------------------------------------------
    kill_root = os.path.join(root, "svc-kill")
    kill_service = CampaignService(
        kill_root, jobs=max(jobs, 2), seed=seed, supervision=supervision,
        evaluator_wrapper=lambda inner: ChaosEvaluatorFactory(
            inner, sentinel_dir=os.path.join(kill_root, "sentinels"),
            kill_config=configs[len(configs) // 2]))
    kill_id = kill_service.submit(plan)
    kill_service.run_pending()
    killed = kill_service.fetch(kill_id)
    phases.append(ChaosPhase(
        "worker-kill",
        _matches_baseline(killed, baseline_records, baseline_render)
        and killed["service"]["worker_crashes"] >= 1
        and killed["service"]["pool_shrinks"] >= 1,
        {"worker_crashes": killed["service"]["worker_crashes"],
         "pool_shrinks": killed["service"]["pool_shrinks"],
         "final_pool_size": killed["service"]["final_pool_size"]}))

    # -- phase 5: stall a worker past the heartbeat deadline -----------------------
    stall_root = os.path.join(root, "svc-stall")
    stall_service = CampaignService(
        stall_root, jobs=max(jobs, 2), seed=seed,
        supervision=supervision,
        evaluator_wrapper=lambda inner: ChaosEvaluatorFactory(
            inner, sentinel_dir=os.path.join(stall_root, "sentinels"),
            stall_config=configs[len(configs) // 3],
            stall_seconds=stall_seconds))
    stall_id = stall_service.submit(plan)
    stall_service.run_pending()
    stalled = stall_service.fetch(stall_id)
    phases.append(ChaosPhase(
        "worker-stall",
        _matches_baseline(stalled, baseline_records, baseline_render)
        and stalled["service"]["stalls"] >= 1,
        {"stalls": stalled["service"]["stalls"]}))

    # -- phase 6: service crash mid-job, restart, resume ---------------------------
    crash_root = os.path.join(root, "svc-crash")
    crash_service = CampaignService(crash_root, jobs=1, seed=seed,
                                    supervision=supervision)
    crash_id = crash_service.submit(plan)
    # run the first third of the sweep directly against the job's
    # journal, then die: the journal holds a clean prefix...
    partial_runner = crash_service._make_runner(
        crash_service.status(crash_id))
    partial_runner.run(configs[:len(configs) // 3])
    # ...plus a torn tail record (the crash hit mid-append)...
    journal = crash_service._journal_path(crash_id)
    clean_records = len(load_journal(journal)[0])
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "key": "torn-mid-wr')
    # ...and the job file still says "running"
    crashed_job = crash_service.status(crash_id)
    crashed_job.state = "running"
    crash_service._save(crashed_job)

    restarted = CampaignService(crash_root, jobs=1, seed=seed,
                                supervision=supervision)
    recovered = restarted.recover()
    restarted.run_pending()
    resumed = restarted.fetch(crash_id)
    phases.append(ChaosPhase(
        "crash-restart",
        _matches_baseline(resumed, baseline_records, baseline_render)
        and recovered == [crash_id]
        and resumed["result"]["resumed"] == clean_records
        and resumed["result"]["discarded_records"] == 1,
        {"recovered_jobs": len(recovered),
         "resumed_evaluations": resumed["result"]["resumed"],
         "torn_records_discarded":
             resumed["result"]["discarded_records"]}))

    # -- phase 7: every induced fault must be observable ---------------------------
    registry = get_registry()
    if registry.enabled:
        snapshot = registry.snapshot()
        counters = snapshot["counters"]

        def total(name: str, **labels: str) -> float:
            entry = counters.get(name)
            if entry is None:
                return 0.0
            return sum(
                sample["value"] for sample in entry["values"]
                if all(sample["labels"].get(k) == v
                       for k, v in labels.items()))

        observed = {
            "worker_crashes": total("dse_worker_crashes_total"),
            "stalls": total("service_worker_stalls_total"),
            "cache_corrupt": total("service_cache_requests_total",
                                   result="corrupt"),
            "cache_quarantined": total("service_cache_quarantined_total"),
            "recovered_jobs": total("service_recovered_jobs_total"),
            "pool_shrinks": total("service_pool_shrinks_total"),
        }
        phases.append(ChaosPhase(
            "obs-visibility",
            observed["worker_crashes"] >= 1 and observed["stalls"] >= 1
            and observed["cache_corrupt"] >= 2
            and observed["cache_quarantined"] >= 2
            and observed["recovered_jobs"] >= 1
            and observed["pool_shrinks"] >= 1,
            observed))
    else:
        phases.append(ChaosPhase("obs-visibility", True,
                                 {"skipped": "metrics disabled"}))

    return ServiceChaosReport(phases=phases, cold_seconds=cold_seconds,
                              warm_seconds=warm_seconds,
                              speedup_floor=speedup_floor)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.service.chaos`` — standalone smoke entry."""
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        description="service-level chaos campaign")
    parser.add_argument("--root", default=None)
    parser.add_argument("--entries", type=int, default=10)
    parser.add_argument("--packets", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    root = args.root or tempfile.mkdtemp(prefix="service-chaos-")
    report = run_service_chaos(root, entries=args.entries,
                               packets=args.packets, jobs=args.jobs,
                               seed=args.seed)
    print(report.render())
    return 0 if report.passed else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
