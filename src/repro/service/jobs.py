"""The campaign service: a persistent, supervised job queue.

Turns the DSE engine from "a script you run" into "a service many users
hit": callers :meth:`~CampaignService.submit` a *plan* (a JSON-ready
sweep description) and get back a job id; the service executes queued
jobs under supervision (:mod:`repro.service.supervisor`) with an
integrity-checked evaluation cache (:mod:`repro.service.cache`), and
callers :meth:`~CampaignService.poll` progress and
:meth:`~CampaignService.fetch` results.

Everything is spooled to a *service root* directory with fsync'd atomic
writes, so the service itself obeys the same crash contract as its
campaigns::

    root/jobs/<job_id>.json      one atomic state document per job
    root/journals/<job_id>.jsonl the job's crash-safe campaign journal
    root/results/<job_id>.json   the completed result document
    root/cache/                  the shared evaluation cache

A service process that dies mid-job leaves the job in state ``running``
with its journal intact; :meth:`~CampaignService.recover` (run at every
service start) re-queues such jobs, and their re-execution *resumes*
from the journal — the fetched result is byte-identical to an
uninterrupted run. Because the queue lives on disk, ``submit`` and the
serve loop may run in different processes (the CLI's ``submit`` /
``serve`` subcommands).

Plans::

    {"kind": "table1", "entries": 20, "packets": 4, "hazards": false}
    {"kind": "sweep", "configs": [<config dict>...], "entries": 20,
     "packets": 4, "hazards": false}

Both kinds accept an optional ``"backend"`` key ("interpreter" |
"compiled" | "auto"); pool workers inherit the selection through the
evaluator factory. It is validated at submit time against
:mod:`repro.tta.backends`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dse.campaign import (
    CampaignPolicy,
    CampaignResult,
    config_from_dict,
    load_journal,
    write_atomic,
)
from repro.dse.config import TABLE_KINDS, paper_configurations
from repro.errors import (
    CampaignError,
    ConfigurationError,
    JobNotFoundError,
    JobTimeoutError,
    ServiceError,
)
from repro.obs import get_registry
from repro.service.cache import EvaluationCache
from repro.service.supervisor import (
    SupervisedCampaignRunner,
    SupervisionPolicy,
)

JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")

PLAN_KINDS = ("table1", "sweep")

#: infrastructure failure classes a job re-run may heal (each retry
#: resumes from the journal, so nothing completed is repeated)
_TRANSIENT_JOB_ERRORS = (OSError, MemoryError)


def normalise_plan(plan: Dict[str, object]) -> Dict[str, object]:
    """Validated, canonical-defaults copy of a job plan."""
    if not isinstance(plan, dict):
        raise ServiceError(f"a plan must be a dict, got {type(plan).__name__}")
    kind = plan.get("kind", "table1")
    if kind not in PLAN_KINDS:
        raise ServiceError(
            f"unknown plan kind {kind!r}; choose one of {PLAN_KINDS}")
    out: Dict[str, object] = {
        "kind": kind,
        "entries": int(plan.get("entries", 100)),
        "packets": int(plan.get("packets", 12)),
        "hazards": bool(plan.get("hazards", False)),
        "backend": plan.get("backend"),
    }
    if out["entries"] < 1 or out["packets"] < 1:
        raise ServiceError("entries and packets must be >= 1")
    if out["backend"] is not None:
        from repro.tta.backends import get_backend
        try:
            get_backend(str(out["backend"]))
        except ConfigurationError as exc:
            raise ServiceError(str(exc)) from None
        out["backend"] = str(out["backend"])
    if kind == "sweep":
        configs = plan.get("configs")
        if not isinstance(configs, list) or not configs:
            raise ServiceError("a sweep plan needs a non-empty "
                               "'configs' list")
        # round-trip through the dataclass now so a malformed config
        # fails at submit time, not minutes later inside a worker
        out["configs"] = [dataclasses.asdict(config_from_dict(payload))
                          for payload in configs]
    unknown = set(plan) - set(out) - {"kind"}
    if unknown:
        raise ServiceError(f"unknown plan fields: {sorted(unknown)}")
    return out


def plan_configs(plan: Dict[str, object]):
    """The configuration list a plan expands to, in sweep order."""
    if plan["kind"] == "table1":
        return [config for kind in TABLE_KINDS
                for config in paper_configurations(kind)]
    return [config_from_dict(payload) for payload in plan["configs"]]


@dataclass
class JobRecord:
    """One job's durable state (the ``jobs/<id>.json`` document)."""

    job_id: str
    plan: Dict[str, object]
    state: str = "queued"
    seq: int = 0
    attempts: int = 0
    error: Optional[str] = None
    #: summary of the completed run (evaluated/quarantined/cache_hits/...)
    summary: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id, "plan": self.plan, "state": self.state,
            "seq": self.seq, "attempts": self.attempts,
            "error": self.error, "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobRecord":
        return cls(job_id=payload["job_id"], plan=payload["plan"],
                   state=payload["state"], seq=payload.get("seq", 0),
                   attempts=payload.get("attempts", 0),
                   error=payload.get("error"),
                   summary=payload.get("summary", {}))

    def render(self) -> str:
        plan = self.plan
        describe = plan["kind"]
        if plan["kind"] == "sweep":
            describe += f"[{len(plan['configs'])}]"
        progress = ""
        if self.summary:
            progress = (f" evaluated={self.summary.get('evaluated', '?')}"
                        f" cache_hits={self.summary.get('cache_hits', '?')}")
        error = f" error={self.error}" if self.error else ""
        return (f"{self.job_id}  {self.state:<9} attempts={self.attempts} "
                f"plan={describe}{progress}{error}")


class CampaignService:
    """Supervised, cached, crash-recoverable campaign execution.

    One instance per *root*; many instances (processes) may share a root
    over time — the spool directory is the source of truth, every state
    transition is an fsync'd atomic write, and job execution is
    single-flight per service instance (``run_pending`` drains the queue
    in submission order).
    """

    def __init__(self, root: str, *,
                 jobs: int = 1,
                 cache: bool = True,
                 supervision: Optional[SupervisionPolicy] = None,
                 campaign_policy: Optional[CampaignPolicy] = None,
                 seed: int = 0,
                 evaluator_wrapper: Optional[Callable] = None,
                 sleep_fn: Callable[[float], None] = time.sleep):
        if jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {jobs}")
        self.root = root
        self.jobs = jobs
        self.cache_enabled = cache
        self.supervision = supervision or SupervisionPolicy()
        self.campaign_policy = campaign_policy
        self.seed = seed
        #: chaos/testing seam: wraps the picklable evaluator factory
        #: before it is handed to pool workers
        self.evaluator_wrapper = evaluator_wrapper
        self.sleep_fn = sleep_fn
        self.last_runner: Optional[SupervisedCampaignRunner] = None
        for sub in ("jobs", "journals", "results", "cache"):
            os.makedirs(os.path.join(root, sub), exist_ok=True)

    # -- paths --------------------------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.root, "jobs", f"{job_id}.json")

    def _journal_path(self, job_id: str) -> str:
        return os.path.join(self.root, "journals", f"{job_id}.jsonl")

    def _result_path(self, job_id: str) -> str:
        return os.path.join(self.root, "results", f"{job_id}.json")

    # -- queue operations ---------------------------------------------------------

    def submit(self, plan: Dict[str, object]) -> str:
        """Validate *plan*, enqueue it, and return its job id.

        Ids are deterministic in (queue position, plan content):
        ``job-NNNN-<plan digest>``.
        """
        plan = normalise_plan(plan)
        seq = 1 + max((job.seq for job in self.list_jobs()), default=0)
        digest = hashlib.sha256(json.dumps(
            plan, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()[:8]
        job = JobRecord(job_id=f"job-{seq:04d}-{digest}", plan=plan,
                        seq=seq)
        self._save(job)
        self._count_state("queued")
        return job.job_id

    def status(self, job_id: str) -> JobRecord:
        path = self._job_path(job_id)
        try:
            with open(path, encoding="utf-8") as handle:
                return JobRecord.from_dict(json.load(handle))
        except FileNotFoundError:
            raise JobNotFoundError(f"no job {job_id!r} under {self.root}") \
                from None

    def list_jobs(self) -> List[JobRecord]:
        directory = os.path.join(self.root, "jobs")
        jobs = []
        for name in os.listdir(directory):
            if name.endswith(".json"):
                jobs.append(self.status(name[:-len(".json")]))
        return sorted(jobs, key=lambda job: job.seq)

    def poll(self, job_id: str) -> Dict[str, object]:
        """Point-in-time progress: state plus journalled/total counts.

        Readable while the job runs (possibly in another process) — the
        journal is append-only, so a concurrent read sees a prefix.
        """
        job = self.status(job_id)
        total = len(plan_configs(job.plan))
        done = 0
        journal = self._journal_path(job_id)
        if os.path.exists(journal):
            try:
                records, _ = load_journal(journal)
                done = len({record["key"] for record in records})
            except CampaignError:
                done = 0  # damaged journal; the runner will diagnose it
        return {
            "job_id": job_id, "state": job.state, "attempts": job.attempts,
            "evaluations_total": total,
            "evaluations_done": min(done, total),
            "error": job.error,
        }

    def fetch(self, job_id: str) -> Dict[str, object]:
        """The completed job's result document (raises until complete)."""
        job = self.status(job_id)
        if job.state != "completed":
            raise ServiceError(
                f"{job_id} is {job.state}, not completed; poll until it "
                f"finishes" + (f" (error: {job.error})" if job.error
                               else ""))
        with open(self._result_path(job_id), encoding="utf-8") as handle:
            return json.load(handle)

    def cancel(self, job_id: str) -> JobRecord:
        job = self.status(job_id)
        if job.state != "queued":
            raise ServiceError(
                f"only queued jobs can be cancelled; {job_id} is "
                f"{job.state}")
        job.state = "cancelled"
        self._save(job)
        self._count_state("cancelled")
        return job

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> List[str]:
        """Re-queue jobs a dead service instance left ``running``.

        Their journals are intact (append-only, fsync'd), so the re-run
        resumes: completed evaluations are replayed, not repeated, and
        the final result is byte-identical to an uninterrupted run.
        """
        recovered = []
        registry = get_registry()
        for job in self.list_jobs():
            if job.state == "running":
                job.state = "queued"
                self._save(job)
                recovered.append(job.job_id)
                if registry.enabled:
                    registry.counter(
                        "service_recovered_jobs_total",
                        "running jobs re-queued after a service "
                        "crash/restart").inc()
        return recovered

    # -- execution ----------------------------------------------------------------

    def run_pending(self, max_jobs: Optional[int] = None) -> List[JobRecord]:
        """Execute queued jobs in submission order; returns their final
        records. Never raises for a failing job — failures are recorded
        on the job itself."""
        executed = []
        for job in self.list_jobs():
            if job.state != "queued":
                continue
            if max_jobs is not None and len(executed) >= max_jobs:
                break
            executed.append(self._execute(job))
        return executed

    def _execute(self, job: JobRecord) -> JobRecord:
        registry = get_registry()
        job.state = "running"
        job.attempts += 1
        job.error = None
        self._save(job)
        self._count_state("running")
        if registry.enabled:
            registry.gauge("service_active_jobs",
                           "jobs currently executing").inc()
        try:
            retries = 0
            while True:
                try:
                    campaign = self._run_campaign(job)
                    break
                except _TRANSIENT_JOB_ERRORS as exc:
                    if retries >= self.supervision.max_job_retries:
                        raise
                    retries += 1
                    job.attempts += 1
                    self._save(job)
                    if registry.enabled:
                        registry.counter(
                            "service_job_retries_total",
                            "transparent job re-runs after transient "
                            "infrastructure failures").inc()
                    self._retry_backoff(retries, exc)
            self._finish(job, campaign)
        except JobTimeoutError as exc:
            self._fail(job, f"timeout: {exc}")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self._fail(job, f"{type(exc).__name__}: {exc}")
        finally:
            if registry.enabled:
                registry.gauge("service_active_jobs",
                               "jobs currently executing").dec()
        return job

    def _run_campaign(self, job: JobRecord) -> CampaignResult:
        plan = job.plan
        runner = self._make_runner(job)
        self.last_runner = runner
        return runner.run(plan_configs(plan))

    def _make_runner(self, job: JobRecord) -> SupervisedCampaignRunner:
        from functools import partial

        from repro.dse.evaluator import ArchitectureEvaluator

        plan = job.plan
        factory = partial(ArchitectureEvaluator,
                          table_entries=plan["entries"],
                          packet_batch=plan["packets"],
                          detect_hazards=plan["hazards"],
                          backend=plan.get("backend"))
        if self.evaluator_wrapper is not None:
            factory = self.evaluator_wrapper(factory)
        cache = None
        if self.cache_enabled:
            namespace = {"entries": plan["entries"],
                         "packets": plan["packets"],
                         "hazards": plan["hazards"]}
            if plan.get("backend") is not None:
                # partition per engine so a fast-path regression can
                # never poison the interpreter's cached baseline (the
                # default namespace is preserved for legacy plans)
                namespace["backend"] = plan["backend"]
            cache = EvaluationCache(
                os.path.join(self.root, "cache"), namespace=namespace)
        journal = self._journal_path(job.job_id)
        return SupervisedCampaignRunner(
            factory, jobs=self.jobs, journal_path=journal,
            resume=os.path.exists(journal) and os.path.getsize(journal) > 0,
            policy=self.campaign_policy, supervision=self.supervision,
            cache=cache, seed=self.seed, sleep_fn=self.sleep_fn)

    def _finish(self, job: JobRecord, campaign: CampaignResult) -> None:
        runner = self.last_runner
        document = {
            "job_id": job.job_id,
            "plan": job.plan,
            "result": campaign.to_dict(),
            "render": campaign.render(),
            "service": {
                "attempts": job.attempts,
                "cache_hits": runner.cache_hits,
                "cache_corrupt": (runner.cache.corrupt
                                  if runner.cache else 0),
                "worker_crashes": runner.worker_crashes,
                "stalls": runner.stalls,
                "pool_shrinks": runner.pool_shrinks,
                "final_pool_size": runner.jobs,
            },
        }
        write_atomic(self._result_path(job.job_id),
                     json.dumps(document, indent=2, sort_keys=True) + "\n")
        job.state = "completed"
        job.summary = {
            "evaluated": len(campaign.results),
            "quarantined": len(campaign.quarantined),
            "resumed": campaign.resumed,
            "cache_hits": runner.cache_hits,
            "worker_crashes": runner.worker_crashes,
            "stalls": runner.stalls,
        }
        self._save(job)
        self._count_state("completed")

    def _fail(self, job: JobRecord, error: str) -> None:
        job.state = "failed"
        job.error = error
        self._save(job)
        self._count_state("failed")

    def _retry_backoff(self, attempt: int, exc: Exception) -> None:
        policy = self.supervision
        delay = min(policy.backoff_cap_seconds,
                    policy.backoff_base_seconds * (2 ** (attempt - 1)))
        self.sleep_fn(delay)

    # -- internals ----------------------------------------------------------------

    def _save(self, job: JobRecord) -> None:
        write_atomic(self._job_path(job.job_id),
                     json.dumps(job.to_dict(), indent=2, sort_keys=True)
                     + "\n")

    @staticmethod
    def _count_state(state: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_jobs_total",
                "job state transitions", ("state",)).inc(state=state)
