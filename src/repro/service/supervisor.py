"""Supervised campaign execution: heartbeats, deadlines, degradation.

:class:`SupervisedCampaignRunner` extends the parallel runner with the
control-plane duties a long-lived service owes its jobs — the split the
fast-programmable-router literature draws between a fast data path and a
resilient management plane:

* **heartbeats** — a per-worker liveness map refreshed on every chunk
  completion; if *no* chunk completes within the heartbeat deadline the
  pool is declared stalled, its workers are terminated (SIGTERM — they
  are stuck, so a join would block forever), and the in-flight work is
  resolved through the existing single-config probe machinery;
* **probe deadlines** — a probe that also stalls is terminated and its
  configuration quarantined as :class:`~repro.errors.WorkerStallError`,
  so one pathological configuration cannot wedge the service;
* **graceful degradation** — every broken pool generation (crash or
  stall) shrinks the pool by one worker down to ``min_jobs``, trading
  throughput for survival instead of aborting;
* **capped exponential backoff + jitter** — the pause before refilling
  a broken pool grows exponentially to a cap, with seeded jitter so a
  fleet of services does not refill in lockstep (and so tests replay
  deterministically);
* **per-job wall-clock deadline** — exceeded deadlines raise
  :class:`~repro.errors.JobTimeoutError` *after* persisting the record
  in hand: the journal keeps everything the job earned, so a retry
  resumes instead of restarting;
* **evaluation cache** — before dispatch, every configuration is looked
  up in an integrity-checked :class:`~repro.service.cache.EvaluationCache`;
  verified hits are seeded into the journal as if evaluated (byte-
  identical output), fresh successes are written back, and corrupt
  entries are quarantined and transparently recomputed.

With no supervision policy and no cache this class behaves exactly like
:class:`~repro.dse.parallel.ParallelCampaignRunner`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.dse.campaign import CampaignPolicy, CampaignResult
from repro.dse.config import ArchitectureConfiguration
from repro.dse.parallel import ParallelCampaignRunner
from repro.errors import JobTimeoutError
from repro.faults.seeds import derive_seed, make_rng
from repro.obs import get_registry
from repro.service.cache import EvaluationCache


@dataclass(frozen=True)
class SupervisionPolicy:
    """Liveness, retry, and degradation policy for supervised sweeps."""

    #: longest tolerated silence (no chunk completion) before the pool
    #: is declared stalled; None disables stall detection
    heartbeat_seconds: Optional[float] = 30.0
    #: wall-clock ceiling for a single-config probe (falls back to
    #: 2 x heartbeat when None and heartbeats are on)
    probe_timeout_seconds: Optional[float] = None
    #: wall-clock ceiling for one whole job; None = unlimited
    job_timeout_seconds: Optional[float] = None
    #: backoff before refilling a broken pool: min(cap, base * 2^(n-1))
    #: plus up to ``jitter`` of itself, seeded
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    jitter: float = 0.25
    #: shrink the pool by one worker after each broken generation, but
    #: never below this floor
    min_jobs: int = 1
    #: transparent job re-runs the service may attempt on transient
    #: infrastructure failures (the journal makes each retry a resume)
    max_job_retries: int = 2

    def effective_probe_timeout(self) -> Optional[float]:
        if self.probe_timeout_seconds is not None:
            return self.probe_timeout_seconds
        if self.heartbeat_seconds is not None:
            return 2.0 * self.heartbeat_seconds
        return None


class SupervisedCampaignRunner(ParallelCampaignRunner):
    """A :class:`ParallelCampaignRunner` under service supervision.

    *sleep_fn* / *time_fn* are injectable so tests replay backoff and
    deadline behaviour without real waiting; *seed* pins the backoff
    jitter stream.
    """

    def __init__(self, evaluator_factory,
                 jobs: int = 2,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 policy: Optional[CampaignPolicy] = None,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None,
                 supervision: Optional[SupervisionPolicy] = None,
                 cache: Optional[EvaluationCache] = None,
                 seed: int = 0,
                 sleep_fn: Callable[[float], None] = time.sleep,
                 time_fn: Callable[[], float] = time.monotonic):
        super().__init__(evaluator_factory, jobs=jobs,
                         journal_path=journal_path, resume=resume,
                         policy=policy, chunk_size=chunk_size,
                         start_method=start_method)
        self.supervision = supervision or SupervisionPolicy()
        self.cache = cache
        self.sleep_fn = sleep_fn
        self.time_fn = time_fn
        self._rng = make_rng(derive_seed(seed, "service-backoff"))
        #: pid -> last time the pool made progress while it was alive
        self.heartbeats: Dict[int, float] = {}
        self.stalls = 0
        self.pool_shrinks = 0
        self.cache_hits = 0
        self.backoff_seconds = 0.0
        self._broken_generations = 0
        self._deadline: Optional[float] = None

    # -- job deadline -------------------------------------------------------------

    def set_deadline(self, seconds: Optional[float]) -> None:
        """Arm (or clear) the per-job wall-clock deadline."""
        self._deadline = None if seconds is None \
            else self.time_fn() + seconds

    def _check_deadline(self) -> None:
        if self._deadline is not None and self.time_fn() > self._deadline:
            raise JobTimeoutError(
                f"job exceeded its "
                f"{self.supervision.job_timeout_seconds}s deadline; "
                f"progress so far is journalled and a retry will resume")

    # -- sweep driver with cache --------------------------------------------------

    def run(self, configs: Sequence[ArchitectureConfiguration]
            ) -> CampaignResult:
        if self.supervision.job_timeout_seconds is not None \
                and self._deadline is None:
            self.set_deadline(self.supervision.job_timeout_seconds)
        self._seed_from_cache(configs)
        return super().run(configs)

    def _seed_from_cache(self,
                         configs: Sequence[ArchitectureConfiguration]
                         ) -> None:
        """Install every verified cache hit before anything dispatches.

        Only ``ok`` records are ever cached (see :meth:`_persist`), so a
        transient failure in one campaign can never haunt the next."""
        if self.cache is None:
            return
        from repro.dse.campaign import config_key
        for config in configs:
            key = config_key(config)
            if key in self._records:
                continue
            record = self.cache.get(key)
            if record is not None:
                self.seed_record(key, record)
                self.cache_hits += 1

    def _persist(self, key, record):
        record = super()._persist(key, record)
        if self.cache is not None and record["status"] == "ok":
            self.cache.put(key, record)
        self._check_deadline()
        return record

    # -- supervision seams --------------------------------------------------------

    def _heartbeat_seconds(self) -> Optional[float]:
        return self.supervision.heartbeat_seconds

    def _probe_timeout_seconds(self) -> Optional[float]:
        return self.supervision.effective_probe_timeout()

    def _handle_stall(self, pool, in_flight) -> bool:
        """No completion within the heartbeat deadline: terminate the
        stuck workers and hand their work to the probe machinery."""
        self.stalls += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_worker_stalls_total",
                "pool teardowns after a missed heartbeat deadline").inc()
        self._terminate_pool_processes(pool)
        return True

    def _after_broken_generation(self, suspects: int) -> None:
        """Degrade and back off after a crash or stall generation."""
        self._broken_generations += 1
        if self.jobs > self.supervision.min_jobs:
            self.jobs -= 1
            self.pool_shrinks += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "service_pool_shrinks_total",
                    "workers removed from the pool after broken "
                    "generations").inc()
                registry.gauge(
                    "service_pool_size",
                    "current worker-pool size after degradation"
                ).set(self.jobs)
        self._backoff()

    def _backoff(self) -> None:
        policy = self.supervision
        delay = min(policy.backoff_cap_seconds,
                    policy.backoff_base_seconds
                    * (2 ** (self._broken_generations - 1)))
        delay *= 1.0 + policy.jitter * self._rng.random()
        self.backoff_seconds += delay
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_backoff_seconds_total",
                "seconds slept before refilling broken pools").inc(delay)
        self.sleep_fn(delay)

    # -- heartbeat bookkeeping ----------------------------------------------------

    def _observe_chunk(self, future, submitted_at, chunk_seconds,
                       registry) -> None:
        super()._observe_chunk(future, submitted_at, chunk_seconds,
                               registry)
        self._beat()

    def _beat(self) -> None:
        """Refresh the liveness map for every currently alive worker."""
        now = self.time_fn()
        for pid in list(self._alive_worker_pids()):
            self.heartbeats[pid] = now

    def _alive_worker_pids(self) -> List[int]:
        # multiprocessing keeps the authoritative list; fall back to the
        # recorded map when no pool is up
        import multiprocessing
        return [child.pid for child in multiprocessing.active_children()
                if child.pid is not None]
