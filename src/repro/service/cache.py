"""Content-addressed, integrity-checked evaluation cache.

Every campaign evaluation is a pure function of (workload namespace,
canonical configuration key) — the CRAM-lens observation applied to the
DSE layer: cached lookup state is a first-class, integrity-sensitive
structure, not a best-effort memo. The cache therefore persists journal
records (the same estimation-input records the crash-safe journal uses,
see :mod:`repro.dse.campaign`) under a content address derived from both
the namespace and the key, and refuses to *silently* serve damage:

* every entry carries a SHA-256 checksum of its canonical record line;
* a read verifies structure, version, key, namespace and checksum;
* any violation — torn JSON, truncation, bit rot, a record filed under
  the wrong key — is counted, the entry is **quarantined** (renamed to
  ``*.corrupt-N``, out of the lookup path but kept for forensics), and
  the caller simply recomputes;
* writes go through the fsync'd atomic-rename path, so a crash can
  never create a torn entry in the first place — quarantines indicate
  real external damage, not normal operation.

The namespace binds entries to the evaluation context (table entries,
packet batch, hazard detection, journal version): two services sweeping
different workloads never exchange records, even over a shared root.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from repro.dse.campaign import JOURNAL_VERSION, write_atomic
from repro.errors import CacheIntegrityError
from repro.obs import get_registry

CACHE_VERSION = 1


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_checksum(record: Dict[str, object]) -> str:
    """SHA-256 hex digest of a journal record's canonical JSON line."""
    return hashlib.sha256(_canonical(record).encode("utf-8")).hexdigest()


class EvaluationCache:
    """Persistent config-key → journal-record store with checksums.

    *namespace* is a JSON-ready dict describing everything besides the
    configuration that determines an evaluation's outcome (workload
    size, packet batch, hazard detection...). Records from one namespace
    are invisible to every other.

    Instance counters (``hits`` / ``misses`` / ``corrupt``) cover this
    object's lifetime; the same events are published to the process-wide
    metrics registry as ``service_cache_requests_total{result=...}`` and
    ``service_cache_quarantined_total``.
    """

    def __init__(self, root: str, namespace: Dict[str, object]):
        self.root = root
        self.namespace = dict(namespace)
        self.namespace["journal_v"] = JOURNAL_VERSION
        self.namespace["cache_v"] = CACHE_VERSION
        self._ns_line = _canonical(self.namespace)
        self._ns_digest = hashlib.sha256(
            self._ns_line.encode("utf-8")).hexdigest()[:16]
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        os.makedirs(self.root, exist_ok=True)

    # -- addressing ---------------------------------------------------------------

    def entry_path(self, key: str) -> str:
        """Content address of *key* within this namespace."""
        digest = hashlib.sha256(
            (self._ns_digest + "\n" + key).encode("utf-8")).hexdigest()
        return os.path.join(self.root, digest[:2], digest + ".json")

    # -- read/write ---------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The verified record for *key*, or ``None`` (miss or damage).

        Damage is never surfaced as a result: the corrupt entry is
        quarantined and ``None`` returned, so the caller recomputes and
        the next :meth:`put` heals the cache.
        """
        path = self.entry_path(key)
        try:
            # bytes, not text: bit rot can make an entry invalid UTF-8,
            # and that too must land in the quarantine path below
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            self._count("miss")
            return None
        try:
            record = self._verify(raw, key)
        except CacheIntegrityError:
            self.corrupt += 1
            self._count("corrupt")
            self._quarantine(path)
            return None
        self.hits += 1
        self._count("hit")
        return record

    def put(self, key: str, record: Dict[str, object]) -> str:
        """Store *record* under *key*; returns the entry path."""
        if record.get("key") != key:
            raise CacheIntegrityError(
                f"record key {record.get('key')!r} does not match the "
                f"requested cache key {key!r}")
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "v": CACHE_VERSION,
            "namespace": self.namespace,
            "key": key,
            "sha256": record_checksum(record),
            "record": record,
        }
        write_atomic(path, _canonical(entry) + "\n")
        return path

    # -- integrity ----------------------------------------------------------------

    def _verify(self, raw: bytes, key: str) -> Dict[str, object]:
        """Parse and authenticate one entry; raises on any violation."""
        try:
            entry = json.loads(raw.decode("utf-8"))
        except ValueError as exc:  # covers UnicodeDecodeError too
            raise CacheIntegrityError(f"unparseable entry: {exc}") from exc
        if not isinstance(entry, dict) or entry.get("v") != CACHE_VERSION:
            raise CacheIntegrityError("not a cache entry / wrong version")
        if entry.get("key") != key:
            raise CacheIntegrityError(
                "entry filed under the wrong key (hash collision or "
                "tampering)")
        if _canonical(entry.get("namespace", {})) != self._ns_line:
            raise CacheIntegrityError("entry from a different namespace")
        record = entry.get("record")
        if not isinstance(record, dict):
            raise CacheIntegrityError("entry carries no record")
        if record_checksum(record) != entry.get("sha256"):
            raise CacheIntegrityError("checksum mismatch (bit rot or a "
                                      "torn write)")
        if record.get("key") != key or "status" not in record:
            raise CacheIntegrityError("record does not match its entry")
        return record

    def _quarantine(self, path: str) -> None:
        """Move a damaged entry out of the lookup path, keeping it for
        forensics; a name clash (repeat damage) appends a counter."""
        for attempt in range(1000):
            target = f"{path}.corrupt-{attempt}"
            if not os.path.exists(target):
                try:
                    os.replace(path, target)
                except FileNotFoundError:
                    pass  # a concurrent reader already moved it
                break
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_cache_quarantined_total",
                "damaged cache entries moved aside for forensics").inc()

    @staticmethod
    def _count(result: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_cache_requests_total",
                "evaluation-cache lookups by result", ("result",)
            ).inc(result=result)
