"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class Ipv6Error(ReproError):
    """Malformed IPv6 address, header, or datagram."""


class ChecksumError(Ipv6Error):
    """A transport checksum failed verification."""


class RipngError(Ipv6Error):
    """Malformed or semantically invalid RIPng message."""


class RoutingTableError(ReproError):
    """Invalid routing-table operation (bad prefix, capacity exceeded...)."""


class TtaError(ReproError):
    """Errors in the TTA processor model (bad port, structural hazard...)."""


class AssemblyError(ReproError):
    """Errors while parsing, scheduling, or encoding TACO assembly."""


class ProgramError(TtaError):
    """A generated TACO program misbehaved during simulation."""


class EstimationError(ReproError):
    """Physical estimation was asked for an unsupported operating point."""


class ConfigurationError(ReproError):
    """An architecture configuration is structurally invalid."""


class FaultInjectionError(ReproError):
    """A fault-injection model or chaos scenario is misconfigured."""


class SimulationError(TtaError):
    """The cycle-accurate simulation detected an inconsistency."""
