"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class Ipv6Error(ReproError):
    """Malformed IPv6 address, header, or datagram."""


class ChecksumError(Ipv6Error):
    """A transport checksum failed verification."""


class RipngError(Ipv6Error):
    """Malformed or semantically invalid RIPng message."""


class RoutingTableError(ReproError):
    """Invalid routing-table operation (bad prefix, capacity exceeded...)."""


class TtaError(ReproError):
    """Errors in the TTA processor model (bad port, structural hazard...)."""


class AssemblyError(ReproError):
    """Errors while parsing, scheduling, or encoding TACO assembly."""


class ProgramError(TtaError):
    """A generated TACO program misbehaved during simulation."""


class EstimationError(ReproError):
    """Physical estimation was asked for an unsupported operating point."""


class ConfigurationError(ReproError):
    """An architecture configuration is structurally invalid."""


class FaultInjectionError(ReproError):
    """A fault-injection model or chaos scenario is misconfigured."""


class SimulationError(TtaError):
    """The cycle-accurate simulation detected an inconsistency.

    ``run`` optionally carries the partial/failed run artefact (a
    :class:`repro.programs.runner.ForwardingRunResult` or similar) so
    callers can diagnose a failure without re-simulating.
    """

    def __init__(self, message: str, *, run=None):
        super().__init__(message)
        self.run = run


class FunctionalMismatchError(SimulationError):
    """Simulated forwarding behaviour diverged from the golden model.

    Deterministic for a given configuration/workload: retrying cannot
    succeed, so campaign runners quarantine the configuration.
    """


class CycleBudgetError(SimulationError):
    """A program exceeded its cycle budget (did not halt in time).

    May be a genuinely runaway program or merely a budget set too low, so
    campaign runners retry once at a larger budget before quarantining.
    ``cycles`` is the budget that was exhausted, ``pc`` the program
    counter at the time, and ``loop`` an optional pc loop signature
    (see :mod:`repro.tta.hazards`). ``diagnosis`` is a human-readable
    watchdog verdict — the loop signature's rendering for a TTA run, or
    a :class:`repro.faults.watchdog.WatchdogDiagnosis` summary when the
    budget was exhausted at the network level — so hang classifiers
    (the differential oracle, campaign failure records) carry *why* the
    run spun, not just that it did.
    """

    def __init__(self, message: str, *, cycles: int = 0, pc: int = 0,
                 loop=None, run=None, diagnosis=None):
        super().__init__(message, run=run)
        self.cycles = cycles
        self.pc = pc
        self.loop = loop
        self.diagnosis = diagnosis


class ObservabilityError(ReproError):
    """A metrics instrument was misused (label/kind mismatch, negative
    counter increment...). Raised at the call site: instrument misuse is
    a programming error, never a runtime condition to tolerate."""


class ConformanceError(ReproError):
    """A conformance suite was misconfigured (unknown case, mutant,
    table kind...). Case *failures* are reported, never raised."""


class PcapError(ReproError):
    """A pcap file could not be read or written (bad magic, truncation)."""


class CampaignError(ReproError):
    """A design-space campaign is misconfigured or its journal is invalid."""


class WorkerCrashError(CampaignError):
    """A pool worker process died (signal, ``os._exit``, OOM kill...)
    while evaluating a configuration. Parallel campaigns quarantine the
    configuration and refill the pool instead of aborting the sweep."""


class WorkerStallError(CampaignError):
    """A pool worker stopped making progress: no chunk completed within
    the supervisor's heartbeat deadline. Supervised campaigns terminate
    the stalled pool, re-probe the in-flight configurations, and
    quarantine any configuration that stalls its prober too."""


class ServiceError(ReproError):
    """The campaign service was misused (bad plan, unknown job, fetch of
    an unfinished job...) or hit an unrecoverable infrastructure fault."""


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the service root."""


class JobTimeoutError(ServiceError):
    """A job exceeded its wall-clock deadline. Progress up to the
    deadline is journalled, so a retried/resubmitted job resumes instead
    of starting over."""


class CacheIntegrityError(ServiceError):
    """An evaluation-cache entry failed its integrity check (torn write,
    bit rot, truncation). Raised only by strict readers; the cache
    itself quarantines the entry and recomputes transparently."""


class EvaluationFailureError(SimulationError):
    """A campaign evaluation failed; ``failure`` holds the structured
    :class:`repro.dse.campaign.EvaluationFailure` record."""

    def __init__(self, message: str, *, failure=None):
        super().__init__(message)
        self.failure = failure
