"""Per-structure lookup cost models for the scaling Table-1 sweep.

The cycle-accurate TTA simulation that backs Table 1 is exact but
cannot execute against a million-prefix FIB in reasonable time (the
sequential program alone would issue ~10⁹ compare steps per datagram).
The lookup sweep therefore *measures* the pure-Python structures (mean
lookup steps over a synthesized FIB under Zipf traffic, plus the built
structure's memory footprint) and converts those measurements to
clock/area/power through the analytic models here.

Calibration
-----------
``cycles_per_packet = overhead + cycles_per_step × steps /
search_fu_sets`` for the software-searched structures, anchored at the
paper's 6 GHz point: the 1-bus sequential configuration at 100 entries
averages ~100 steps/lookup and 10 Gbps at 290 B/datagram is 4.31 Mpps,
so 6 GHz ⇒ ~1392 cycles/datagram ⇒ ~11.9 cycles per scanned entry on
top of a 200-cycle datagram-processing overhead. The hardware-searched
structures (CAM, trie, Bloom) spend their fixed search latency instead
of per-step cycles — the CAM's in wall-clock nanoseconds (resolved
against the clock by the same fixed point the evaluator uses), the
trie/Bloom's in pipeline cycles.

Area scales with the measured structure footprint via
``estimate_area(..., table_kbyte=...)``; CAM power scales with the
number of external chips the FIB occupies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Optional

from repro.dse.config import ArchitectureConfiguration
from repro.errors import EstimationError
from repro.estimation import technology as tech
from repro.estimation.area import AreaBreakdown, estimate_area
from repro.estimation.frequency import ThroughputConstraint
from repro.estimation.power import PowerBreakdown, estimate_power
from repro.routing.cam import CAM_WIDTH_BITS, CamPhysicalModel

#: datagram-processing cycles outside the table search (parse, validate,
#: hop limit, checksum, header rewrite, emit), per the calibration above
LOOKUP_OVERHEAD_CYCLES = 200.0

#: external CAM capacity per chip (the paper's example part is a 1 Mb
#: Micron Harmony); FIBs larger than one chip multiply its power draw
CAM_CHIP_BITS = 1 << 20


@dataclass(frozen=True)
class LookupCostParameters:
    """How a structure's measured steps become cycles per datagram."""

    #: cycles per examined element (software-searched structures)
    cycles_per_step: float
    #: the per-step work parallelizes over the FU search sets
    parallelizable: bool = True
    #: wall-clock search time replacing per-step cycles (CAM only)
    wall_clock_search_ns: float = 0.0


LOOKUP_COST_MODELS: Dict[str, LookupCostParameters] = {
    # ~11.9 cycles per scanned entry: the 6 GHz Table-1 anchor.
    "sequential": LookupCostParameters(cycles_per_step=11.9),
    # a tree step adds a pointer chase to the compare: slightly dearer
    "balanced-tree": LookupCostParameters(cycles_per_step=14.0),
    # the 40 ns CAM+SRAM search is a wall-clock constant
    "cam": LookupCostParameters(cycles_per_step=0.0, parallelizable=False,
                                wall_clock_search_ns=40.0),
    # one pipelined on-chip SRAM access per trie level
    "multibit-trie": LookupCostParameters(cycles_per_step=1.0,
                                          parallelizable=False),
    # filter-bank probe + each off-filter hash-table read
    "bloom": LookupCostParameters(cycles_per_step=1.0, parallelizable=False),
}


@dataclass(frozen=True)
class LookupEstimate:
    """One (kind, prefix_count) sweep cell: measurement + derived costs."""

    kind: str
    prefix_count: int
    mean_lookup_steps: float
    cycles_per_packet: float
    required_clock_hz: float
    feasible: bool
    table_memory_bytes: int
    area: AreaBreakdown
    power: PowerBreakdown

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "prefix_count": self.prefix_count,
            "mean_lookup_steps": self.mean_lookup_steps,
            "cycles_per_packet": self.cycles_per_packet,
            "required_clock_hz": self.required_clock_hz,
            "feasible": self.feasible,
            "table_memory_bytes": self.table_memory_bytes,
            "area_mm2": self.area.as_dict(),
            "power_w": {
                "processor": self.power.processor_w,
                "external_cam": self.power.external_cam_w,
                "system": self.power.system_w,
            },
        }


def _cam_fixed_point(constraint: ThroughputConstraint,
                     overhead_cycles: float,
                     search_ns: float) -> "tuple[float, float]":
    """(cycles_per_packet, clock) where the wall-clock search converges.

    Same shape as the evaluator's CAM fixed point: the search occupies
    ``ceil(search_ns × clock)`` cycles, and the clock that sustains the
    line rate depends on those cycles in turn.
    """
    latency = 1
    for _ in range(32):
        cycles = overhead_cycles + latency
        clock = constraint.required_clock(cycles)
        needed = max(1, math.ceil(search_ns * 1e-9 * clock))
        if needed == latency:
            return cycles, clock
        latency = needed
    raise EstimationError("CAM latency fixed point did not converge")


#: protection-word width per protected record, by mode (the hardware
#: cost of turning silent corruption into detected events)
PROTECTION_WORD_BITS: Dict[str, int] = {
    "none": 0,
    "parity": 1,
    "checksum": 32,
}


def estimate_protection_overhead(kind: str, protection: str,
                                 prefix_count: int,
                                 mean_lookup_steps: float,
                                 table_memory_bytes: int,
                                 protected_records: int,
                                 constraint: Optional[
                                     ThroughputConstraint] = None) -> dict:
    """Area/power cost of carrying parity/checksum words in the table.

    Prices the protected structure exactly like the unprotected one
    but with ``protected_records × word_bits`` of extra table SRAM —
    the same Table-1-style derivation the lookup sweep uses, so the
    vulnerability sweep can report SDC rate and protection cost side
    by side.
    """
    try:
        word_bits = PROTECTION_WORD_BITS[protection]
    except KeyError:
        raise EstimationError(
            f"unknown protection mode {protection!r}; choose from "
            f"{sorted(PROTECTION_WORD_BITS)}") from None
    if protected_records < 0:
        raise EstimationError(
            f"protected records must be non-negative: {protected_records}")
    config = ArchitectureConfiguration(bus_count=1, table_kind=kind)
    base = estimate_lookup_point(
        config, prefix_count, mean_lookup_steps, table_memory_bytes,
        constraint=constraint)
    overhead_bytes = -(-protected_records * word_bits // 8)
    shielded = estimate_lookup_point(
        config, prefix_count, mean_lookup_steps,
        table_memory_bytes + overhead_bytes, constraint=constraint)
    return {
        "protection": protection,
        "word_bits": word_bits,
        "protected_records": protected_records,
        "overhead_bytes": overhead_bytes,
        "overhead_ratio": (overhead_bytes / table_memory_bytes
                           if table_memory_bytes else 0.0),
        "area_mm2": shielded.area.total_mm2,
        "area_delta_mm2": shielded.area.total_mm2 - base.area.total_mm2,
        "power_w": shielded.power.system_w,
        "power_delta_w": shielded.power.system_w - base.power.system_w,
    }


def estimate_lookup_point(config: ArchitectureConfiguration,
                          prefix_count: int,
                          mean_lookup_steps: float,
                          table_memory_bytes: int,
                          constraint: Optional[ThroughputConstraint] = None,
                          bus_utilization: float = 1.0) -> LookupEstimate:
    """Derive clock/area/power for one measured sweep cell."""
    if prefix_count < 1:
        raise EstimationError(f"prefix count must be positive: {prefix_count}")
    if mean_lookup_steps < 0:
        raise EstimationError(f"negative mean steps: {mean_lookup_steps}")
    constraint = constraint or ThroughputConstraint()
    try:
        params = LOOKUP_COST_MODELS[config.table_kind]
    except KeyError:
        raise EstimationError(
            f"no lookup cost model for table kind "
            f"{config.table_kind!r}") from None

    if params.wall_clock_search_ns > 0.0:
        cycles, clock = _cam_fixed_point(
            constraint, LOOKUP_OVERHEAD_CYCLES, params.wall_clock_search_ns)
    else:
        steps = mean_lookup_steps
        if params.parallelizable:
            steps /= config.search_fu_sets
        cycles = LOOKUP_OVERHEAD_CYCLES + params.cycles_per_step * steps
        clock = constraint.required_clock(cycles)

    feasible = clock <= tech.MAX_CLOCK_HZ
    # Physical estimates are only meaningful inside the library's clock
    # range; infeasible cells are reported at the capped clock.
    capped = min(clock, tech.MAX_CLOCK_HZ)
    area = estimate_area(config, capped,
                         table_kbyte=table_memory_bytes / 1024.0)
    power = estimate_power(config, capped, bus_utilization=bus_utilization,
                           area=area)
    if config.table_kind == "cam":
        chips = max(1, math.ceil(
            prefix_count * CAM_WIDTH_BITS / CAM_CHIP_BITS))
        model = CamPhysicalModel()
        power = dc_replace(
            power, external_cam_w=chips * model.power_at(capped / 1e6))
    return LookupEstimate(
        kind=config.table_kind,
        prefix_count=prefix_count,
        mean_lookup_steps=mean_lookup_steps,
        cycles_per_packet=cycles,
        required_clock_hz=clock,
        feasible=feasible,
        table_memory_bytes=table_memory_bytes,
        area=area,
        power=power,
    )
