"""0.18 µm standard-cell technology constants and calibration targets.

The paper's physical numbers come from a proprietary Matlab estimation
model [8] driven by a 0.18 µm standard-cell library; neither is public.
This module is the single home of every technology constant we use in its
place, calibrated so the paper's qualitative anchors hold:

* "the upper limit for TACO clock frequencies using this technology is
  near 1 GHz" — :data:`MAX_CLOCK_HZ`;
* reaching clocks near the limit requires "larger gate sizes", inflating
  area and power — :func:`gate_sizing_factor`;
* the 1 GHz sequential configuration burns clearly unacceptable power,
  the 250–600 MHz tree configurations are borderline, and the sub-120 MHz
  CAM configurations are cheap — the power-density constant;
* the Micron Harmony 1 Mb CAM dissipates 1.5–2 W at 133 MHz (modelled in
  :class:`repro.routing.cam.CamPhysicalModel`).

Every constant is an engineering estimate, not a library datum; the
reproduction's claims rest on the *relative* picture.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import EstimationError

#: process feature size, for reports
FEATURE_SIZE_UM = 0.18

#: achievable clock ceiling for TACO logic in this library (paper §4)
MAX_CLOCK_HZ = 1.05e9

#: switching power density of active standard-cell logic, W per mm² per
#: GHz at nominal supply (0.18 µm, 1.8 V class designs)
POWER_DENSITY_W_PER_MM2_GHZ = 0.45

#: leakage is negligible at 0.18 µm but kept nonzero for completeness
LEAKAGE_W_PER_MM2 = 0.002

#: base cell area per functional unit type, mm² at relaxed timing.
#: Scaled from the TACO physical-characterisation work's order of
#: magnitude (a few mm² for a complete small processor).
FU_AREA_MM2: Dict[str, float] = {
    "matcher": 0.32,
    "comparator": 0.24,
    "counter": 0.38,
    "shifter": 0.42,
    "masker": 0.28,
    "checksum": 0.30,
    "mmu": 0.55,
    "rtu": 0.50,
    "ippu": 0.65,
    "oppu": 0.65,
    "liu": 0.15,
    "nc": 0.45,
}

#: register file: per-register area (32-bit, two ports)
GPR_AREA_MM2_PER_REGISTER = 0.012

#: interconnection network: per-bus backbone plus per-socket attach cost
BUS_AREA_MM2 = 0.22
SOCKET_AREA_MM2 = 0.06

#: on-chip SRAM density (data memory, sequential routing-table cache)
SRAM_MM2_PER_KBYTE = 0.085

#: activity factor: fraction of logic toggling in a typical cycle
DEFAULT_ACTIVITY = 0.35


def gate_sizing_factor(clock_hz: float,
                       max_clock_hz: float = MAX_CLOCK_HZ) -> float:
    """Area/power inflation from gate upsizing at aggressive clocks.

    Near the library limit, meeting timing requires exponentially larger
    drive strengths; we model the blow-up as ``1 + a·x² + b·x⁸`` with
    ``x = f/f_max`` — flat below ~40 % of the limit, about 1.6× at 80 %,
    and ~3.2× at the limit, diverging steeply beyond it.
    """
    if clock_hz <= 0:
        raise EstimationError(f"clock must be positive: {clock_hz}")
    x = clock_hz / max_clock_hz
    if x > 1.0:
        raise EstimationError(
            f"clock {clock_hz / 1e9:.2f} GHz exceeds the {FEATURE_SIZE_UM} µm "
            f"library limit ({max_clock_hz / 1e9:.2f} GHz)")
    return 1.0 + 1.1 * x ** 2 + 1.1 * x ** 8


def feasible(clock_hz: float, max_clock_hz: float = MAX_CLOCK_HZ) -> bool:
    """Can this library reach *clock_hz* at all?"""
    return 0 < clock_hz <= max_clock_hz
