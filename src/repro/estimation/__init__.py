"""System-level physical estimation (the paper's Matlab-model role)."""

from repro.estimation.area import AreaBreakdown, estimate_area
from repro.estimation.frequency import (
    CALIBRATION_PACKET_BYTES,
    LINE_RATE_BPS,
    ThroughputConstraint,
    packet_rate,
    required_clock_hz,
)
from repro.estimation.lookup import (
    LOOKUP_COST_MODELS,
    PROTECTION_WORD_BITS,
    LookupCostParameters,
    LookupEstimate,
    estimate_lookup_point,
    estimate_protection_overhead,
)
from repro.estimation.power import PowerBreakdown, estimate_power
from repro.estimation.technology import (
    MAX_CLOCK_HZ,
    feasible,
    gate_sizing_factor,
)

__all__ = [
    "AreaBreakdown", "estimate_area",
    "PowerBreakdown", "estimate_power",
    "ThroughputConstraint", "packet_rate", "required_clock_hz",
    "CALIBRATION_PACKET_BYTES", "LINE_RATE_BPS",
    "MAX_CLOCK_HZ", "feasible", "gate_sizing_factor",
    "LOOKUP_COST_MODELS", "LookupCostParameters", "LookupEstimate",
    "estimate_lookup_point",
    "PROTECTION_WORD_BITS", "estimate_protection_overhead",
]
