"""Average-power model for TACO architecture instances.

``P = density · active_area · f · activity + leakage``, with the area
already inflated by the gate-sizing factor — which is precisely why the
paper's 1 GHz sequential configuration came out with unacceptable power:
"The high power consumption follows from the fact that larger gate sizes
had to be used in order to reach the 1 GHz clock speed" (§4).

Utilisation feeds the activity factor: a bus that carries a move toggles;
an idle slot mostly doesn't. The simulator's measured bus utilisation
therefore modulates dynamic power, as the paper's co-analysis implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dse.config import ArchitectureConfiguration
from repro.estimation import technology as tech
from repro.estimation.area import AreaBreakdown, estimate_area
from repro.routing.cam import CamPhysicalModel


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power in watts at the operating point."""

    dynamic_w: float
    leakage_w: float
    #: external CAM+SRAM chip, reported separately (excluded from the
    #: TACO column of Table 1, included in system-level totals)
    external_cam_w: float

    @property
    def processor_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    @property
    def system_w(self) -> float:
        return self.processor_w + self.external_cam_w


def estimate_power(config: ArchitectureConfiguration, clock_hz: float,
                   bus_utilization: float = 1.0,
                   area: Optional[AreaBreakdown] = None,
                   cam: Optional[CamPhysicalModel] = None) -> PowerBreakdown:
    """Average power at *clock_hz* with the measured *bus_utilization*."""
    if not 0.0 <= bus_utilization <= 1.0:
        raise ValueError(f"bus utilisation out of range: {bus_utilization}")
    if area is None:
        area = estimate_area(config, clock_hz)

    # Activity: datapath logic toggles with the transported data. Scale
    # the nominal activity by how busy the transport network actually is
    # (the floor keeps clock trees and control alive even when idle).
    activity = tech.DEFAULT_ACTIVITY * (0.4 + 0.6 * bus_utilization)
    dynamic = (tech.POWER_DENSITY_W_PER_MM2_GHZ
               * area.total_mm2
               * (clock_hz / 1e9)
               * activity / tech.DEFAULT_ACTIVITY)
    leakage = tech.LEAKAGE_W_PER_MM2 * area.total_mm2

    external = 0.0
    if config.table_kind == "cam":
        model = cam or CamPhysicalModel()
        external = model.power_at(clock_hz / 1e6)
    return PowerBreakdown(dynamic_w=dynamic, leakage_w=leakage,
                          external_cam_w=external)
