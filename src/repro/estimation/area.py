"""Silicon-area model for TACO architecture instances.

Mirrors the role of the paper's Matlab model: given an architecture
configuration and an operating clock, estimate the processor die area.
Components: functional units, the register file, the interconnection
network (buses + sockets), on-chip memories, all inflated by the
gate-sizing factor the target clock demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dse.config import ArchitectureConfiguration
from repro.estimation import technology as tech


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area in mm² (already sized for the clock)."""

    functional_units: float
    register_file: float
    interconnect: float
    memory: float
    sizing_factor: float

    @property
    def total_mm2(self) -> float:
        return (self.functional_units + self.register_file
                + self.interconnect + self.memory)

    def as_dict(self) -> Dict[str, float]:
        return {
            "functional_units": self.functional_units,
            "register_file": self.register_file,
            "interconnect": self.interconnect,
            "memory": self.memory,
            "total": self.total_mm2,
        }


#: always-present infrastructure units (one each): mmu, rtu, ippu, oppu,
#: liu, and the network controller
_INFRASTRUCTURE_KINDS = ("mmu", "rtu", "ippu", "oppu", "liu", "nc")

#: on-chip table cache for the sequential/tree options: 100 entries at a
#: 64-byte stride (the RTU image), in kilobytes
TABLE_CACHE_KBYTE = 6.4

#: default on-chip table memory for the scaling structures at the
#: paper's 100-entry design point (trie slot pages / Bloom filter bank);
#: the lookup sweep overrides these with measured footprints
TRIE_CACHE_KBYTE = 8.0
BLOOM_CACHE_KBYTE = 2.0

#: datagram buffer memory kept on chip (slot pool working set)
BUFFER_KBYTE = 16.0


def estimate_area(config: ArchitectureConfiguration, clock_hz: float,
                  program_store_kbyte: float = 1.0,
                  table_kbyte: "float | None" = None) -> AreaBreakdown:
    """Die-area estimate at the given operating clock.

    *program_store_kbyte* is the instruction-memory footprint; the
    evaluator passes the exact size of the encoded forwarding program
    (see :mod:`repro.asm.encoding`), defaulting to a nominal 1 KiB.

    *table_kbyte* overrides the on-chip routing-table memory footprint;
    the lookup sweep passes the measured size of the built structure so
    area scales with the FIB instead of assuming the 100-entry default.
    """
    sizing = tech.gate_sizing_factor(clock_hz)

    fu_area = 0.0
    fu_count = 0
    for kind, count in config.fu_counts().items():
        fu_area += tech.FU_AREA_MM2[kind] * count
        fu_count += count
    for kind in _INFRASTRUCTURE_KINDS:
        fu_area += tech.FU_AREA_MM2[kind]
        fu_count += 1

    register_area = tech.GPR_AREA_MM2_PER_REGISTER * config.gpr_registers

    # every FU (plus the register file) attaches a socket to every bus
    sockets = (fu_count + 1) * config.bus_count
    interconnect = (tech.BUS_AREA_MM2 * config.bus_count
                    + tech.SOCKET_AREA_MM2 * sockets)

    memory_kb = BUFFER_KBYTE + max(program_store_kbyte, 0.0)
    if table_kbyte is not None:
        memory_kb += max(table_kbyte, 0.0)
    elif config.table_kind in ("sequential", "balanced-tree"):
        memory_kb += TABLE_CACHE_KBYTE
    elif config.table_kind == "multibit-trie":
        memory_kb += TRIE_CACHE_KBYTE
    elif config.table_kind == "bloom":
        memory_kb += BLOOM_CACHE_KBYTE
    # CAM option: the CAM+SRAM pair is an external chip; the paper's Table 1
    # explicitly excludes it ("the CAM estimates do not include the area and
    # power used by the CAM chip"), and so do we here.
    memory = tech.SRAM_MM2_PER_KBYTE * memory_kb

    return AreaBreakdown(
        functional_units=fu_area * sizing,
        register_file=register_area * sizing,
        interconnect=interconnect * sizing,
        memory=memory,  # SRAM compiles at fixed density; no gate upsizing
        sizing_factor=sizing,
    )
