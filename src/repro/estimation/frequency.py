"""Throughput constraint → required clock frequency.

"Each of these configurations has to be able to achieve the 10 Gbps
ethernet throughput with a maximum size of 100 entries in the routing
table. Based on these constraints we calculated the minimum clock
frequencies" (§4): minimum clock = cycles-per-datagram × datagram rate.

The paper does not state its assumed datagram size. We calibrate once:
with a 290-byte average datagram, 10 Gbps is 4.31 M datagrams/s, which
places our measured worst-case cycle count for the sequential 1-bus
configuration at the paper's 6 GHz anchor. All other rows then follow
from measurement with no further degrees of freedom (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError

LINE_RATE_BPS = 10e9
"""The 10 Gbps ethernet target of the paper."""

CALIBRATION_PACKET_BYTES = 290.0
"""Assumed mean datagram size; the single calibrated constant."""


def packet_rate(line_rate_bps: float = LINE_RATE_BPS,
                mean_packet_bytes: float = CALIBRATION_PACKET_BYTES) -> float:
    """Datagrams per second the router must sustain."""
    if line_rate_bps <= 0 or mean_packet_bytes <= 0:
        raise EstimationError("line rate and packet size must be positive")
    return line_rate_bps / (8.0 * mean_packet_bytes)


def required_clock_hz(cycles_per_packet: float,
                      line_rate_bps: float = LINE_RATE_BPS,
                      mean_packet_bytes: float = CALIBRATION_PACKET_BYTES) -> float:
    """Minimum clock sustaining the line rate at this cycles-per-packet."""
    if cycles_per_packet <= 0:
        raise EstimationError(
            f"cycles per packet must be positive: {cycles_per_packet}")
    return cycles_per_packet * packet_rate(line_rate_bps, mean_packet_bytes)


@dataclass(frozen=True)
class ThroughputConstraint:
    """A named line-rate constraint for sweeps and reports."""

    line_rate_bps: float = LINE_RATE_BPS
    mean_packet_bytes: float = CALIBRATION_PACKET_BYTES

    @property
    def packets_per_second(self) -> float:
        return packet_rate(self.line_rate_bps, self.mean_packet_bytes)

    def required_clock(self, cycles_per_packet: float) -> float:
        return required_clock_hz(cycles_per_packet, self.line_rate_bps,
                                 self.mean_packet_bytes)

    def describe(self) -> str:
        return (f"{self.line_rate_bps / 1e9:.0f} Gbps at "
                f"{self.mean_packet_bytes:.0f} B/datagram "
                f"({self.packets_per_second / 1e6:.2f} Mpps)")
