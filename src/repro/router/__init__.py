"""The IPv6 router: line cards, golden forwarding model, RIPng, topologies."""

from repro.router.linecard import LineCard
from repro.router.network import (
    ConvergenceReport,
    Link,
    Network,
    line_topology,
    ring_topology,
    seed_fib_routes,
)
from repro.router.ripng_engine import RipngEngine, RipngRoute
from repro.router.router import Ipv6Router, RouterStatistics

__all__ = [
    "LineCard",
    "ConvergenceReport", "Link", "Network", "line_topology", "ring_topology",
    "seed_fib_routes",
    "RipngEngine", "RipngRoute",
    "Ipv6Router", "RouterStatistics",
]
