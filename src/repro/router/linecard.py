"""Line cards: the router's network interfaces.

"Each network card contains a set of independent input and output
registers that can be read and written by the processor. The line cards
deal with implementing the [link] protocol ... provide fully assembled
decapsulated IPv6 datagrams to the processor, take care of fragmentation
and encapsulation of outgoing datagrams" (paper §3).

We model exactly that contract: the receive side is a bounded queue of
complete datagram byte images; the transmit side collects what the router
hands over. Link-layer concerns (framing, ARP/NDP) stay inside the card,
as they do in the paper's commercial cards.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import ReproError

DEFAULT_QUEUE_DEPTH = 64


class LineCard:
    """One network interface with bounded input buffering."""

    def __init__(self, index: int, queue_depth: int = DEFAULT_QUEUE_DEPTH):
        if index < 0:
            raise ReproError(f"negative line card index: {index}")
        if queue_depth < 1:
            raise ReproError(f"queue depth must be positive: {queue_depth}")
        self.index = index
        self.queue_depth = queue_depth
        self._input: Deque[bytes] = deque()
        self.transmitted: List[bytes] = []
        self.received_count = 0
        self.dropped_count = 0
        self.peak_depth = 0

    # -- network side -------------------------------------------------------------

    def deliver(self, datagram: bytes) -> bool:
        """A datagram arrives from the wire; False = tail-dropped."""
        if len(self._input) >= self.queue_depth:
            self.dropped_count += 1
            return False
        self._input.append(datagram)
        self.received_count += 1
        if len(self._input) > self.peak_depth:
            self.peak_depth = len(self._input)
        return True

    # -- processor side -----------------------------------------------------------

    def has_pending_input(self) -> bool:
        return bool(self._input)

    def pending_depth(self) -> int:
        return len(self._input)

    def pop_input(self) -> Optional[bytes]:
        """The ippu pulls the next pending datagram (None when empty)."""
        if self._input:
            return self._input.popleft()
        return None

    def transmit(self, datagram: bytes) -> None:
        """The oppu hands a finished datagram to the card for encapsulation."""
        self.transmitted.append(datagram)

    def __repr__(self) -> str:
        return (f"<LineCard #{self.index} pending={len(self._input)} "
                f"tx={len(self.transmitted)} dropped={self.dropped_count}>")
