"""RIPng distance-vector engine (RFC 2080 semantics).

The paper's router "builds up the Routing Table by listening for specific
datagrams broadcasted by the adjacent routers ... At regular intervals,
the routing table information is broadcasted to the adjacent routers"
(§3). This engine implements that: periodic full updates with split
horizon (poisoned reverse optional), triggered updates on metric change,
route timeout and garbage collection, and the request/response protocol.

It drives a :class:`~repro.routing.base.RoutingTable` — any of the three
implementations — so RIPng activity exercises the exact insert/remove
paths whose update costs the paper's §4 discusses ("the insertion and
deletion operations become much more complex").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RipngError, RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.ipv6.ripng import (
    COMMAND_REQUEST,
    COMMAND_RESPONSE,
    GARBAGE_COLLECTION_S,
    MAX_RTES_PER_MESSAGE,
    METRIC_INFINITY,
    ROUTE_TIMEOUT_S,
    RipngMessage,
    RouteTableEntry,
    UPDATE_INTERVAL_S,
    is_full_table_request,
    response,
)
from repro.routing.base import RoutingTable
from repro.routing.entry import RouteEntry

#: messages are returned as (interface, encoded bytes)
OutboundMessage = Tuple[int, bytes]


@dataclass
class RipngRoute:
    """Engine-side state for one learned or connected route."""

    prefix: Ipv6Prefix
    metric: int
    next_hop: Ipv6Address
    interface: int
    learned_from: Optional[Ipv6Address]  # None = connected (never expires)
    timeout_at: Optional[float]
    garbage_at: Optional[float] = None
    changed: bool = True
    route_tag: int = 0

    @property
    def expired(self) -> bool:
        return self.garbage_at is not None


class RipngEngine:
    """The distance-vector state machine of one router."""

    def __init__(self, router_name: str, table: RoutingTable,
                 interface_count: int,
                 update_interval: float = UPDATE_INTERVAL_S,
                 route_timeout: float = ROUTE_TIMEOUT_S,
                 garbage_interval: float = GARBAGE_COLLECTION_S,
                 poisoned_reverse: bool = False):
        if interface_count < 1:
            raise RipngError("need at least one interface")
        self.router_name = router_name
        self.table = table
        self.interface_count = interface_count
        self.update_interval = update_interval
        self.route_timeout = route_timeout
        self.garbage_interval = garbage_interval
        self.poisoned_reverse = poisoned_reverse
        self.routes: Dict[Ipv6Prefix, RipngRoute] = {}
        self._next_update_at = 0.0
        self._pending_triggered = False
        self._booted = False
        self.updates_sent = 0
        self.responses_processed = 0
        self.malformed_dropped = 0
        #: whole messages refused after a clean parse (reason -> count);
        #: e.g. an update too large to have fit the minimum IPv6 MTU
        self.rejected_messages: Dict[str, int] = {}
        #: individual RTEs refused by validation (reason -> count):
        #: martian prefixes, non-link-local next hops, table exhaustion
        self.rejected_rtes: Dict[str, int] = {}

    # -- interfaces ----------------------------------------------------------------------

    def add_interface(self, address: Ipv6Address, interface: int,
                      prefix_length: int = 64) -> None:
        """Grow the engine by one interface and announce its prefix.

        *interface* must be the next free index — the engine addresses
        interfaces densely (``range(interface_count)``) when emitting.
        """
        if interface != self.interface_count:
            raise RipngError(
                f"interfaces must be added densely: expected index "
                f"{self.interface_count}, got {interface}")
        self.interface_count += 1
        self.add_connected(address, interface, prefix_length)

    # -- route origination ---------------------------------------------------------------

    def add_connected(self, address: Ipv6Address, interface: int,
                      prefix_length: int = 64) -> None:
        """Announce the directly attached prefix of an interface."""
        prefix = Ipv6Prefix.of(address, prefix_length)
        route = RipngRoute(
            prefix=prefix, metric=1,
            next_hop=Ipv6Address(0), interface=interface,
            learned_from=None, timeout_at=None)
        self.routes[prefix] = route
        self._install_configured(route)

    def originate(self, prefix: Ipv6Prefix, interface: int,
                  metric: int = 1) -> None:
        """Statically originate a prefix (e.g. a customer network)."""
        route = RipngRoute(prefix=prefix, metric=metric,
                           next_hop=Ipv6Address(0), interface=interface,
                           learned_from=None, timeout_at=None)
        self.routes[prefix] = route
        self._install_configured(route)

    def _install_configured(self, route: RipngRoute) -> None:
        # a connected/static route that doesn't fit is a configuration
        # error, not hostile input — it must fail loudly, not be shed
        self.table.insert(RouteEntry(
            prefix=route.prefix, next_hop=route.next_hop,
            interface=route.interface, metric=route.metric,
            route_tag=route.route_tag))

    # -- inbound -----------------------------------------------------------------------

    def receive(self, payload: bytes, sender: Ipv6Address, interface: int,
                now: float) -> List[OutboundMessage]:
        """Process one RIPng payload; returns any direct replies.

        A malformed payload (truncated header, ragged RTE body, invalid
        metric...) is counted in :attr:`malformed_dropped` and otherwise
        ignored — a routing daemon must survive garbage on port 521, not
        take the simulation down with it. A payload that parses but fails
        semantic validation is refused into :attr:`rejected_messages`
        (whole message) or :attr:`rejected_rtes` (single entries); no
        hostile entry ever reaches the routing table past these checks.
        """
        try:
            message = RipngMessage.from_bytes(payload)
        except RipngError:
            self.malformed_dropped += 1
            return []
        if len(message.entries) > MAX_RTES_PER_MESSAGE:
            # could never have crossed a real link inside the minimum MTU
            self._reject_message("oversized")
            return []
        if message.command == COMMAND_REQUEST:
            return self._handle_request(message, interface)
        # from_bytes only admits REQUEST or RESPONSE commands
        self._handle_response(message, sender, interface, now)
        return []

    def _reject_message(self, reason: str) -> None:
        self.rejected_messages[reason] = \
            self.rejected_messages.get(reason, 0) + 1

    def _reject_rte(self, reason: str) -> None:
        self.rejected_rtes[reason] = self.rejected_rtes.get(reason, 0) + 1

    @staticmethod
    def _is_martian(prefix: Ipv6Prefix) -> bool:
        """Prefixes no RIPng neighbour may legitimately advertise:
        multicast, loopback, link-local, and non-default unspecified."""
        network = prefix.network
        return (network.is_multicast()
                or network.is_loopback()
                or network.is_link_local()
                or (network.is_unspecified() and prefix.length > 0))

    def _handle_request(self, message: RipngMessage,
                        interface: int) -> List[OutboundMessage]:
        if is_full_table_request(message):
            entries = self._export_entries(interface)
            return self._chunked(interface, entries)
        # specific-prefix request: answer with our metric (or infinity)
        answers: List[RouteTableEntry] = []
        for entry, _next_hop in message.routes():
            route = self.routes.get(entry.prefix)
            metric = route.metric if route and not route.expired \
                else METRIC_INFINITY
            answers.append(RouteTableEntry(prefix=entry.prefix,
                                           metric=metric))
        return self._chunked(interface, answers)

    @staticmethod
    def _chunked(interface: int,
                 entries: List[RouteTableEntry]) -> List[OutboundMessage]:
        """Split an update so each message fits the minimum IPv6 MTU —
        the same bound receivers enforce against hostile oversized bursts."""
        return [(interface,
                 response(entries[i:i + MAX_RTES_PER_MESSAGE]).to_bytes())
                for i in range(0, len(entries), MAX_RTES_PER_MESSAGE)]

    def _handle_response(self, message: RipngMessage, sender: Ipv6Address,
                         interface: int, now: float) -> None:
        self.responses_processed += 1
        for entry, explicit_next_hop in message.routes():
            if self._is_martian(entry.prefix):
                self._reject_rte("martian-prefix")
                continue
            if explicit_next_hop is not None and \
                    not explicit_next_hop.is_link_local():
                # RFC 2080 §2.1.1: a next hop must be link-local; a global
                # one is a redirection attack surface, so refuse the RTE
                # entirely rather than falling back to the sender
                self._reject_rte("bad-next-hop")
                continue
            next_hop = explicit_next_hop or sender
            metric = min(entry.metric + 1, METRIC_INFINITY)
            self._consider(entry.prefix, metric, next_hop, interface,
                           sender, entry.route_tag, now)

    def _consider(self, prefix: Ipv6Prefix, metric: int,
                  next_hop: Ipv6Address, interface: int,
                  sender: Ipv6Address, route_tag: int, now: float) -> None:
        current = self.routes.get(prefix)
        if current is not None and current.learned_from is None:
            return  # never displace connected/static routes
        from_current_gateway = (current is not None
                                and current.learned_from == sender)
        if current is None:
            if metric >= METRIC_INFINITY:
                return
            route = RipngRoute(prefix=prefix, metric=metric,
                               next_hop=next_hop, interface=interface,
                               learned_from=sender,
                               timeout_at=now + self.route_timeout,
                               route_tag=route_tag)
            self.routes[prefix] = route
            if not self._install(route):
                del self.routes[prefix]  # roll back: engine mirrors table
                return
            self._pending_triggered = True
            return
        if from_current_gateway:
            # same gateway: always refresh, adopt any metric change
            current.timeout_at = now + self.route_timeout
            if metric != current.metric:
                current.metric = metric
                current.changed = True
                self._pending_triggered = True
                if metric >= METRIC_INFINITY:
                    self._start_deletion(current, now)
                else:
                    current.garbage_at = None
                    current.next_hop = next_hop
                    current.interface = interface
                    if not self._install(current):
                        self._start_deletion(current, now)
        elif metric < current.metric and metric < METRIC_INFINITY:
            current.metric = metric
            current.next_hop = next_hop
            current.interface = interface
            current.learned_from = sender
            current.timeout_at = now + self.route_timeout
            current.garbage_at = None
            current.changed = True
            if not self._install(current):
                self._start_deletion(current, now)
                return
            self._pending_triggered = True

    # -- timers / outbound ------------------------------------------------------------------

    def tick(self, now: float) -> List[OutboundMessage]:
        """Advance timers; returns updates to transmit."""
        out: List[OutboundMessage] = []
        if not self._booted:
            # RFC 2080 §2.5.1: ask every neighbour for its full table on
            # startup rather than waiting out an update interval
            self._booted = True
            from repro.ipv6.ripng import request_full_table
            request = request_full_table().to_bytes()
            out.extend((interface, request)
                       for interface in range(self.interface_count))
        self._expire(now)
        if self._pending_triggered:
            out.extend(self._emit_updates(changed_only=True))
            self._pending_triggered = False
        if now >= self._next_update_at:
            out.extend(self._emit_updates(changed_only=False))
            self._next_update_at = now + self.update_interval
        return out

    def _expire(self, now: float) -> None:
        to_delete: List[Ipv6Prefix] = []
        for route in self.routes.values():
            if route.learned_from is None:
                continue
            if route.garbage_at is not None:
                if now >= route.garbage_at:
                    to_delete.append(route.prefix)
            elif route.timeout_at is not None and now >= route.timeout_at:
                route.metric = METRIC_INFINITY
                route.changed = True
                self._pending_triggered = True
                self._start_deletion(route, now)
        for prefix in to_delete:
            del self.routes[prefix]

    def _start_deletion(self, route: RipngRoute, now: float) -> None:
        route.garbage_at = now + self.garbage_interval
        if route.prefix in self.table:
            self.table.remove(route.prefix)

    def _emit_updates(self, changed_only: bool) -> List[OutboundMessage]:
        out: List[OutboundMessage] = []
        for interface in range(self.interface_count):
            entries = self._export_entries(interface,
                                           changed_only=changed_only)
            if entries:
                out.extend(self._chunked(interface, entries))
        for route in self.routes.values():
            route.changed = False
        if out:
            self.updates_sent += 1
        return out

    def _export_entries(self, interface: int,
                        changed_only: bool = False) -> List[RouteTableEntry]:
        """Split-horizon view of the table for one interface."""
        entries: List[RouteTableEntry] = []
        for route in self.routes.values():
            if changed_only and not route.changed:
                continue
            metric = route.metric
            if route.learned_from is not None and \
                    route.interface == interface:
                if not self.poisoned_reverse:
                    continue  # simple split horizon: omit
                metric = METRIC_INFINITY  # poisoned reverse: advertise ∞
            entries.append(RouteTableEntry(
                prefix=route.prefix, metric=min(metric, METRIC_INFINITY),
                route_tag=route.route_tag))
        return entries

    # -- table integration -------------------------------------------------------------------

    def _install(self, route: RipngRoute) -> bool:
        """Insert into the routing table; False if the table refused it.

        A full table is not an engine crash: the RTE is rejected and
        counted, mirroring how a hardware FIB sheds excess routes.
        """
        try:
            self.table.insert(RouteEntry(
                prefix=route.prefix, next_hop=route.next_hop,
                interface=route.interface, metric=route.metric,
                route_tag=route.route_tag))
        except RoutingTableError:
            self._reject_rte("table-full")
            return False
        return True

    def active_routes(self) -> List[RipngRoute]:
        return [r for r in self.routes.values() if not r.expired]

    def route_metric(self, prefix: Ipv6Prefix) -> Optional[int]:
        route = self.routes.get(prefix)
        if route is None or route.expired:
            return None
        return route.metric
