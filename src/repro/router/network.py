"""Multi-router network simulation for RIPng convergence studies.

Routers are joined by point-to-point links between named interfaces. The
simulation advances in fixed time steps: each step applies any scripted
link flaps, moves every datagram a router transmitted onto the peer's
input queue (through the link's fault model, if one is attached), lets
every router drain its inputs, and advances the RIPng timers.
Convergence is reached when no router changes its table or emits a
triggered update for a full interval.

Fault injection is strictly opt-in: a link without a fault model uses
the original zero-copy same-step delivery path, so an unfaulted network
behaves bit-for-bit as it always did. The fault/flap objects themselves
live in :mod:`repro.faults` and are only duck-typed here (a fault model
needs ``transmit(raw) -> [(delay_steps, frame), ...]``; a flap schedule
needs ``due(now) -> [events with .endpoint/.up]``) to keep the router
core free of any dependency on the chaos layer.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.obs import get_registry
from repro.router.router import Ipv6Router

Endpoint = Tuple[str, int]  # (router name, interface index)


@dataclass
class Link:
    a: Endpoint
    b: Endpoint
    up: bool = True
    #: optional repro.faults.FaultModel (duck-typed; see module docstring)
    fault_model: Optional[Any] = None

    def peer(self, endpoint: Endpoint) -> Endpoint:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ReproError(f"{endpoint} is not on this link")


@dataclass
class ConvergenceReport:
    converged: bool
    rounds: int
    messages_delivered: int
    time_elapsed: float
    #: set on non-convergence when a watchdog observed the run
    diagnosis: Optional[Any] = None


class Network:
    """A topology of :class:`Ipv6Router` instances joined by links."""

    def __init__(self, step_seconds: float = 1.0):
        self.routers: Dict[str, Ipv6Router] = {}
        self.links: List[Link] = []
        self._by_endpoint: Dict[Endpoint, Link] = {}
        self.step_seconds = step_seconds
        self.now = 0.0
        self.messages_delivered = 0
        self.frames_lost_link_down = 0
        self.link_flaps_applied = 0
        self.flap_schedule: Optional[Any] = None
        # frames delayed by a fault model: (deliver_at, seq, endpoint, raw)
        self._in_flight: List[Tuple[float, int, Endpoint, bytes]] = []
        self._flight_seq = 0
        # last-published fault-model statistics per link, so step() can
        # publish per-link injected/dropped/corrupted deltas as counters
        self._fault_stats_seen: Dict[int, Dict[str, int]] = {}

    # -- construction -----------------------------------------------------------------

    def add_router(self, router: Ipv6Router) -> Ipv6Router:
        if router.name in self.routers:
            raise ReproError(f"duplicate router name {router.name!r}")
        self.routers[router.name] = router
        return router

    def connect(self, a: Endpoint, b: Endpoint) -> Link:
        for endpoint in (a, b):
            name, interface = endpoint
            if name not in self.routers:
                raise ReproError(f"unknown router {name!r}")
            router = self.routers[name]
            if not 0 <= interface < len(router.line_cards):
                raise ReproError(f"{name} has no interface {interface}")
            if endpoint in self._by_endpoint:
                raise ReproError(f"{endpoint} already linked")
        link = Link(a=a, b=b)
        self.links.append(link)
        self._by_endpoint[a] = link
        self._by_endpoint[b] = link
        return link

    def set_link_state(self, a: Endpoint, up: bool) -> None:
        link = self._by_endpoint.get(a)
        if link is None:
            raise ReproError(f"{a} is not linked")
        link.up = up

    def attach_fault_model(self, a: Endpoint, model: Optional[Any]) -> Link:
        """Attach (or clear, with None) a fault model on *a*'s link."""
        link = self._by_endpoint.get(a)
        if link is None:
            raise ReproError(f"{a} is not linked")
        link.fault_model = model
        return link

    def set_flap_schedule(self, schedule: Optional[Any]) -> None:
        """Install a scripted link flap schedule (applied in :meth:`step`).

        Endpoints are validated now so a typo fails before the run, not
        hundreds of simulated seconds into it.
        """
        if schedule is not None:
            for endpoint in schedule.endpoints():
                if endpoint not in self._by_endpoint:
                    raise ReproError(
                        f"flap schedule touches {endpoint}, which is not a "
                        f"linked interface of this network")
        self.flap_schedule = schedule

    # -- simulation -------------------------------------------------------------------

    def step(self) -> int:
        """One round: apply flaps, deliver transmissions, process inputs,
        tick timers."""
        if self.flap_schedule is not None:
            for event in self.flap_schedule.due(self.now):
                self.set_link_state(event.endpoint, event.up)
                self.link_flaps_applied += 1
        delivered = self._deliver_transmissions()
        for router in self.routers.values():
            router.poll_inputs(now=self.now)
        for router in self.routers.values():
            router.tick(self.now)
        self.now += self.step_seconds
        self.messages_delivered += delivered
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "net_rounds_total", "simulation rounds stepped").inc()
            registry.counter(
                "net_frames_delivered_total",
                "frames delivered across all links").inc(delivered)
            registry.gauge(
                "net_frames_in_flight",
                "fault-model-delayed frames awaiting delivery"
            ).set(len(self._in_flight))
            self._publish_link_metrics(registry)
        return delivered

    @staticmethod
    def _link_label(link: Link) -> str:
        return (f"{link.a[0]}:{link.a[1]}<->{link.b[0]}:{link.b[1]}")

    def _publish_link_metrics(self, registry) -> None:
        """Publish per-link fault-model statistics as counter deltas."""
        frames = registry.counter(
            "net_link_frames_total",
            "frames entering each link's fault model", ("link",))
        faults = registry.counter(
            "net_link_faults_total",
            "fault-model interventions per link", ("link", "fault"))
        for link in self.links:
            model = link.fault_model
            if model is None or not hasattr(model, "stats"):
                continue
            label = self._link_label(link)
            seen = self._fault_stats_seen.setdefault(id(link), {})
            stats = model.stats
            for name in ("injected", "dropped", "corrupted", "duplicated",
                         "reordered", "delayed"):
                value = getattr(stats, name, 0)
                delta = value - seen.get(name, 0)
                if delta <= 0:
                    continue
                seen[name] = value
                if name == "injected":
                    frames.inc(delta, link=label)
                else:
                    faults.inc(delta, link=label, fault=name)

    def _deliver_transmissions(self) -> int:
        registry = get_registry()
        drops = registry.counter(
            "net_link_dropped_total",
            "frames lost because the link was down",
            ("link",)) if registry.enabled else None
        delivered = self._release_in_flight()
        for name, router in self.routers.items():
            for card in router.line_cards:
                if not card.transmitted:
                    continue
                outgoing = list(card.transmitted)
                card.transmitted.clear()
                link = self._by_endpoint.get((name, card.index))
                if link is None:
                    continue  # unconnected: frames vanish silently
                if not link.up:
                    self.frames_lost_link_down += len(outgoing)
                    if drops is not None:
                        drops.inc(len(outgoing),
                                  link=self._link_label(link))
                    continue
                peer_endpoint = link.peer((name, card.index))
                model = link.fault_model
                for raw in outgoing:
                    if model is None:
                        self._deliver_raw(peer_endpoint, raw)
                        delivered += 1
                        continue
                    for delay_steps, frame in model.transmit(raw):
                        if delay_steps <= 0:
                            self._deliver_raw(peer_endpoint, frame)
                            delivered += 1
                        else:
                            deliver_at = self.now + \
                                delay_steps * self.step_seconds
                            heapq.heappush(
                                self._in_flight,
                                (deliver_at, self._flight_seq,
                                 peer_endpoint, frame))
                            self._flight_seq += 1
        return delivered

    def _release_in_flight(self) -> int:
        """Deliver delayed frames whose time has come; drop those whose
        link went down while they were in flight."""
        registry = get_registry()
        released = 0
        while self._in_flight and self._in_flight[0][0] <= self.now:
            _, _, endpoint, frame = heapq.heappop(self._in_flight)
            link = self._by_endpoint.get(endpoint)
            if link is None or not link.up:
                self.frames_lost_link_down += 1
                if registry.enabled and link is not None:
                    registry.counter(
                        "net_link_dropped_total",
                        "frames lost because the link was down", ("link",)
                    ).inc(link=self._link_label(link))
                continue
            self._deliver_raw(endpoint, frame)
            released += 1
        return released

    def _deliver_raw(self, endpoint: Endpoint, frame: bytes) -> None:
        name, interface = endpoint
        self.routers[name].line_cards[interface].deliver(frame)

    @property
    def frames_in_flight(self) -> int:
        return len(self._in_flight)

    def run_until_converged(self, max_rounds: int = 600,
                            quiet_rounds: int = 20,
                            watchdog: Optional[Any] = None
                            ) -> ConvergenceReport:
        """Advance until the control plane is quiet for *quiet_rounds*.

        Quiet means no RIPng datagram crossed any link; periodic updates
        restart the clock, so *quiet_rounds* must stay below the update
        interval (30 s at 1 s steps) — a quiet window that long can never
        occur and is rejected up front as a :class:`ConfigurationError`.

        A *watchdog* (:class:`repro.faults.SimulationWatchdog`) observes
        every round; on non-convergence its diagnosis is attached to the
        report so callers learn *why* the control plane kept churning.
        """
        intervals = [router.ripng.update_interval
                     for router in self.routers.values() if router.ripng]
        if intervals and \
                quiet_rounds * self.step_seconds >= min(intervals):
            raise ConfigurationError(
                f"quiet_rounds ({quiet_rounds}) x step_seconds "
                f"({self.step_seconds}) = "
                f"{quiet_rounds * self.step_seconds} s, which is not below "
                f"the shortest RIPng update interval ({min(intervals)} s): "
                f"periodic updates would reset the quiet counter before it "
                f"ever reached quiet_rounds, so convergence could never be "
                f"detected; lower quiet_rounds/step_seconds or raise the "
                f"update interval")
        registry = get_registry()
        t0 = registry.time() if registry.enabled else 0.0
        quiet = 0
        for round_index in itertools.count():
            if round_index >= max_rounds:
                diagnosis = watchdog.diagnose() if watchdog is not None \
                    else None
                self._publish_convergence(registry, t0, False, round_index)
                return ConvergenceReport(False, round_index,
                                         self.messages_delivered, self.now,
                                         diagnosis=diagnosis)
            delivered = self.step()
            if watchdog is not None:
                watchdog.observe()
            # a round with frames still in flight is not quiet: they will
            # land on a router and may restart the conversation
            quiet = quiet + 1 if delivered == 0 and not self._in_flight \
                else 0
            if quiet >= quiet_rounds:
                self._publish_convergence(registry, t0, True,
                                          round_index + 1)
                return ConvergenceReport(True, round_index + 1,
                                         self.messages_delivered, self.now)
        raise AssertionError("unreachable")

    def _publish_convergence(self, registry, t0: float, converged: bool,
                             rounds: int) -> None:
        if not registry.enabled:
            return
        registry.gauge(
            "net_convergence_rounds",
            "rounds the most recent convergence run took").set(rounds)
        registry.counter(
            "net_convergence_runs_total",
            "run_until_converged outcomes", ("converged",)
        ).inc(converged=str(converged).lower())
        registry.histogram(
            "net_convergence_seconds",
            "wall-clock time per run_until_converged call"
        ).observe(registry.time() - t0)

    # -- inspection -------------------------------------------------------------------

    def route_metric(self, router_name: str,
                     prefix: Ipv6Prefix) -> Optional[int]:
        router = self.routers[router_name]
        if router.ripng is None:
            return None
        return router.ripng.route_metric(prefix)

    def tables_agree_on(self, prefix: Ipv6Prefix) -> bool:
        """Every RIPng router knows *prefix* with a finite metric."""
        for router in self.routers.values():
            if router.ripng is None:
                continue
            metric = router.ripng.route_metric(prefix)
            if metric is None or metric >= 16:
                return False
        return True


def line_topology(count: int, table_kind: str = "balanced-tree",
                  step_seconds: float = 1.0,
                  table_capacity: int = 100) -> Network:
    """R0 -- R1 -- ... -- R(n-1), each with two interfaces."""
    if count < 2:
        raise ReproError("line topology needs at least two routers")
    network = Network(step_seconds=step_seconds)
    for i in range(count):
        addresses = [
            Ipv6Address.parse(f"2001:db8:{i:x}:1::1"),
            Ipv6Address.parse(f"2001:db8:{i:x}:2::1"),
        ]
        network.add_router(Ipv6Router(f"r{i}", addresses,
                                      table_kind=table_kind,
                                      table_capacity=table_capacity))
    for i in range(count - 1):
        network.connect((f"r{i}", 1), (f"r{i + 1}", 0))
    return network


def ring_topology(count: int, table_kind: str = "balanced-tree",
                  step_seconds: float = 1.0,
                  table_capacity: int = 100) -> Network:
    """A cycle of *count* routers (redundant paths, tests split horizon)."""
    if count < 3:
        raise ReproError("ring topology needs at least three routers")
    network = line_topology(count, table_kind=table_kind,
                            step_seconds=step_seconds,
                            table_capacity=table_capacity)
    # close the ring with dedicated third interfaces on the two line ends
    # to avoid clashing with line links
    first = network.routers["r0"]
    last = network.routers[f"r{count - 1}"]
    first_closing = first.add_interface(
        Ipv6Address.parse(f"2001:db8:ff{first.name[1:]}::1"))
    last_closing = last.add_interface(
        Ipv6Address.parse(f"2001:db8:ff{last.name[1:]}::1"))
    network.connect(("r0", first_closing), (f"r{count - 1}", last_closing))
    return network


def seed_fib_routes(network: Network, prefix_count: int,
                    seed: int = 2026) -> int:
    """Originate a synthesized BGP-shaped FIB across a network's routers.

    The :func:`repro.workload.fib.synthesize_fib` routes are distributed
    round-robin over the RIPng routers (sorted by name) as static
    originations, so convergence and chaos scenarios exercise realistic
    provider/customer prefix structure instead of a handful of
    hand-written /64s. Returns the number of routes originated.

    Routers must be sized to learn each other's routes: build the
    topology with ``table_capacity >= prefix_count + 4 * routers``.
    """
    from repro.workload.fib import synthesize_fib

    speakers = [network.routers[name] for name in sorted(network.routers)
                if network.routers[name].ripng is not None]
    if not speakers:
        raise ReproError("no RIPng routers to originate the FIB from")
    routes = synthesize_fib(prefix_count, seed=seed)
    for index, entry in enumerate(routes):
        router = speakers[index % len(speakers)]
        router.ripng.originate(
            entry.prefix,
            interface=entry.interface % router.ripng.interface_count,
            metric=entry.metric)
    return len(routes)
