"""Multi-router network simulation for RIPng convergence studies.

Routers are joined by point-to-point links between named interfaces. The
simulation advances in fixed time steps: each step moves every datagram a
router transmitted onto the peer's input queue, lets every router drain
its inputs, and advances the RIPng timers. Convergence is reached when no
router changes its table or emits a triggered update for a full interval.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.router.router import Ipv6Router

Endpoint = Tuple[str, int]  # (router name, interface index)


@dataclass
class Link:
    a: Endpoint
    b: Endpoint
    up: bool = True

    def peer(self, endpoint: Endpoint) -> Endpoint:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ReproError(f"{endpoint} is not on this link")


@dataclass
class ConvergenceReport:
    converged: bool
    rounds: int
    messages_delivered: int
    time_elapsed: float


class Network:
    """A topology of :class:`Ipv6Router` instances joined by links."""

    def __init__(self, step_seconds: float = 1.0):
        self.routers: Dict[str, Ipv6Router] = {}
        self.links: List[Link] = []
        self._by_endpoint: Dict[Endpoint, Link] = {}
        self.step_seconds = step_seconds
        self.now = 0.0
        self.messages_delivered = 0

    # -- construction -----------------------------------------------------------------

    def add_router(self, router: Ipv6Router) -> Ipv6Router:
        if router.name in self.routers:
            raise ReproError(f"duplicate router name {router.name!r}")
        self.routers[router.name] = router
        return router

    def connect(self, a: Endpoint, b: Endpoint) -> Link:
        for endpoint in (a, b):
            name, interface = endpoint
            if name not in self.routers:
                raise ReproError(f"unknown router {name!r}")
            router = self.routers[name]
            if not 0 <= interface < len(router.line_cards):
                raise ReproError(f"{name} has no interface {interface}")
            if endpoint in self._by_endpoint:
                raise ReproError(f"{endpoint} already linked")
        link = Link(a=a, b=b)
        self.links.append(link)
        self._by_endpoint[a] = link
        self._by_endpoint[b] = link
        return link

    def set_link_state(self, a: Endpoint, up: bool) -> None:
        link = self._by_endpoint.get(a)
        if link is None:
            raise ReproError(f"{a} is not linked")
        link.up = up

    # -- simulation -------------------------------------------------------------------

    def step(self) -> int:
        """One round: deliver transmissions, process inputs, tick timers."""
        delivered = self._deliver_transmissions()
        for router in self.routers.values():
            router.poll_inputs(now=self.now)
        for router in self.routers.values():
            router.tick(self.now)
        self.now += self.step_seconds
        self.messages_delivered += delivered
        return delivered

    def _deliver_transmissions(self) -> int:
        delivered = 0
        for name, router in self.routers.items():
            for card in router.line_cards:
                if not card.transmitted:
                    continue
                outgoing = list(card.transmitted)
                card.transmitted.clear()
                link = self._by_endpoint.get((name, card.index))
                if link is None or not link.up:
                    continue  # unconnected or down: frames vanish
                peer_name, peer_interface = link.peer((name, card.index))
                peer = self.routers[peer_name]
                for raw in outgoing:
                    peer.line_cards[peer_interface].deliver(raw)
                    delivered += 1
        return delivered

    def run_until_converged(self, max_rounds: int = 600,
                            quiet_rounds: int = 20) -> ConvergenceReport:
        """Advance until the control plane is quiet for *quiet_rounds*.

        Quiet means no RIPng datagram crossed any link; periodic updates
        restart the clock, so *quiet_rounds* must stay below the update
        interval (30 s at 1 s steps).
        """
        quiet = 0
        for round_index in itertools.count():
            if round_index >= max_rounds:
                return ConvergenceReport(False, round_index,
                                         self.messages_delivered, self.now)
            delivered = self.step()
            quiet = quiet + 1 if delivered == 0 else 0
            if quiet >= quiet_rounds:
                return ConvergenceReport(True, round_index + 1,
                                         self.messages_delivered, self.now)
        raise AssertionError("unreachable")

    # -- inspection -------------------------------------------------------------------

    def route_metric(self, router_name: str,
                     prefix: Ipv6Prefix) -> Optional[int]:
        router = self.routers[router_name]
        if router.ripng is None:
            return None
        return router.ripng.route_metric(prefix)

    def tables_agree_on(self, prefix: Ipv6Prefix) -> bool:
        """Every RIPng router knows *prefix* with a finite metric."""
        for router in self.routers.values():
            if router.ripng is None:
                continue
            metric = router.ripng.route_metric(prefix)
            if metric is None or metric >= 16:
                return False
        return True


def line_topology(count: int, table_kind: str = "balanced-tree",
                  step_seconds: float = 1.0) -> Network:
    """R0 -- R1 -- ... -- R(n-1), each with two interfaces."""
    if count < 2:
        raise ReproError("line topology needs at least two routers")
    network = Network(step_seconds=step_seconds)
    for i in range(count):
        addresses = [
            Ipv6Address.parse(f"2001:db8:{i:x}:1::1"),
            Ipv6Address.parse(f"2001:db8:{i:x}:2::1"),
        ]
        network.add_router(Ipv6Router(f"r{i}", addresses,
                                      table_kind=table_kind))
    for i in range(count - 1):
        network.connect((f"r{i}", 1), (f"r{i + 1}", 0))
    return network


def ring_topology(count: int, table_kind: str = "balanced-tree",
                  step_seconds: float = 1.0) -> Network:
    """A cycle of *count* routers (redundant paths, tests split horizon)."""
    if count < 3:
        raise ReproError("ring topology needs at least three routers")
    network = line_topology(count, table_kind=table_kind,
                            step_seconds=step_seconds)
    # close the ring with the spare interfaces of the two line ends: use
    # dedicated third interfaces to avoid clashing with line links
    first = network.routers["r0"]
    last = network.routers[f"r{count - 1}"]
    for router in (first, last):
        router.line_cards.append(
            type(router.line_cards[0])(len(router.line_cards)))
        router.interface_addresses.append(
            Ipv6Address.parse(f"2001:db8:ff{router.name[1:]}::1"))
        if router.ripng:
            router.ripng.interface_count += 1
    network.connect(("r0", len(first.line_cards) - 1),
                    (f"r{count - 1}", len(last.line_cards) - 1))
    return network
