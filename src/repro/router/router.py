"""Functional (golden) model of the paper's IPv6 router.

"An IPv6 router should be able to receive IPv6 datagrams from the
connected networks, to check their validity for the right addressing and
fields, to interrogate the routing table for the interface(s) they should
be forwarded on, and to send the datagrams on the appropriate interface.
Additionally a router should build and maintain a routing table" (§3).

This pure-Python router defines the behaviour the TACO programs are
verified against, and hosts the control plane (RIPng, ICMPv6 errors) that
the paper leaves to the slow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import Ipv6Error, ReproError
from repro.ipv6.address import Ipv6Address
from repro.ipv6.header import PROTO_ICMPV6, PROTO_UDP
from repro.ipv6.icmpv6 import destination_unreachable, time_exceeded
from repro.ipv6.packet import (
    Ipv6Datagram,
    ValidationFailure,
    validate_for_forwarding,
)
from repro.ipv6.ripng import RIPNG_MULTICAST_GROUP, RIPNG_PORT
from repro.ipv6.udp import UdpDatagram
from repro.obs import get_registry
from repro.router.linecard import LineCard
from repro.router.ripng_engine import RipngEngine
from repro.routing import make_table
from repro.routing.base import RoutingTable
from repro.routing.entry import RouteEntry

ICMP_HOP_LIMIT = 64


def _dict_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Per-key increase between two counter snapshots."""
    return {key: after[key] - before.get(key, 0)
            for key in after if after[key] > before.get(key, 0)}


@dataclass
class RouterStatistics:
    received: int = 0
    forwarded: int = 0
    delivered_local: int = 0
    ripng_messages: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)
    #: RTE-level control-plane rejections (reason -> count). These are
    #: sub-message events: the carrying datagram still counts as one
    #: ``ripng_messages``, so they sit outside the per-datagram
    #: accounting identity received == forwarded + delivered_local
    #: + ripng_messages + total_dropped.
    control_rejected: Dict[str, int] = field(default_factory=dict)

    def drop(self, reason: str, count: int = 1) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + count

    def reject_control(self, reason: str, count: int = 1) -> None:
        self.control_rejected[reason] = \
            self.control_rejected.get(reason, 0) + count

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    @property
    def total_control_rejected(self) -> int:
        return sum(self.control_rejected.values())


class Ipv6Router:
    """A complete software IPv6 router with a pluggable routing table."""

    def __init__(self, name: str, interface_addresses: Sequence[Ipv6Address],
                 table: Optional[RoutingTable] = None,
                 table_kind: str = "balanced-tree",
                 table_capacity: int = 100,
                 enable_ripng: bool = True):
        if not interface_addresses:
            raise ReproError("router needs at least one interface")
        self.name = name
        self.interface_addresses = list(interface_addresses)
        self.line_cards = [LineCard(i)
                           for i in range(len(interface_addresses))]
        self.table = table if table is not None else make_table(
            table_kind, capacity=table_capacity)
        self.stats = RouterStatistics()
        self.ripng: Optional[RipngEngine] = None
        if enable_ripng:
            self.ripng = RipngEngine(router_name=name, table=self.table,
                                     interface_count=len(self.line_cards))
            # interfaces are directly attached routes
            for i, address in enumerate(self.interface_addresses):
                self.ripng.add_connected(address, i)

    def add_interface(self, address: Ipv6Address) -> int:
        """Bring up one more interface at runtime; returns its index.

        The new interface gets a line card and, when RIPng is enabled,
        is announced as a directly attached route — exactly what
        :meth:`__init__` does for the initial interfaces.
        """
        index = len(self.line_cards)
        self.interface_addresses.append(address)
        self.line_cards.append(LineCard(index))
        if self.ripng is not None:
            self.ripng.add_interface(address, index)
        return index

    # -- data plane -----------------------------------------------------------------

    def receive(self, interface: int, raw: bytes,
                now: float = 0.0) -> None:
        """Process one datagram arriving on *interface*."""
        self._check_interface(interface)
        self.stats.received += 1
        failure = validate_for_forwarding(raw)
        if failure is ValidationFailure.HOP_LIMIT_EXCEEDED:
            # hop limit only gates *forwarding* (RFC 2460 §8.2): a packet
            # addressed to this router is still delivered locally below
            if not self._is_local_delivery(raw):
                self._icmp_error(interface, raw, kind="time-exceeded")
                self.stats.drop(failure.value)
                return
        elif failure is not None and not self._is_local_delivery(raw):
            self.stats.drop(failure.value)
            return

        destination = Ipv6Address.from_bytes(raw[24:40])
        if self._addressed_to_router(destination):
            self._deliver_local(interface, raw, now)
            return
        if destination.is_multicast():
            self.stats.drop("multicast-scope")
            return
        if raw[6] == 0 and not self._hop_by_hop_permits(raw):
            self.stats.drop("hop-by-hop-option")
            return

        result = self.table.lookup(destination)
        if result is None:
            self._icmp_error(interface, raw, kind="no-route")
            self.stats.drop("no-route")
            return
        forwarded = raw[:7] + bytes([raw[7] - 1]) + raw[8:]
        self.line_cards[result.interface].transmit(forwarded)
        self.stats.forwarded += 1

    def poll_inputs(self, now: float = 0.0) -> int:
        """Drain every line card's pending input through :meth:`receive`.

        No library error may escape the simulation loop: real silicon
        counts a malformed datagram and moves on, so any
        :class:`ReproError` a corrupted frame provokes past the targeted
        validity checks is converted into a drop statistic here.
        """
        processed = 0
        for card in self.line_cards:
            while card.has_pending_input():
                raw = card.pop_input()
                assert raw is not None
                try:
                    self.receive(card.index, raw, now=now)
                except ReproError:
                    self.stats.drop("ingress-error")
                processed += 1
        return processed

    # -- control plane -----------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance RIPng timers; emits periodic/triggered updates."""
        if self.ripng is None:
            return
        for interface, message in self.ripng.tick(now):
            self._send_ripng(interface, message)

    def _deliver_local(self, interface: int, raw: bytes, now: float) -> None:
        try:
            datagram = Ipv6Datagram.from_bytes(raw)
        except Ipv6Error:
            self.stats.drop("malformed-local")
            return
        if datagram.upper_layer_protocol == PROTO_UDP and self.ripng:
            try:
                udp = UdpDatagram.from_bytes(
                    datagram.payload, datagram.header.source,
                    datagram.header.destination)
            except Ipv6Error:
                self.stats.drop("bad-udp")
                return
            if udp.destination_port == RIPNG_PORT:
                self._receive_ripng(interface, datagram, udp, now)
                return
        self.stats.delivered_local += 1

    def _receive_ripng(self, interface: int, datagram: Ipv6Datagram,
                       udp: UdpDatagram, now: float) -> None:
        """Feed one RIPng datagram to the engine, surfacing its verdicts.

        Whole-message refusals become ``dropped`` entries (the datagram
        died); RTE-level refusals are mirrored into
        :attr:`RouterStatistics.control_rejected` — the datagram itself
        was processed, only some of its routes were refused. Both are
        published as ``ripng_rejected_total`` observability counters.
        """
        assert self.ripng is not None
        sender = datagram.header.source
        if sender in self.interface_addresses:
            # our own multicast update looped back (or was spoofed with
            # our address): processing it would corrupt split horizon
            self.stats.drop("ripng-own-source")
            self._count_rejections({"own-source": 1})
            return
        malformed_before = self.ripng.malformed_dropped
        messages_before = dict(self.ripng.rejected_messages)
        rtes_before = dict(self.ripng.rejected_rtes)
        replies = self.ripng.receive(udp.payload, sender=sender,
                                     interface=interface, now=now)
        if self.ripng.malformed_dropped != malformed_before:
            self.stats.drop("bad-ripng")
            self._count_rejections({"malformed": 1})
            return
        message_deltas = _dict_delta(messages_before,
                                     self.ripng.rejected_messages)
        if message_deltas:
            for reason, count in message_deltas.items():
                self.stats.drop(f"ripng-{reason}", count)
            self._count_rejections(message_deltas)
            return
        rte_deltas = _dict_delta(rtes_before, self.ripng.rejected_rtes)
        for reason, count in rte_deltas.items():
            self.stats.reject_control(reason, count)
        self._count_rejections(rte_deltas)
        self.stats.ripng_messages += 1
        for out_interface, message in replies:
            self._send_ripng(out_interface, message, unicast_to=sender)

    def _count_rejections(self, deltas: Dict[str, int]) -> None:
        if not deltas:
            return
        counter = get_registry().counter(
            "ripng_rejected_total",
            "Hostile or invalid RIPng input refused, by reason",
            labels=("router", "reason"))
        for reason, count in deltas.items():
            counter.inc(count, router=self.name, reason=reason)

    def _send_ripng(self, interface: int, message_bytes: bytes,
                    unicast_to: Optional[Ipv6Address] = None) -> None:
        source = self.interface_addresses[interface]
        destination = unicast_to or RIPNG_MULTICAST_GROUP
        udp = UdpDatagram(source_port=RIPNG_PORT,
                          destination_port=RIPNG_PORT,
                          payload=message_bytes)
        datagram = Ipv6Datagram.build(
            source=source, destination=destination,
            next_header=PROTO_UDP,
            payload=udp.to_bytes(source, destination),
            hop_limit=255)
        self.line_cards[interface].transmit(datagram.to_bytes())

    def _icmp_error(self, interface: int, raw: bytes, kind: str) -> None:
        """Best-effort ICMPv6 error back toward the offending source."""
        try:
            source = Ipv6Address.from_bytes(raw[8:24])
        except Ipv6Error:
            return
        if source.is_unspecified() or source.is_multicast():
            return
        if kind == "time-exceeded":
            message = time_exceeded(raw)
        else:
            message = destination_unreachable(raw)
        local = self.interface_addresses[interface]
        datagram = Ipv6Datagram.build(
            source=local, destination=source,
            next_header=PROTO_ICMPV6,
            payload=message.to_bytes(local, source),
            hop_limit=ICMP_HOP_LIMIT)
        result = self.table.lookup(source)
        out_interface = result.interface if result else interface
        self.line_cards[out_interface].transmit(datagram.to_bytes())

    # -- helpers ------------------------------------------------------------------------

    def _hop_by_hop_permits(self, raw: bytes) -> bool:
        """Walk a hop-by-hop options header (RFC 2460 §4.3).

        Every router must examine these options. We honour padding (Pad1,
        PadN) and skip-over options (action bits 00); anything demanding
        action is punted — i.e. the datagram is not fast-path forwarded.
        """
        if len(raw) < 42:
            return False
        length = (raw[41] + 1) * 8
        options = raw[42:40 + length]
        if len(options) < length - 2:
            return False
        i = 0
        while i < len(options):
            option_type = options[i]
            if option_type == 0:  # Pad1
                i += 1
                continue
            if i + 1 >= len(options):
                return False
            option_len = options[i + 1]
            if i + 2 + option_len > len(options):
                return False
            if option_type != 1 and (option_type >> 6) != 0b00:
                return False  # option requires action: slow path
            i += 2 + option_len
        return True

    def _addressed_to_router(self, destination: Ipv6Address) -> bool:
        if destination in self.interface_addresses:
            return True
        return destination == RIPNG_MULTICAST_GROUP

    def _is_local_delivery(self, raw: bytes) -> bool:
        if len(raw) < 40:
            return False
        try:
            return self._addressed_to_router(Ipv6Address.from_bytes(raw[24:40]))
        except Ipv6Error:
            return False

    def _check_interface(self, interface: int) -> None:
        if not 0 <= interface < len(self.line_cards):
            raise ReproError(
                f"{self.name}: no interface {interface} "
                f"(has {len(self.line_cards)})")

    def routes(self) -> List[RouteEntry]:
        return self.table.entries()

    def __repr__(self) -> str:
        return (f"<Ipv6Router {self.name!r} {len(self.line_cards)} ifaces, "
                f"{len(self.table)} routes>")
