"""Balanced-tree routing table: logarithmic search, complex updates.

The paper's second implementation option ("we implemented a balanced tree
structure, that offers logarithmic complexity of searching time. However,
the insertion and deletion operations become much more complex", §4).

Design
------
An AVL tree keyed by ``(network_value, prefix_length)``. Longest-prefix
match uses the classic *floor + enclosing chain* technique:

1. Descend the tree for the floor of key ``(address, 129)`` — the greatest
   stored key not exceeding the address (129 sorts after every real prefix
   length, so equal-network prefixes all qualify). This is the logarithmic
   part.
2. The LPM answer, if it exists, is the first prefix containing the address
   in ``[floor, floor.enclosing, floor.enclosing.enclosing, ...]`` where
   *enclosing* links each prefix to its immediate enclosing prefix in the
   table.

   Why this is complete: if prefix P contains address A then
   ``P.network <= A``, so P's key is <= (A, 129); by floor's maximality
   ``P.key <= floor.key``, hence ``P.network <= floor.network <= A`` and P
   contains ``floor.network``. Two prefixes sharing an address are nested,
   and P cannot be nested *inside* floor's prefix (that would give P a key
   above floor's, contradicting maximality), so P encloses floor — i.e. P
   is on floor's enclosing chain. The chain is ordered most-specific-first,
   so the first hit is the longest match.

Maintaining the enclosing links is what makes insert/delete "much more
complex": besides AVL rebalancing, an insert must adopt every existing
prefix it now immediately encloses, and a delete must hand its children
back to its own encloser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable
from repro.routing.entry import RouteEntry
from repro.routing.memimage import (
    ENTRY_BITS,
    corrupt_entry,
    flip_bit,
    pack_entry,
    raw_prefix,
)

_ADDRESS_SENTINEL_LENGTH = 129


def _key(prefix: Ipv6Prefix) -> Tuple[int, int]:
    return (prefix.network.value, prefix.length)


@dataclass
class _Node:
    entry: RouteEntry
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    height: int = 1
    #: immediate enclosing prefix in the table (None = top level)
    enclosing: Optional[Ipv6Prefix] = None

    @property
    def key(self) -> Tuple[int, int]:
        return _key(self.entry.prefix)


def _height(node: Optional[_Node]) -> int:
    return node.height if node else 0


def _update_height(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update_height(node)
    _update_height(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update_height(node)
    _update_height(pivot)
    return pivot


def _rebalance(node: _Node) -> _Node:
    _update_height(node)
    factor = _balance_factor(node)
    if factor > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if factor < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class BalancedTreeRoutingTable(RoutingTable):
    """AVL-tree routing table with enclosing-prefix chains for LPM."""

    kind = "balanced-tree"

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        super().__init__(capacity)
        self._root: Optional[_Node] = None
        self._nodes: Dict[Ipv6Prefix, _Node] = {}

    # -- lookup ---------------------------------------------------------------

    def _lookup(self, address: Ipv6Address) -> Tuple[Optional[RouteEntry], int]:
        target = (address.value, _ADDRESS_SENTINEL_LENGTH)
        floor: Optional[_Node] = None
        node = self._root
        steps = 0
        while node is not None:
            steps += 1
            if node.key <= target:
                floor = node
                node = node.right
            else:
                node = node.left
        # Walk the enclosing chain for the first prefix containing address.
        # Chain length is bounded by the node count: a longer walk means
        # a corrupted enclosing pointer closed a cycle — fail stop.
        candidate: Optional[Ipv6Prefix] = floor.entry.prefix if floor else None
        chain_budget = len(self._nodes) + 1
        while candidate is not None:
            chain_budget -= 1
            if chain_budget < 0:
                raise RoutingTableError(
                    "balanced-tree enclosing chain does not terminate "
                    "(corrupted enclosing pointer)")
            steps += 1
            chain_node = self._nodes[candidate]
            if chain_node.entry.prefix.contains(address):
                return chain_node.entry, steps
            candidate = chain_node.enclosing
        return None, steps

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        node = self._nodes.get(prefix)
        return node.entry if node else None

    # -- insert ---------------------------------------------------------------

    def _insert(self, entry: RouteEntry) -> int:
        prefix = entry.prefix
        existing = self._nodes.get(prefix)
        if existing is not None:
            # Replace cost = the actual descent to the node + one write
            # (previously reported the tree height, which over- or
            # under-counted depending on where the node sat).
            steps = self._descent_steps(_key(prefix))
            existing.entry = entry
            return steps + 1
        steps = _height(self._root)

        new_node = _Node(entry=entry)
        self._root = self._avl_insert(self._root, new_node)
        self._nodes[prefix] = new_node

        # Compute the new node's encloser, then adopt any node it now
        # immediately encloses (the "complex insertion" of the paper).
        new_node.enclosing = self._find_enclosing(prefix)
        adopted = 0
        for other in self._range_nodes(prefix):
            if other is new_node:
                continue
            # A node inside our range with a longer prefix is nested in us;
            # adopt it iff we are now its most specific encloser.
            if (other.entry.prefix.length > prefix.length
                    and other.enclosing == new_node.enclosing):
                other.enclosing = prefix
                adopted += 1
        return steps + adopted + 1

    def _descent_steps(self, key: Tuple[int, int]) -> int:
        """Nodes examined descending from the root to *key* (inclusive)."""
        node = self._root
        steps = 0
        while node is not None:
            steps += 1
            if key == node.key:
                break
            node = node.left if key < node.key else node.right
        return steps

    def _avl_insert(self, node: Optional[_Node], new_node: _Node) -> _Node:
        if node is None:
            return new_node
        if new_node.key < node.key:
            node.left = self._avl_insert(node.left, new_node)
        else:
            node.right = self._avl_insert(node.right, new_node)
        return _rebalance(node)

    def _find_enclosing(self, prefix: Ipv6Prefix) -> Optional[Ipv6Prefix]:
        """The most specific table prefix strictly containing *prefix*."""
        target = (prefix.network.value, prefix.length - 1) if prefix.length else (-1, -1)
        floor: Optional[_Node] = None
        node = self._root
        while node is not None:
            if node.key <= target:
                floor = node
                node = node.right
            else:
                node = node.left
        candidate = floor.entry.prefix if floor else None
        while candidate is not None:
            candidate_node = self._nodes[candidate]
            cp = candidate_node.entry.prefix
            if cp.length < prefix.length and cp.contains(prefix.network):
                return cp
            candidate = candidate_node.enclosing
        return None

    # -- bulk load -------------------------------------------------------------

    def load(self, entries: "list[RouteEntry]") -> None:
        """Bulk build: one sort, balanced construction, single-pass
        enclosing-chain computation.

        The per-insert path recomputes ``_find_enclosing`` plus a range
        scan for every entry; this builds a perfectly balanced tree from
        the sorted keys and derives every enclosing link in one stack
        sweep over key order (a prefix's encloser is the nearest
        still-open containing prefix). Only valid from an empty table;
        otherwise falls back to the per-insert path.
        """
        if self._root is not None:
            super().load(entries)
            return
        self._check_bulk_capacity(entries)
        merged: Dict[Ipv6Prefix, RouteEntry] = {}
        for entry in entries:
            merged[entry.prefix] = entry
        ordered = sorted(merged.values(), key=lambda entry: _key(entry.prefix))
        nodes = [_Node(entry=entry) for entry in ordered]
        self._root = self._build_balanced(nodes, 0, len(nodes))
        self._nodes = {node.entry.prefix: node for node in nodes}
        # Prefixes form a laminar family, so in (network, length) order
        # the immediate encloser is the nearest open ancestor on a stack.
        stack: List[_Node] = []
        for node in nodes:
            prefix = node.entry.prefix
            while stack:
                top = stack[-1].entry.prefix
                if top.length < prefix.length and top.contains(prefix.network):
                    break
                stack.pop()
            node.enclosing = stack[-1].entry.prefix if stack else None
            stack.append(node)
        self._account_bulk_load(len(entries), len(nodes))

    def _build_balanced(self, nodes: List[_Node],
                        lo: int, hi: int) -> Optional[_Node]:
        if lo >= hi:
            return None
        mid = (lo + hi) // 2
        node = nodes[mid]
        node.left = self._build_balanced(nodes, lo, mid)
        node.right = self._build_balanced(nodes, mid + 1, hi)
        _update_height(node)
        return node

    # -- delete ---------------------------------------------------------------

    def _remove(self, prefix: Ipv6Prefix) -> int:
        node = self._nodes.get(prefix)
        if node is None:
            raise RoutingTableError(f"no such route: {prefix}")
        steps = _height(self._root)
        heir = node.enclosing
        released = 0
        for other in self._range_nodes(prefix):
            if other.enclosing == prefix:
                other.enclosing = heir
                released += 1
        self._root = self._avl_delete(self._root, _key(prefix))
        del self._nodes[prefix]
        return steps + released + 1

    def _avl_delete(self, node: Optional[_Node], key: Tuple[int, int]) -> Optional[_Node]:
        if node is None:
            raise RoutingTableError(f"key not in tree: {key}")
        if key < node.key:
            node.left = self._avl_delete(node.left, key)
        elif key > node.key:
            node.right = self._avl_delete(node.right, key)
        else:
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            # Swap payloads so the dict keeps pointing at live nodes, then
            # remove the successor position from the right subtree.
            node.entry, successor.entry = successor.entry, node.entry
            node.enclosing, successor.enclosing = successor.enclosing, node.enclosing
            self._nodes[node.entry.prefix] = node
            self._nodes[successor.entry.prefix] = successor
            node.right = self._avl_delete(node.right, successor.key)
        return _rebalance(node)

    # -- iteration helpers ------------------------------------------------------

    def _range_nodes(self, prefix: Ipv6Prefix) -> List[_Node]:
        """All nodes whose network lies inside *prefix* (inclusive scan)."""
        low = prefix.network.value
        high = low | (~prefix.mask() & ((1 << 128) - 1))
        out: List[_Node] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            value = node.entry.prefix.network.value
            if value >= low:
                visit(node.left)
            if low <= value <= high:
                out.append(node)
            if value <= high:
                visit(node.right)

        visit(self._root)
        return out

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[RouteEntry]:
        out: List[RouteEntry] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            visit(node.left)
            out.append(node.entry)
            visit(node.right)

        visit(self._root)
        return iter(out)

    # -- memory-state corruption seam -------------------------------------------
    #
    # One record per tree node, in-order (= key order, deterministic
    # across processes). The 56-byte image is the 38-byte entry payload
    # followed by the 18-byte enclosing pointer (present flag 1 +
    # network 16 + length 1). Corrupting the payload leaves the node
    # filed in ``_nodes`` under its *old* prefix — exactly the
    # key-desynchronization real SRAM corruption causes; corrupting the
    # pointer damages only the LPM chain.

    def memory_sites(self) -> Tuple[str, ...]:
        return ("tree-node",)

    def _ordered_nodes(self) -> List[_Node]:
        out: List[_Node] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            visit(node.left)
            out.append(node)
            visit(node.right)

        visit(self._root)
        return out

    @staticmethod
    def _pack_enclosing(enclosing: Optional[Ipv6Prefix]) -> bytes:
        if enclosing is None:
            return bytes(18)
        return (b"\x01" + enclosing.network.value.to_bytes(16, "big")
                + bytes([enclosing.length & 0xFF]))

    def memory_record_count(self, site: str) -> int:
        if site != "tree-node":
            return super().memory_record_count(site)
        return len(self._nodes)

    def memory_record(self, site: str, index: int) -> bytes:
        if site != "tree-node":
            return super().memory_record(site, index)
        nodes = self._ordered_nodes()
        self._check_memory_index(site, index, len(nodes))
        node = nodes[index]
        return pack_entry(node.entry) + self._pack_enclosing(node.enclosing)

    def memory_records(self, site: str) -> List[bytes]:
        if site != "tree-node":
            return super().memory_records(site)
        return [pack_entry(node.entry) + self._pack_enclosing(node.enclosing)
                for node in self._ordered_nodes()]

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        if site != "tree-node":
            return super().corrupt_memory(site, index, bit)
        nodes = self._ordered_nodes()
        self._check_memory_index(site, index, len(nodes))
        node = nodes[index]
        before = node.entry.prefix
        if bit < ENTRY_BITS:
            node.entry = corrupt_entry(node.entry, bit)
            return f"tree-node[{index}] payload bit {bit} ({before})"
        pointer = flip_bit(self._pack_enclosing(node.enclosing),
                           bit - ENTRY_BITS)
        if pointer[0]:
            node.enclosing = raw_prefix(
                int.from_bytes(pointer[1:17], "big"), pointer[17])
        else:
            node.enclosing = None
        return f"tree-node[{index}] enclosing bit {bit - ENTRY_BITS} ({before})"

    # -- introspection (tests assert the AVL invariant) --------------------------

    def tree_height(self) -> int:
        return _height(self._root)

    def table_memory_bytes(self) -> int:
        """On-chip node image: the 16-word RTU stride per node."""
        return len(self._nodes) * 64

    def check_invariants(self) -> None:
        """Raise if the AVL balance or ordering invariant is violated."""

        def visit(node: Optional[_Node]) -> Tuple[int, Optional[Tuple[int, int]],
                                                  Optional[Tuple[int, int]]]:
            if node is None:
                return 0, None, None
            left_h, left_min, left_max = visit(node.left)
            right_h, right_min, right_max = visit(node.right)
            if abs(left_h - right_h) > 1:
                raise RoutingTableError(
                    f"AVL balance violated at {node.entry.prefix}")
            if left_max is not None and left_max >= node.key:
                raise RoutingTableError(
                    f"BST order violated at {node.entry.prefix}")
            if right_min is not None and right_min <= node.key:
                raise RoutingTableError(
                    f"BST order violated at {node.entry.prefix}")
            height = 1 + max(left_h, right_h)
            if height != node.height:
                raise RoutingTableError(
                    f"stale height at {node.entry.prefix}")
            low = left_min if left_min is not None else node.key
            high = right_max if right_max is not None else node.key
            return height, low, high

        visit(self._root)
