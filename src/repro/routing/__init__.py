"""Routing tables with identical LPM semantics and distinct cost models.

Three implementations match the paper's §4 evaluation:

* :class:`SequentialRoutingTable` — linear scan over cache memory (O(n));
* :class:`BalancedTreeRoutingTable` — AVL tree (O(log n) search, complex
  updates);
* :class:`CamRoutingTable` — ternary CAM + SRAM (O(1) search, 40 ns).

Two more scale past the paper's 100-entry design point to
million-prefix FIBs (see the CRAM-lens blueprint in PAPERS.md):

* :class:`MultibitTrieRoutingTable` — stride-based leaf-pushed trie
  (bounded ``ceil(128/stride)`` accesses regardless of size);
* :class:`BloomRoutingTable` — hash table per prefix length behind a
  parallel Bloom-filter bank (~1 expected memory access per lookup).
"""

from repro.routing.balanced_tree import BalancedTreeRoutingTable
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable, TableStatistics
from repro.routing.bloom import BloomRoutingTable
from repro.routing.cam import CAM_SEARCH_TIME_NS, CamPhysicalModel, CamRoutingTable
from repro.routing.entry import LookupResult, RouteEntry
from repro.routing.memimage import (
    ENTRY_BITS,
    ENTRY_BYTES,
    corrupt_entry,
    pack_entry,
    unpack_entry_raw,
)
from repro.routing.multibit_trie import MultibitTrieRoutingTable
from repro.routing.protected import (
    PROTECTION_MODES,
    CorruptionEvent,
    ProtectedRoutingTable,
)
from repro.routing.sequential import SequentialRoutingTable

TABLE_KINDS = {
    SequentialRoutingTable.kind: SequentialRoutingTable,
    BalancedTreeRoutingTable.kind: BalancedTreeRoutingTable,
    CamRoutingTable.kind: CamRoutingTable,
    MultibitTrieRoutingTable.kind: MultibitTrieRoutingTable,
    BloomRoutingTable.kind: BloomRoutingTable,
}


def make_table(kind: str, capacity: int = DEFAULT_CAPACITY) -> RoutingTable:
    """Factory over the implementations by their ``kind`` string."""
    try:
        cls = TABLE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown routing table kind {kind!r}; "
            f"choose from {sorted(TABLE_KINDS)}") from None
    return cls(capacity=capacity)


__all__ = [
    "BalancedTreeRoutingTable", "CamRoutingTable", "SequentialRoutingTable",
    "MultibitTrieRoutingTable", "BloomRoutingTable",
    "CamPhysicalModel", "CAM_SEARCH_TIME_NS",
    "RoutingTable", "TableStatistics", "DEFAULT_CAPACITY",
    "LookupResult", "RouteEntry", "TABLE_KINDS", "make_table",
    "ENTRY_BITS", "ENTRY_BYTES",
    "corrupt_entry", "pack_entry", "unpack_entry_raw",
    "PROTECTION_MODES", "CorruptionEvent", "ProtectedRoutingTable",
]
