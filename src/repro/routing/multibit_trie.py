"""Compressed multibit-trie routing table (stride-based, leaf-pushed).

The modern large-FIB structure the CRAM-lens literature builds on:
instead of inspecting one address bit per memory access (a unibit trie
needs up to 128 accesses for IPv6), the trie consumes ``stride`` bits
per level, so a lookup is bounded by ``ceil(128 / stride)`` memory
accesses regardless of table size — the property that lets it scale to
millions of prefixes at a fixed hardware pipeline depth.

Design
------
Each node spans ``stride`` address bits. Prefixes whose length falls
inside a node's span are *expanded* (controlled prefix expansion — the
within-node form of leaf pushing): a prefix covering ``t`` of the
node's ``w`` bits is written into the ``2^(w-t)`` chunk slots it
covers, longest prefix winning each slot. A lookup therefore performs
exactly one indexed read per level and keeps the deepest slot hit seen,
which is the longest match:

* within a node, slots are filled longest-prefix-first, and
* a prefix terminating at depth ``d`` is strictly longer than any
  terminating at a shallower depth, so deeper hits always win.

Children are stored sparsely (a dict keyed by chunk value), which is
the "compressed" part: dense 2^stride child arrays would be
prohibitive for the sparse upper levels of real FIBs.

Updates re-expand only the one node a prefix terminates in, from that
node's exact terminal set — removal therefore restores exactly the
state repeated inserts would have built (verified by
:meth:`check_invariants`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable
from repro.routing.entry import RouteEntry
from repro.routing.memimage import corrupt_entry, pack_entry

ADDRESS_BITS = 128

DEFAULT_STRIDE = 8
"""Eight bits per level: 16 memory accesses bound an IPv6 lookup."""


class _TrieNode:
    __slots__ = ("children", "slots", "terminals")

    def __init__(self) -> None:
        #: chunk value -> child node (sparse)
        self.children: Dict[int, "_TrieNode"] = {}
        #: expanded chunk value -> best prefix terminating in this node
        self.slots: Dict[int, RouteEntry] = {}
        #: exact prefixes terminating in this node (expansion source)
        self.terminals: Dict[Ipv6Prefix, RouteEntry] = {}

    def is_empty(self) -> bool:
        return not self.children and not self.terminals


class MultibitTrieRoutingTable(RoutingTable):
    """Stride-bit trie with controlled prefix expansion per node."""

    kind = "multibit-trie"
    hardware_search = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 stride: int = DEFAULT_STRIDE):
        super().__init__(capacity)
        if not 1 <= stride <= 32:
            raise RoutingTableError(f"stride out of range: {stride}")
        self.stride = stride
        self._root = _TrieNode()
        self._node_count = 1
        #: exact-prefix ground truth, insertion-ordered (O(1) get/len)
        self._routes: Dict[Ipv6Prefix, RouteEntry] = {}

    # -- bit plumbing ----------------------------------------------------------

    def _level_width(self, depth: int) -> int:
        """Bits the node at *depth* spans (the last level may be short)."""
        return min(self.stride, ADDRESS_BITS - depth * self.stride)

    def _chunk(self, value: int, depth: int) -> int:
        width = self._level_width(depth)
        shift = ADDRESS_BITS - depth * self.stride - width
        return (value >> shift) & ((1 << width) - 1)

    def _terminal_depth(self, length: int) -> int:
        """Depth of the node a prefix of *length* terminates in."""
        return (length - 1) // self.stride if length else 0

    def max_depth(self) -> int:
        return (ADDRESS_BITS + self.stride - 1) // self.stride

    # -- expansion -------------------------------------------------------------

    def _expansion(self, prefix: Ipv6Prefix,
                   depth: int) -> Tuple[int, int]:
        """(first chunk, slot count) *prefix* covers in its node."""
        width = self._level_width(depth)
        in_node = prefix.length - depth * self.stride  # 0 for ::/0
        base = self._chunk(prefix.network.value, depth)
        span = 1 << (width - in_node)
        return base, span

    def _reexpand(self, node: _TrieNode, depth: int) -> int:
        """Rebuild *node*'s slot table from its terminals; returns the
        number of slot writes (fills shortest-first so longer prefixes
        overwrite — the leaf-pushed priority)."""
        node.slots = {}
        writes = 0
        ordered = sorted(node.terminals.items(),
                         key=lambda item: item[0].length)
        for prefix, entry in ordered:
            base, span = self._expansion(prefix, depth)
            for chunk in range(base, base + span):
                node.slots[chunk] = entry
            writes += span
        return writes

    # -- core operations -------------------------------------------------------

    def _insert(self, entry: RouteEntry) -> int:
        prefix = entry.prefix
        target_depth = self._terminal_depth(prefix.length)
        node = self._root
        steps = 1
        for depth in range(target_depth):
            chunk = self._chunk(prefix.network.value, depth)
            child = node.children.get(chunk)
            if child is None:
                child = node.children[chunk] = _TrieNode()
                self._node_count += 1
            node = child
            steps += 1
        node.terminals[prefix] = entry
        self._routes[prefix] = entry
        return steps + self._reexpand(node, target_depth)

    def _remove(self, prefix: Ipv6Prefix) -> int:
        if prefix not in self._routes:
            raise RoutingTableError(f"no such route: {prefix}")
        target_depth = self._terminal_depth(prefix.length)
        path: List[Tuple[_TrieNode, int]] = []  # (parent, chunk taken)
        node = self._root
        steps = 1
        for depth in range(target_depth):
            chunk = self._chunk(prefix.network.value, depth)
            path.append((node, chunk))
            node = node.children[chunk]
            steps += 1
        del node.terminals[prefix]
        del self._routes[prefix]
        steps += self._reexpand(node, target_depth)
        # Prune now-empty nodes bottom-up (the compression invariant:
        # no empty interior nodes survive a removal).
        while path and node.is_empty():
            parent, chunk = path.pop()
            del parent.children[chunk]
            self._node_count -= 1
            node = parent
        return steps

    def _lookup(self, address: Ipv6Address) -> Tuple[Optional[RouteEntry], int]:
        value = address.value
        node = self._root
        best: Optional[RouteEntry] = None
        steps = 0
        depth = 0
        # Descent depth is bounded by the pipeline: exceeding it means a
        # corrupted child page steered the walk off the tree — fail stop.
        depth_budget = self.max_depth()
        while True:
            if depth > depth_budget:
                raise RoutingTableError(
                    "multibit-trie descent exceeds the pipeline depth "
                    "(corrupted child page)")
            steps += 1  # one memory access per level
            chunk = self._chunk(value, depth)
            slot = node.slots.get(chunk)
            if slot is not None:
                best = slot
            child = node.children.get(chunk)
            if child is None:
                return best, steps
            node = child
            depth += 1

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        return self._routes.get(prefix)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(list(self._routes.values()))

    # -- bulk load -------------------------------------------------------------

    def load(self, entries: "list[RouteEntry]") -> None:
        """Bulk build: place all terminals first, then expand every
        dirty node exactly once (the per-insert path re-expands a node
        for each of its prefixes). Empty-table fast path only."""
        if self._routes:
            super().load(entries)
            return
        self._check_bulk_capacity(entries)
        merged: Dict[Ipv6Prefix, RouteEntry] = {}
        for entry in entries:
            merged[entry.prefix] = entry
        dirty: Dict[int, Tuple[_TrieNode, int]] = {}
        steps = 0
        for prefix, entry in merged.items():
            target_depth = self._terminal_depth(prefix.length)
            node = self._root
            steps += 1
            for depth in range(target_depth):
                chunk = self._chunk(prefix.network.value, depth)
                child = node.children.get(chunk)
                if child is None:
                    child = node.children[chunk] = _TrieNode()
                    self._node_count += 1
                node = child
                steps += 1
            node.terminals[prefix] = entry
            self._routes[prefix] = entry
            dirty[id(node)] = (node, target_depth)
        for node, depth in dirty.values():
            steps += self._reexpand(node, depth)
        self._account_bulk_load(len(entries), steps)

    # -- hardware search model -------------------------------------------------

    def search_latency_cycles(self) -> int:
        """Static pipeline depth: one on-chip SRAM access per level,
        provisioned for the worst-case (full-depth) descent."""
        return self.max_depth()

    # -- introspection ---------------------------------------------------------

    def node_count(self) -> int:
        return self._node_count

    def slot_count(self) -> int:
        """Total expanded slots — the memory footprint driver."""
        total = 0

        def visit(node: _TrieNode) -> None:
            nonlocal total
            total += len(node.slots)
            for child in node.children.values():
                visit(child)

        visit(self._root)
        return total

    def table_memory_bytes(self) -> int:
        """On-chip SRAM footprint: a 16-byte header per node plus a
        4-byte word per occupied slot and child pointer (the sparse
        pages the "compressed" layout stores)."""
        total = 0

        def visit(node: _TrieNode) -> None:
            nonlocal total
            total += 16 + 4 * (len(node.slots) + len(node.children))
            for child in node.children.values():
                visit(child)

        visit(self._root)
        return total

    # -- memory-state corruption seam ------------------------------------------
    #
    # Two sites, both enumerated in pre-order DFS with sorted chunk keys
    # (deterministic across processes):
    #
    # * ``trie-node`` — one record per node *with children*: its sparse
    #   child-pointer page, packed as the sorted 2-byte chunk keys.
    #   Flipping a key bit re-files the child under the wrong chunk —
    #   mis-steering descents, possibly overwriting a sibling pointer
    #   (silent subtree loss), possibly parking the subtree at an
    #   unreachable chunk.
    # * ``trie-slot`` — one record per expanded slot: the 2-byte chunk
    #   tag plus the 38-byte leaf-pushed entry. Flipping a tag bit
    #   re-keys the slot; flipping an entry bit corrupts the stored
    #   route in place.

    def memory_sites(self) -> Tuple[str, ...]:
        return ("trie-node", "trie-slot")

    def _dfs_nodes(self) -> List[_TrieNode]:
        out: List[_TrieNode] = []

        def visit(node: _TrieNode) -> None:
            out.append(node)
            for chunk in sorted(node.children):
                visit(node.children[chunk])

        visit(self._root)
        return out

    def _pointer_pages(self) -> List[_TrieNode]:
        return [node for node in self._dfs_nodes() if node.children]

    def _slot_records(self) -> List[Tuple[_TrieNode, int]]:
        return [(node, chunk) for node in self._dfs_nodes()
                for chunk in sorted(node.slots)]

    def memory_record_count(self, site: str) -> int:
        if site == "trie-node":
            return len(self._pointer_pages())
        if site == "trie-slot":
            return len(self._slot_records())
        return super().memory_record_count(site)

    def memory_record(self, site: str, index: int) -> bytes:
        if site == "trie-node":
            pages = self._pointer_pages()
            self._check_memory_index(site, index, len(pages))
            return b"".join(chunk.to_bytes(2, "big")
                            for chunk in sorted(pages[index].children))
        if site == "trie-slot":
            records = self._slot_records()
            self._check_memory_index(site, index, len(records))
            node, chunk = records[index]
            return chunk.to_bytes(2, "big") + pack_entry(node.slots[chunk])
        return super().memory_record(site, index)

    def memory_records(self, site: str) -> List[bytes]:
        if site == "trie-node":
            return [b"".join(chunk.to_bytes(2, "big")
                             for chunk in sorted(node.children))
                    for node in self._pointer_pages()]
        if site == "trie-slot":
            return [chunk.to_bytes(2, "big") + pack_entry(node.slots[chunk])
                    for node, chunk in self._slot_records()]
        return super().memory_records(site)

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        if site == "trie-node":
            pages = self._pointer_pages()
            self._check_memory_index(site, index, len(pages))
            node = pages[index]
            keys = sorted(node.children)
            old_chunk = keys[bit // 16]
            new_chunk = old_chunk ^ (1 << (15 - bit % 16))
            child = node.children.pop(old_chunk)
            lost = new_chunk in node.children
            node.children[new_chunk] = child
            return (f"trie-node[{index}] child {old_chunk}->{new_chunk}"
                    + (" overwriting sibling" if lost else ""))
        if site == "trie-slot":
            records = self._slot_records()
            self._check_memory_index(site, index, len(records))
            node, chunk = records[index]
            if bit < 16:
                new_chunk = chunk ^ (1 << (15 - bit))
                entry = node.slots.pop(chunk)
                lost = new_chunk in node.slots
                node.slots[new_chunk] = entry
                return (f"trie-slot[{index}] tag {chunk}->{new_chunk}"
                        + (" overwriting slot" if lost else ""))
            node.slots[chunk] = corrupt_entry(node.slots[chunk], bit - 16)
            return f"trie-slot[{index}] entry bit {bit - 16} (chunk {chunk})"
        return super().corrupt_memory(site, index, bit)

    def check_invariants(self) -> None:
        """Raise if the trie's structural invariants are violated:
        terminal placement, slot-expansion consistency, compression
        (no empty interior nodes), and node accounting."""
        seen: Dict[Ipv6Prefix, RouteEntry] = {}
        count = 0

        def visit(node: _TrieNode, depth: int) -> None:
            nonlocal count
            count += 1
            if node is not self._root and node.is_empty():
                raise RoutingTableError(
                    f"empty interior node at depth {depth}")
            width = self._level_width(depth)
            for prefix, entry in node.terminals.items():
                if self._terminal_depth(prefix.length) != depth:
                    raise RoutingTableError(
                        f"{prefix} terminates at the wrong depth {depth}")
                if prefix in seen:
                    raise RoutingTableError(f"duplicate terminal {prefix}")
                seen[prefix] = entry
            expected: Dict[int, RouteEntry] = {}
            for prefix, entry in sorted(node.terminals.items(),
                                        key=lambda item: item[0].length):
                base, span = self._expansion(prefix, depth)
                for chunk in range(base, base + span):
                    expected[chunk] = entry
            if expected != node.slots:
                raise RoutingTableError(
                    f"stale slot expansion at depth {depth}")
            for chunk, child in node.children.items():
                if not 0 <= chunk < (1 << width):
                    raise RoutingTableError(
                        f"chunk {chunk} out of range at depth {depth}")
                visit(child, depth + 1)

        visit(self._root, 0)
        if seen != self._routes:
            raise RoutingTableError("terminal set diverged from route set")
        if count != self._node_count:
            raise RoutingTableError(
                f"node count {self._node_count} != reachable {count}")
