"""Integrity-protected routing table: detect corruption, degrade, rebuild.

Wraps any :class:`~repro.routing.base.RoutingTable` with the classic
SRAM protection ladder:

``none``
    Pure pass-through — the unprotected baseline the sweep measures
    SDC rates against.
``parity``
    One even-parity bit per protected record. Free to compute, one bit
    of overhead per record, catches every odd-weight upset (all single
    bit flips) but is blind to even-weight damage in one record.
``checksum``
    A CRC-32 word per protected record: 32 bits of overhead, detects
    all burst damage a bit-flip campaign can produce.

Protection turns silent corruption into *detected* events on three
paths, none of which is allowed to raise out of a lookup:

1. **Hit verification** — every lookup hit is re-verified against the
   stored per-route protection word and a containment check; a mismatch
   quarantines the damaged record (best-effort removal from the inner
   structure) and answers from surviving state.
2. **Miss interception** — the wrapper retains an exact route journal
   (the RIB to the structure's FIB); a miss for an address the journal
   can route is a corruption-induced false negative, detected
   immediately.
3. **Scrub** — :meth:`verify_integrity` re-reads every record of every
   memory site and compares protection words against the
   :meth:`checkpoint` baseline, the background scrubber every SRAM
   controller runs.

Degraded serving: whenever the inner structure cannot be trusted for an
address, the answer comes from a linear LPM over the journal (counted
in ``degraded_lookups`` and ``routing_degraded_lookups_total``) — the
slow-but-safe path. :meth:`rebuild` reconstructs a fresh inner
structure from the journal and re-arms the baseline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.obs import get_registry
from repro.routing.base import RoutingTable
from repro.routing.entry import RouteEntry
from repro.routing.memimage import pack_entry

PROTECTION_MODES: Tuple[str, ...] = ("none", "parity", "checksum")


@dataclass(frozen=True)
class CorruptionEvent:
    """One scrub finding: a record whose protection word went stale."""

    site: str
    index: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"site": self.site, "index": self.index,
                "detail": self.detail}


class ProtectedRoutingTable(RoutingTable):
    """Parity/checksum wrapper over any routing-table implementation.

    Shares the inner table's ``stats`` object (one accounting stream)
    and reports the inner table's ``kind`` so obs labels stay within the
    ``routing_table_kind`` enum. The memory-corruption seam delegates to
    the inner structure, so the fault injector strikes *through* the
    wrapper exactly as it would the bare table.
    """

    def __init__(self, inner: RoutingTable, protection: str = "checksum",
                 rebuild_factory: Optional[
                     Callable[[], RoutingTable]] = None):
        if protection not in PROTECTION_MODES:
            raise RoutingTableError(
                f"unknown protection mode {protection!r}; "
                f"choose from {list(PROTECTION_MODES)}")
        if isinstance(inner, ProtectedRoutingTable):
            raise RoutingTableError(
                "refusing to nest protection wrappers")
        super().__init__(inner.capacity)
        self.inner = inner
        self.protection = protection
        # shadow the class attributes with the wrapped table's identity
        self.kind = inner.kind
        self.hardware_search = inner.hardware_search
        self.stats = inner.stats  # one shared accounting stream
        self._rebuild_factory = rebuild_factory or (
            lambda: type(inner)(capacity=inner.capacity))
        #: exact route journal — the RIB behind the protected FIB
        self._journal: Dict[Ipv6Prefix, RouteEntry] = {
            entry.prefix: entry for entry in inner}
        self._route_words: Dict[Ipv6Prefix, int] = {}
        self._site_words: Dict[str, List[int]] = {}
        self._scrub_armed = False
        self.detected_corruptions = 0
        self.degraded_lookups = 0
        self.quarantined_routes = 0
        self.rebuilds = 0
        if protection != "none":
            for prefix, entry in self._journal.items():
                self._route_words[prefix] = self._word(pack_entry(entry))

    # -- protection words -------------------------------------------------------

    def _word(self, record: bytes) -> int:
        if self.protection == "checksum":
            return zlib.crc32(record) & 0xFFFFFFFF
        # parity: one even-parity bit over the whole record
        return int.from_bytes(record, "big").bit_count() & 1

    def _record_detection(self, events: int = 1) -> None:
        self.detected_corruptions += events
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_corruption_detected_total",
                "memory corruption events caught by integrity "
                "protection", ("kind", "protection")
            ).inc(events, kind=self.kind, protection=self.protection)

    # -- mandatory interface ----------------------------------------------------

    def _insert(self, entry: RouteEntry) -> int:
        steps = self.inner._insert(entry)
        self._journal[entry.prefix] = entry
        if self.protection != "none":
            self._route_words[entry.prefix] = self._word(pack_entry(entry))
        self._scrub_armed = False
        return steps

    def _remove(self, prefix: Ipv6Prefix) -> int:
        steps = self.inner._remove(prefix)
        self._journal.pop(prefix, None)
        self._route_words.pop(prefix, None)
        self._scrub_armed = False
        return steps

    def _lookup(self, address: Ipv6Address
                ) -> Tuple[Optional[RouteEntry], int]:
        if self.protection == "none":
            return self.inner._lookup(address)
        try:
            entry, steps = self.inner._lookup(address)
        except Exception:
            # fail-stop from a corrupted structure: detected, serve
            # from surviving state instead of propagating the crash
            self._record_detection()
            return self._degraded_lookup(address)
        if entry is None:
            # Trust-but-verify the miss: an address the journal can
            # route was silently dropped by the structure — the classic
            # Bloom false-negative / lost-subtree signature.
            journal_entry = self._journal_lookup(address)
            if journal_entry is not None:
                self._record_detection()
                return self._degraded_lookup(address)
            return None, steps
        if self._verify_hit(entry, address):
            return entry, steps
        self._record_detection()
        self._quarantine(entry.prefix)
        return self._degraded_lookup(address)

    def _verify_hit(self, entry: RouteEntry, address: Ipv6Address) -> bool:
        try:
            stored = self._route_words.get(entry.prefix)
            return (stored is not None
                    and self._word(pack_entry(entry)) == stored
                    and entry.prefix.contains(address))
        except Exception:
            # a corrupted prefix length can make contains()/hashing
            # blow up — that IS a detection, not a crash
            return False

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        return self.inner.get(prefix)

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self.inner)

    # -- bulk load (delegate to the inner fast path) ----------------------------

    def load(self, entries: "list[RouteEntry]") -> None:
        self.inner.load(entries)
        for entry in entries:
            self._journal[entry.prefix] = entry
        if self.protection != "none":
            for entry in entries:
                self._route_words[entry.prefix] = self._word(
                    pack_entry(entry))
        self._scrub_armed = False

    # -- degraded path ----------------------------------------------------------

    def _journal_lookup(self, address: Ipv6Address) -> Optional[RouteEntry]:
        best: Optional[RouteEntry] = None
        for prefix, entry in self._journal.items():
            if prefix.contains(address) and (
                    best is None or prefix.length > best.prefix.length):
                best = entry
        return best

    def _degraded_lookup(self, address: Ipv6Address
                         ) -> Tuple[Optional[RouteEntry], int]:
        """Serve from the journal: linear, safe, counted."""
        self.degraded_lookups += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_degraded_lookups_total",
                "lookups answered from the route journal after a "
                "corruption detection", ("kind", "protection")
            ).inc(kind=self.kind, protection=self.protection)
        return self._journal_lookup(address), max(1, len(self._journal))

    def _quarantine(self, prefix: Ipv6Prefix) -> None:
        """Best-effort removal of a damaged record from the structure.

        The corrupted record often no longer answers to any valid key
        (that is what corruption does), so failure to remove is
        expected and silent — the journal remains authoritative.
        """
        try:
            self.inner._remove(prefix)
            self.quarantined_routes += 1
        except Exception:
            pass

    # -- scrub / rebuild --------------------------------------------------------

    def checkpoint(self) -> None:
        """Arm the scrub baseline: per-record protection words for every
        memory site, plus refreshed per-route words."""
        if self.protection == "none":
            self._scrub_armed = True
            return
        self._route_words = {
            prefix: self._word(pack_entry(entry))
            for prefix, entry in self._journal.items()}
        self._site_words = {
            site: [self._word(record)
                   for record in self.inner.memory_records(site)]
            for site in self.inner.memory_sites()}
        self._scrub_armed = True

    def verify_integrity(self) -> List[CorruptionEvent]:
        """Scrub every memory site against the checkpoint baseline.

        Returns the corruption events found (empty for ``none``
        protection or before :meth:`checkpoint` arms a baseline); each
        event also counts as a detection.
        """
        if self.protection == "none" or not self._scrub_armed:
            return []
        events: List[CorruptionEvent] = []
        for site, baseline in self._site_words.items():
            try:
                current = self.inner.memory_records(site)
            except Exception as exc:
                events.append(CorruptionEvent(
                    site=site, index=-1,
                    detail=f"site unreadable: {type(exc).__name__}"))
                continue
            if len(current) != len(baseline):
                events.append(CorruptionEvent(
                    site=site, index=-1,
                    detail=f"record count {len(current)} != "
                           f"baseline {len(baseline)}"))
            for index, record in enumerate(current[:len(baseline)]):
                if self._word(record) != baseline[index]:
                    events.append(CorruptionEvent(
                        site=site, index=index,
                        detail="protection word mismatch"))
        if events:
            self._record_detection(len(events))
        return events

    def rebuild(self) -> None:
        """Reconstruct the inner structure from the route journal."""
        fresh = self._rebuild_factory()
        fresh.stats = self.stats  # keep the single accounting stream
        fresh.load(list(self._journal.values()))
        self.inner = fresh
        self.rebuilds += 1
        self.checkpoint()

    # -- memory seam (the injector strikes through the wrapper) ----------------

    def memory_sites(self) -> Tuple[str, ...]:
        return self.inner.memory_sites()

    def memory_record_count(self, site: str) -> int:
        return self.inner.memory_record_count(site)

    def memory_record(self, site: str, index: int) -> bytes:
        return self.inner.memory_record(site, index)

    def memory_records(self, site: str) -> List[bytes]:
        return self.inner.memory_records(site)

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        return self.inner.corrupt_memory(site, index, bit)

    # -- introspection ----------------------------------------------------------

    def table_memory_bytes(self) -> int:
        inner_bytes = getattr(self.inner, "table_memory_bytes", None)
        return inner_bytes() if inner_bytes else 0

    def protected_records(self) -> int:
        """Records carrying a protection word (overhead pricing input)."""
        return len(self._journal) + sum(
            self.inner.memory_record_count(site)
            for site in self.inner.memory_sites())

    def protection_stats(self) -> Dict[str, object]:
        return {
            "protection": self.protection,
            "journal_routes": len(self._journal),
            "detected_corruptions": self.detected_corruptions,
            "degraded_lookups": self.degraded_lookups,
            "quarantined_routes": self.quarantined_routes,
            "rebuilds": self.rebuilds,
        }

    def __repr__(self) -> str:
        return (f"<ProtectedRoutingTable {self.protection} over "
                f"{type(self.inner).__name__} "
                f"{len(self)}/{self.capacity} entries>")
