"""Content-addressable memory (CAM) routing table model.

The paper's third option: "a 136-bit wide content addressable memory (CAM)
and a commercially available SRAM chip. By combining these two circuits we
calculated that the routing table searching time would be 40 ns" (§4). The
CAM matches the 128-bit destination (plus tag bits) against every stored
(value, mask) pair in parallel; the SRAM holds the associated next-hop
records, indexed by the matching CAM line.

We model a ternary CAM: each line stores value+mask, the priority encoder
returns the matching line with the *longest* prefix (lines are kept sorted
by descending prefix length, the standard TCAM discipline). The model also
carries the datasheet-style physical figures the paper quotes for the
Micron Harmony 1 Mb CAM (1.5–2 W average at 133 MHz) so the estimation
layer can include them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.obs import get_registry
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable
from repro.routing.entry import RouteEntry
from repro.routing.memimage import corrupt_entry, pack_entry

CAM_WIDTH_BITS = 136
"""128 address bits + 8 tag bits, as in the paper."""

CAM_SEARCH_TIME_NS = 40.0
"""Combined CAM match + SRAM read latency the paper calculates."""


@dataclass(frozen=True)
class CamPhysicalModel:
    """Datasheet-style physical figures for the external CAM+SRAM pair.

    Defaults follow the paper's example part (Micron Harmony 1 Mb CAM,
    1.5–2 W average at 133 MHz). The CAM is an external chip: its power
    adds to the router's budget but its area is off-die ("the power and
    area required by the CAM chip are not included" in the paper's TACO
    estimates — reports keep the contributions separable for that reason).
    """

    search_time_ns: float = CAM_SEARCH_TIME_NS
    average_power_w: float = 1.75
    reference_clock_mhz: float = 133.0
    width_bits: int = CAM_WIDTH_BITS

    def power_at(self, clock_mhz: float) -> float:
        """Average power scaled linearly with search rate (CV²f model)."""
        if clock_mhz <= 0:
            raise RoutingTableError(f"clock must be positive: {clock_mhz}")
        scale = min(clock_mhz / self.reference_clock_mhz, 1.0)
        return self.average_power_w * scale

    def search_cycles(self, clock_hz: float) -> int:
        """Search latency in (whole) processor cycles at a given clock.

        This is why raising the TACO clock stops helping in the CAM rows
        of Table 1: the 40 ns search is a wall-clock constant.
        """
        if clock_hz <= 0:
            raise RoutingTableError(f"clock must be positive: {clock_hz}")
        cycles = self.search_time_ns * 1e-9 * clock_hz
        return max(1, int(-(-cycles // 1)))


@dataclass
class _CamLine:
    value: int
    mask: int
    entry: RouteEntry


class CamRoutingTable(RoutingTable):
    """TCAM-style table: single-step parallel match, priority by length."""

    kind = "cam"
    hardware_search = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 physical: Optional[CamPhysicalModel] = None):
        super().__init__(capacity)
        self.physical = physical or CamPhysicalModel()
        self._lines: List[_CamLine] = []
        # CAM occupancy per search at the part's reference clock, cached
        # so the lookup path publishes busy cycles without recomputing
        self._search_busy_cycles = self.physical.search_cycles(
            self.physical.reference_clock_mhz * 1e6)

    def _insert(self, entry: RouteEntry) -> int:
        prefix = entry.prefix
        for line in self._lines:
            if line.entry.prefix == prefix:
                line.entry = entry
                return 2  # one parallel match + one line write
        new_line = _CamLine(value=prefix.network.value, mask=prefix.mask(),
                            entry=entry)
        position = len(self._lines)
        for i, line in enumerate(self._lines):
            if line.entry.prefix.length < prefix.length:
                position = i
                break
        self._lines.insert(position, new_line)
        # A real TCAM must shuffle lines to keep priority order; count the
        # displaced lines as the update cost.
        return 1 + (len(self._lines) - position - 1)

    def _remove(self, prefix: Ipv6Prefix) -> int:
        for i, line in enumerate(self._lines):
            if line.entry.prefix == prefix:
                del self._lines[i]
                return 1 + (len(self._lines) - i)
        raise RoutingTableError(f"no such route: {prefix}")

    def _lookup(self, address: Ipv6Address) -> Tuple[Optional[RouteEntry], int]:
        # Hardware matches all lines in parallel; the model's "steps" is 1
        # regardless of occupancy — the defining property of the CAM row.
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_cam_busy_cycles_total",
                "CAM cycles occupied by searches (40 ns per search at "
                "the part's reference clock)"
            ).inc(self._search_busy_cycles)
        value = address.value
        for line in self._lines:
            if (value & line.mask) == line.value:
                return line.entry, 1
        return None, 1

    def _lookup_batch(
            self, addresses: Sequence[Ipv6Address]
    ) -> List[Tuple[Optional[RouteEntry], int]]:
        """Batch search via per-length maps; every search still costs one
        step and occupies the CAM for one 40 ns slot."""
        registry = get_registry()
        if registry.enabled and addresses:
            registry.counter(
                "routing_cam_busy_cycles_total",
                "CAM cycles occupied by searches (40 ns per search at "
                "the part's reference clock)"
            ).inc(self._search_busy_cycles * len(addresses))
        by_length: "List[Tuple[int, Dict[int, RouteEntry]]]" = []
        seen: Dict[int, Dict[int, RouteEntry]] = {}
        for line in self._lines:
            length = line.entry.prefix.length
            table = seen.get(length)
            if table is None:
                table = seen[length] = {}
                by_length.append((line.mask, table))
            table[line.value] = line.entry
        out: List[Tuple[Optional[RouteEntry], int]] = []
        for address in addresses:
            value = address.value
            found: Optional[RouteEntry] = None
            for mask, table in by_length:
                found = table.get(value & mask)
                if found is not None:
                    break
            out.append((found, 1))
        return out

    def load(self, entries: "list[RouteEntry]") -> None:
        """Single-sort bulk line build from an empty CAM (one write per
        line); falls back to the per-insert path otherwise."""
        if self._lines:
            super().load(entries)
            return
        self._check_bulk_capacity(entries)
        merged: "Dict[Ipv6Prefix, RouteEntry]" = {}
        for entry in entries:
            merged[entry.prefix] = entry
        ordered = sorted(
            merged.values(), key=lambda entry: -entry.prefix.length)
        self._lines = [
            _CamLine(value=entry.prefix.network.value,
                     mask=entry.prefix.mask(), entry=entry)
            for entry in ordered]
        self._account_bulk_load(len(entries), len(merged))

    def search_latency_cycles(self) -> int:
        """Search latency in cycles at the part's reference clock (the
        evaluator's fixed point rederives it at the candidate clock)."""
        return self._search_busy_cycles

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        for line in self._lines:
            if line.entry.prefix == prefix:
                return line.entry
        return None

    def __len__(self) -> int:
        return len(self._lines)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter([line.entry for line in self._lines])

    # -- memory-state corruption seam ------------------------------------------
    #
    # One record per CAM line, priority order. The 70-byte image is the
    # ternary match pair (value 16 + mask 16) followed by the 38-byte
    # SRAM entry record. Flipping a match bit silently re-steers the
    # priority encoder (classic TCAM upset); flipping an SRAM bit
    # corrupts the associated next-hop record.

    def memory_sites(self) -> Tuple[str, ...]:
        return ("cam-row",)

    def memory_record_count(self, site: str) -> int:
        if site != "cam-row":
            return super().memory_record_count(site)
        return len(self._lines)

    def memory_record(self, site: str, index: int) -> bytes:
        if site != "cam-row":
            return super().memory_record(site, index)
        self._check_memory_index(site, index, len(self._lines))
        line = self._lines[index]
        return (line.value.to_bytes(16, "big")
                + line.mask.to_bytes(16, "big")
                + pack_entry(line.entry))

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        if site != "cam-row":
            return super().corrupt_memory(site, index, bit)
        self._check_memory_index(site, index, len(self._lines))
        line = self._lines[index]
        prefix = line.entry.prefix
        if bit < 128:
            line.value ^= 1 << (127 - bit)
            return f"cam-row[{index}] value bit {bit} ({prefix})"
        if bit < 256:
            line.mask ^= 1 << (255 - bit)
            return f"cam-row[{index}] mask bit {bit - 128} ({prefix})"
        line.entry = corrupt_entry(line.entry, bit - 256)
        return f"cam-row[{index}] sram bit {bit - 256} ({prefix})"

    def priority_order(self) -> List[Ipv6Prefix]:
        """Line order, for tests asserting the TCAM priority discipline."""
        return [line.entry.prefix for line in self._lines]

    def table_memory_bytes(self) -> int:
        """On-chip footprint is zero: the CAM+SRAM pair is an external
        chip (its power is accounted separately, its area excluded)."""
        return 0
