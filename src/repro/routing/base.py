"""Abstract routing-table interface and shared bookkeeping.

All three implementations (sequential cache memory, balanced tree, CAM)
expose identical longest-prefix-match semantics; they differ only in how
many elements a lookup examines and in their physical cost models. The
identical-semantics claim is enforced by property-based tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.obs import get_registry
from repro.routing.entry import LookupResult, RouteEntry

DEFAULT_CAPACITY = 100
"""The paper's design constraint: "a maximum size of 100 entries"."""


@dataclass
class TableStatistics:
    """Cumulative access statistics, the raw input to the cycle models."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    total_lookup_steps: int = 0
    inserts: int = 0
    removals: int = 0
    total_update_steps: int = 0

    def record_lookup(self, steps: int, hit: bool) -> None:
        self.lookups += 1
        self.total_lookup_steps += steps
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def record_update(self, steps: int, insert: bool) -> None:
        self.total_update_steps += steps
        if insert:
            self.inserts += 1
        else:
            self.removals += 1

    @property
    def mean_lookup_steps(self) -> float:
        return self.total_lookup_steps / self.lookups if self.lookups else 0.0


class RoutingTable(ABC):
    """Longest-prefix-match routing table with bounded capacity."""

    #: short identifier used in reports and Table 1 rows
    kind: str = "abstract"

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise RoutingTableError(f"capacity must be positive: {capacity}")
        self._capacity = capacity
        self.stats = TableStatistics()

    # -- mandatory interface -------------------------------------------------

    @abstractmethod
    def _insert(self, entry: RouteEntry) -> int:
        """Insert or replace; returns elements touched (update cost)."""

    @abstractmethod
    def _remove(self, prefix: Ipv6Prefix) -> int:
        """Remove; returns elements touched. Raises if absent."""

    @abstractmethod
    def _lookup(self, address: Ipv6Address) -> "tuple[Optional[RouteEntry], int]":
        """Find the longest matching prefix; returns (entry|None, steps)."""

    @abstractmethod
    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        """Exact-prefix fetch (used by the RIPng engine), no LPM."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[RouteEntry]: ...

    # -- shared behaviour ------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def insert(self, entry: RouteEntry) -> None:
        """Insert a route, replacing any entry with the same prefix."""
        if self.get(entry.prefix) is None and len(self) >= self._capacity:
            raise RoutingTableError(
                f"routing table full ({self._capacity} entries)")
        steps = self._insert(entry)
        self.stats.record_update(steps, insert=True)
        self._publish_update(steps, op="insert")

    def remove(self, prefix: Ipv6Prefix) -> None:
        steps = self._remove(prefix)
        self.stats.record_update(steps, insert=False)
        self._publish_update(steps, op="remove")

    def lookup(self, address: Ipv6Address) -> Optional[LookupResult]:
        """Longest-prefix match for *address*; None when no route exists."""
        entry, steps = self._lookup(address)
        self.stats.record_lookup(steps, hit=entry is not None)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_lookups_total",
                "longest-prefix-match lookups", ("kind", "outcome")
            ).inc(kind=self.kind,
                  outcome="hit" if entry is not None else "miss")
            registry.counter(
                "routing_lookup_steps_total",
                "elements examined across lookups "
                "(steps/lookups = comparisons per lookup)", ("kind",)
            ).inc(steps, kind=self.kind)
        if entry is None:
            return None
        return LookupResult(entry=entry, steps=steps)

    def _publish_update(self, steps: int, op: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_updates_total",
                "route insertions and removals", ("kind", "op")
            ).inc(kind=self.kind, op=op)
            registry.counter(
                "routing_update_steps_total",
                "elements touched by table updates", ("kind",)
            ).inc(steps, kind=self.kind)

    def entries(self) -> List[RouteEntry]:
        return list(self)

    def clear(self) -> None:
        for entry in self.entries():
            self._remove(entry.prefix)

    def load(self, entries: "list[RouteEntry]") -> None:
        """Bulk-insert (used by workload generators and benchmarks)."""
        for entry in entries:
            self.insert(entry)

    def __contains__(self, prefix: Ipv6Prefix) -> bool:
        return self.get(prefix) is not None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {len(self)}/{self._capacity} entries>"
