"""Abstract routing-table interface and shared bookkeeping.

All implementations (sequential cache memory, balanced tree, CAM,
multibit trie, Bloom-assisted hash tables) expose identical
longest-prefix-match semantics; they differ only in how many elements a
lookup examines and in their physical cost models. The
identical-semantics claim is enforced by property-based tests.

Replace-cost convention: when ``insert`` replaces an existing prefix,
every implementation reports ``steps`` as the elements examined to
locate the slot plus one write. Fresh inserts additionally count the
writes needed to keep the structure's physical discipline (tail shifts
for the sequential array, adoption links for the tree, displaced lines
for the TCAM).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.obs import get_registry
from repro.routing.entry import LookupResult, RouteEntry

DEFAULT_CAPACITY = 100
"""The paper's design constraint: "a maximum size of 100 entries"."""


@dataclass
class TableStatistics:
    """Cumulative access statistics, the raw input to the cycle models."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    total_lookup_steps: int = 0
    inserts: int = 0
    removals: int = 0
    total_update_steps: int = 0

    def record_lookup(self, steps: int, hit: bool) -> None:
        self.lookups += 1
        self.total_lookup_steps += steps
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def record_update(self, steps: int, insert: bool) -> None:
        self.total_update_steps += steps
        if insert:
            self.inserts += 1
        else:
            self.removals += 1

    @property
    def mean_lookup_steps(self) -> float:
        return self.total_lookup_steps / self.lookups if self.lookups else 0.0


class RoutingTable(ABC):
    """Longest-prefix-match routing table with bounded capacity."""

    #: short identifier used in reports and Table 1 rows
    kind: str = "abstract"

    #: True when the structure is modelled as a hardware search engine
    #: (CAM, multibit trie, Bloom filter bank): the TTA datapath triggers
    #: one search operation instead of walking a memory image.
    hardware_search: bool = False

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise RoutingTableError(f"capacity must be positive: {capacity}")
        self._capacity = capacity
        self.stats = TableStatistics()

    # -- mandatory interface -------------------------------------------------

    @abstractmethod
    def _insert(self, entry: RouteEntry) -> int:
        """Insert or replace; returns elements touched (update cost)."""

    @abstractmethod
    def _remove(self, prefix: Ipv6Prefix) -> int:
        """Remove; returns elements touched. Raises if absent."""

    @abstractmethod
    def _lookup(self, address: Ipv6Address) -> "tuple[Optional[RouteEntry], int]":
        """Find the longest matching prefix; returns (entry|None, steps)."""

    @abstractmethod
    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        """Exact-prefix fetch (used by the RIPng engine), no LPM."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[RouteEntry]: ...

    # -- shared behaviour ------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def insert(self, entry: RouteEntry) -> None:
        """Insert a route, replacing any entry with the same prefix."""
        if self.get(entry.prefix) is None and len(self) >= self._capacity:
            raise RoutingTableError(
                f"routing table full ({self._capacity} entries)")
        steps = self._insert(entry)
        self.stats.record_update(steps, insert=True)
        self._publish_update(steps, op="insert")

    def remove(self, prefix: Ipv6Prefix) -> None:
        steps = self._remove(prefix)
        self.stats.record_update(steps, insert=False)
        self._publish_update(steps, op="remove")

    def lookup(self, address: Ipv6Address) -> Optional[LookupResult]:
        """Longest-prefix match for *address*; None when no route exists.

        Fail-stop contract: a lookup either answers or raises
        :class:`~repro.errors.RoutingTableError` — never ``KeyError``,
        ``IndexError``, or any other structural exception. A corrupted
        structure (see :mod:`repro.faults.memory`) must surface as a
        *detectable* routing failure, not an arbitrary crash.
        """
        try:
            entry, steps = self._lookup(address)
        except RoutingTableError:
            raise
        except Exception as exc:
            raise RoutingTableError(
                f"corrupt {self.kind} state during lookup: "
                f"{type(exc).__name__}: {exc}") from exc
        return self._account_lookup(entry, steps)

    def lookup_batch(
            self, addresses: Sequence[Ipv6Address]
    ) -> List[Optional[LookupResult]]:
        """Longest-prefix match for every address in *addresses*.

        Semantically identical to ``[self.lookup(a) for a in addresses]``
        — same results, same ``stats`` updates, same obs counters — but
        implementations may override :meth:`_lookup_batch` to amortize
        per-lookup overhead (the sequential table answers a batch from
        per-length hash maps instead of rescanning the array per address).
        Shares the fail-stop contract of :meth:`lookup`: structural
        exceptions become :class:`~repro.errors.RoutingTableError` and no
        partial results are accounted.
        """
        try:
            pairs = list(self._lookup_batch(addresses))
        except RoutingTableError:
            raise
        except Exception as exc:
            raise RoutingTableError(
                f"corrupt {self.kind} state during batch lookup: "
                f"{type(exc).__name__}: {exc}") from exc
        return [self._account_lookup(entry, steps)
                for entry, steps in pairs]

    def _lookup_batch(
            self, addresses: Sequence[Ipv6Address]
    ) -> "Iterable[Tuple[Optional[RouteEntry], int]]":
        """Raw batch lookup; overrides MUST report the exact (entry,
        steps) pairs the per-address :meth:`_lookup` would have."""
        return [self._lookup(address) for address in addresses]

    def _account_lookup(self, entry: Optional[RouteEntry],
                        steps: int) -> Optional[LookupResult]:
        self.stats.record_lookup(steps, hit=entry is not None)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_lookups_total",
                "longest-prefix-match lookups", ("kind", "outcome")
            ).inc(kind=self.kind,
                  outcome="hit" if entry is not None else "miss")
            registry.counter(
                "routing_lookup_steps_total",
                "elements examined across lookups "
                "(steps/lookups = comparisons per lookup)", ("kind",)
            ).inc(steps, kind=self.kind)
        if entry is None:
            return None
        return LookupResult(entry=entry, steps=steps)

    def _publish_update(self, steps: int, op: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_updates_total",
                "route insertions and removals", ("kind", "op")
            ).inc(kind=self.kind, op=op)
            registry.counter(
                "routing_update_steps_total",
                "elements touched by table updates", ("kind",)
            ).inc(steps, kind=self.kind)

    def entries(self) -> List[RouteEntry]:
        return list(self)

    def clear(self) -> None:
        """Remove every route through the accounted removal path.

        Goes through :meth:`remove` so ``stats.removals`` and the
        ``routing_updates_total{op=remove}`` counter see every entry a
        clear drops (RIPng flushes and fixture resets previously
        bypassed both by calling ``_remove`` directly).
        """
        for entry in self.entries():
            self.remove(entry.prefix)

    def load(self, entries: "list[RouteEntry]") -> None:
        """Bulk-insert (used by workload generators and benchmarks).

        Performs ONE up-front capacity check for the whole batch instead
        of a per-entry ``get`` probe, then feeds entries through
        ``_insert`` with the usual accounting. Implementations override
        this with true bulk builds (single sort for the sequential
        array, single-pass enclosing-chain construction for the tree);
        overrides must keep the hit/miss/insert/removal *counts* in
        ``stats`` identical to this path, while ``total_update_steps``
        reflects the (cheaper) bulk build cost.
        """
        self._check_bulk_capacity(entries)
        for entry in entries:
            steps = self._insert(entry)
            self.stats.record_update(steps, insert=True)
            self._publish_update(steps, op="insert")

    def _check_bulk_capacity(self, entries: "list[RouteEntry]") -> None:
        """Raise if loading *entries* would overflow; no partial load."""
        new_prefixes = {entry.prefix for entry in entries}
        if len(self):
            already = sum(1 for prefix in new_prefixes
                          if self.get(prefix) is not None)
        else:
            already = 0
        if len(self) + len(new_prefixes) - already > self._capacity:
            raise RoutingTableError(
                f"routing table full ({self._capacity} entries)")

    def _account_bulk_load(self, inserts: int, steps: int) -> None:
        """Accounting for a bulk build: *inserts* entries written with
        *steps* total elements touched (published as one aggregate)."""
        self.stats.inserts += inserts
        self.stats.total_update_steps += steps
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "routing_updates_total",
                "route insertions and removals", ("kind", "op")
            ).inc(inserts, kind=self.kind, op="insert")
            registry.counter(
                "routing_update_steps_total",
                "elements touched by table updates", ("kind",)
            ).inc(steps, kind=self.kind)

    # -- memory-state introspection/corruption seam ---------------------------
    #
    # The table-state fault injector (repro.faults.memory) and the
    # integrity wrapper (repro.routing.protected) see every structure
    # through these four methods. A site is one physical memory bank
    # (entry array, node pool, match lines, counter vector); its records
    # enumerate deterministically so that seeded strikes and scrub
    # baselines agree across processes.

    def memory_sites(self) -> Tuple[str, ...]:
        """Physical state banks this structure exposes for injection."""
        return ()

    def memory_record_count(self, site: str) -> int:
        """Number of addressable records at *site*."""
        raise RoutingTableError(
            f"{self.kind} table has no memory site {site!r}")

    def memory_record(self, site: str, index: int) -> bytes:
        """The raw memory image of record *index* at *site*."""
        raise RoutingTableError(
            f"{self.kind} table has no memory site {site!r}")

    def memory_records(self, site: str) -> List[bytes]:
        """All records at *site*, in enumeration order.

        Semantically ``[self.memory_record(site, i) for i in range(
        self.memory_record_count(site))]``; implementations whose
        per-record access re-walks the structure override this with a
        single traversal (the integrity scrub reads every record).
        """
        return [self.memory_record(site, index)
                for index in range(self.memory_record_count(site))]

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        """Flip *bit* of record *index* at *site* in the live structure.

        Returns a short human-readable description of what was damaged
        (kept in the fault record for post-mortem). Must bypass all
        software validation — this models an SEU, not an API call.
        """
        raise RoutingTableError(
            f"{self.kind} table has no memory site {site!r}")

    def _check_memory_index(self, site: str, index: int, count: int) -> None:
        if not 0 <= index < count:
            raise RoutingTableError(
                f"{self.kind} {site} index {index} out of range "
                f"[0, {count})")

    def __contains__(self, prefix: Ipv6Prefix) -> bool:
        return self.get(prefix) is not None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {len(self)}/{self._capacity} entries>"
