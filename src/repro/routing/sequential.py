"""Sequential routing table: entries laid out linearly in cache memory.

This is the paper's first implementation option ("a cache memory in which
the entries are organized sequentially", §4). A lookup scans every entry
because a *longest* match requires seeing all candidates unless the scan
order guarantees specificity; we keep entries sorted by descending prefix
length, so the first hit is the longest match and the scan can stop there —
still linear in the worst case (a miss examines all entries), exactly the
behaviour that drives the 6 GHz requirement in Table 1.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix, prefix_mask
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable
from repro.routing.entry import RouteEntry
from repro.routing.memimage import corrupt_entry, pack_entry


class SequentialRoutingTable(RoutingTable):
    """Linear-scan table over a specificity-ordered entry list."""

    kind = "sequential"

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        super().__init__(capacity)
        self._entries: List[RouteEntry] = []

    # -- core operations -----------------------------------------------------

    def _insert(self, entry: RouteEntry) -> int:
        steps = 0
        for i, existing in enumerate(self._entries):
            steps += 1
            if existing.prefix == entry.prefix:
                self._entries[i] = entry
                return steps + 1
        # Insert keeping descending prefix-length order (stable within a
        # length class): find the first slot with a shorter prefix.
        position = len(self._entries)
        for i, existing in enumerate(self._entries):
            if existing.prefix.length < entry.prefix.length:
                position = i
                break
        self._entries.insert(position, entry)
        # Shifting the tail models the memory writes a real cache-memory
        # table performs to keep the array contiguous.
        return steps + (len(self._entries) - position)

    def _remove(self, prefix: Ipv6Prefix) -> int:
        for i, existing in enumerate(self._entries):
            if existing.prefix == prefix:
                del self._entries[i]
                return i + 1 + (len(self._entries) - i)
        raise RoutingTableError(f"no such route: {prefix}")

    def _lookup(self, address: Ipv6Address) -> Tuple[Optional[RouteEntry], int]:
        steps = 0
        for entry in self._entries:
            steps += 1
            if entry.matches(address):
                return entry, steps
        return None, steps

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        for entry in self._entries:
            if entry.prefix == prefix:
                return entry
        return None

    # -- bulk fast paths ------------------------------------------------------

    def load(self, entries: "list[RouteEntry]") -> None:
        """Single-sort bulk build (the per-insert path is O(n²)).

        Only valid from an empty table; otherwise falls back to the
        accounted per-insert path. Placement is identical to repeated
        ``insert``: descending prefix length, stable by first arrival
        within a length class, later duplicates replacing earlier ones
        in place. The bulk cost is one write per stored entry.
        """
        if self._entries:
            super().load(entries)
            return
        self._check_bulk_capacity(entries)
        merged: Dict[Ipv6Prefix, RouteEntry] = {}
        for entry in entries:
            merged[entry.prefix] = entry
        self._entries = sorted(
            merged.values(), key=lambda entry: -entry.prefix.length)
        self._account_bulk_load(len(entries), len(merged))

    def _lookup_batch(
            self, addresses: Sequence[Ipv6Address]
    ) -> List[Tuple[Optional[RouteEntry], int]]:
        """Answer a batch from per-length hash maps.

        Builds, once per batch, a map ``length -> {masked network:
        (entry, scan position)}``; each address then probes the distinct
        lengths in scan order. Results — including the per-address
        ``steps`` the cycle models consume — are exactly what the linear
        scan would report: a hit at scan index *i* costs ``i + 1``
        steps, a miss costs ``len(self)``.
        """
        by_length: "List[Tuple[int, Dict[int, Tuple[RouteEntry, int]]]]" = []
        seen: Dict[int, Dict[int, Tuple[RouteEntry, int]]] = {}
        for position, entry in enumerate(self._entries):
            length = entry.prefix.length
            table = seen.get(length)
            if table is None:
                table = seen[length] = {}
                by_length.append((prefix_mask(length), table))
            table[entry.prefix.network.value] = (entry, position)
        miss_steps = len(self._entries)
        out: List[Tuple[Optional[RouteEntry], int]] = []
        for address in addresses:
            value = address.value
            found: Optional[Tuple[RouteEntry, int]] = None
            for mask, table in by_length:
                found = table.get(value & mask)
                if found is not None:
                    break
            if found is None:
                out.append((None, miss_steps))
            else:
                out.append((found[0], found[1] + 1))
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(list(self._entries))

    # -- memory-state corruption seam ------------------------------------------

    def memory_sites(self) -> Tuple[str, ...]:
        return ("entry",)

    def memory_record_count(self, site: str) -> int:
        if site != "entry":
            return super().memory_record_count(site)
        return len(self._entries)

    def memory_record(self, site: str, index: int) -> bytes:
        if site != "entry":
            return super().memory_record(site, index)
        self._check_memory_index(site, index, len(self._entries))
        return pack_entry(self._entries[index])

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        if site != "entry":
            return super().corrupt_memory(site, index, bit)
        self._check_memory_index(site, index, len(self._entries))
        before = self._entries[index]
        self._entries[index] = corrupt_entry(before, bit)
        return f"entry[{index}] bit {bit} ({before.prefix})"

    # -- memory image (for the TACO data memory) ------------------------------

    def memory_layout(self) -> List[RouteEntry]:
        """The scan order, used to serialise the table into data memory."""
        return list(self._entries)

    def table_memory_bytes(self) -> int:
        """On-chip cache footprint: the 16-word RTU stride per entry."""
        return len(self._entries) * 64
