"""Sequential routing table: entries laid out linearly in cache memory.

This is the paper's first implementation option ("a cache memory in which
the entries are organized sequentially", §4). A lookup scans every entry
because a *longest* match requires seeing all candidates unless the scan
order guarantees specificity; we keep entries sorted by descending prefix
length, so the first hit is the longest match and the scan can stop there —
still linear in the worst case (a miss examines all entries), exactly the
behaviour that drives the 6 GHz requirement in Table 1.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable
from repro.routing.entry import RouteEntry


class SequentialRoutingTable(RoutingTable):
    """Linear-scan table over a specificity-ordered entry list."""

    kind = "sequential"

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        super().__init__(capacity)
        self._entries: List[RouteEntry] = []

    # -- core operations -----------------------------------------------------

    def _insert(self, entry: RouteEntry) -> int:
        steps = 0
        for i, existing in enumerate(self._entries):
            steps += 1
            if existing.prefix == entry.prefix:
                self._entries[i] = entry
                return steps
        # Insert keeping descending prefix-length order (stable within a
        # length class): find the first slot with a shorter prefix.
        position = len(self._entries)
        for i, existing in enumerate(self._entries):
            if existing.prefix.length < entry.prefix.length:
                position = i
                break
        self._entries.insert(position, entry)
        # Shifting the tail models the memory writes a real cache-memory
        # table performs to keep the array contiguous.
        return steps + (len(self._entries) - position)

    def _remove(self, prefix: Ipv6Prefix) -> int:
        for i, existing in enumerate(self._entries):
            if existing.prefix == prefix:
                del self._entries[i]
                return i + 1 + (len(self._entries) - i)
        raise RoutingTableError(f"no such route: {prefix}")

    def _lookup(self, address: Ipv6Address) -> Tuple[Optional[RouteEntry], int]:
        steps = 0
        for entry in self._entries:
            steps += 1
            if entry.matches(address):
                return entry, steps
        return None, steps

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        for entry in self._entries:
            if entry.prefix == prefix:
                return entry
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(list(self._entries))

    # -- memory image (for the TACO data memory) ------------------------------

    def memory_layout(self) -> List[RouteEntry]:
        """The scan order, used to serialise the table into data memory."""
        return list(self._entries)
