"""Bloom-assisted hash-per-prefix-length routing table.

The Dharmapurikar-style longest-prefix-match scheme: one exact-match
hash table per distinct prefix length, fronted by a bank of on-chip
Bloom filters (one per length). A lookup probes every filter in
parallel — a single pipeline step in hardware — then queries the
off-filter hash tables only for the lengths whose filter answered
"maybe", longest first, stopping at the first real hit. With correctly
sized filters the expected number of hash-table accesses per lookup is
barely above one, independent of table size — which is what lets this
structure hold a million prefixes without the linear or logarithmic
step growth of the scan/tree tables.

Modelling choices
-----------------
* ``steps`` = 1 (the parallel filter-bank probe) + one step per hash
  table actually queried. False positives therefore show up honestly
  as extra steps.
* Filters are *counting* Bloom filters (bytearray counters) so removals
  decrement cleanly; a counter that saturates at 255 becomes sticky,
  which can only cause false positives, never false negatives.
* Hash functions are double-hashed from a keyed blake2b digest —
  deterministic across processes so campaign runs stay byte-identical.
* Each length's filter is sized from that length's entry count
  (``slots_per_entry`` counters each) and rebuilt on power-of-two
  growth, keeping the false-positive rate roughly constant as the
  table grows.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix, prefix_mask
from repro.routing.base import DEFAULT_CAPACITY, RoutingTable
from repro.routing.entry import RouteEntry
from repro.routing.memimage import corrupt_entry, pack_entry

DEFAULT_SLOTS_PER_ENTRY = 16
"""Counting-filter slots per stored prefix (~1e-4 false-positive rate
at 6 hash functions)."""

DEFAULT_HASH_COUNT = 6

_MIN_FILTER_SLOTS = 64

BLOOM_SEARCH_LATENCY_CYCLES = 4
"""Static hardware pipeline: hash generation, parallel filter-bank
probe, and two provisioned hash-table memory reads."""


def _hash_pair(length: int, value: int) -> Tuple[int, int]:
    digest = hashlib.blake2b(
        length.to_bytes(2, "big") + value.to_bytes(16, "big"),
        digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full period
    return h1, h2


class _LengthClass:
    """All state for one prefix length: exact table + counting filter."""

    __slots__ = ("length", "mask", "entries", "counters", "slots")

    def __init__(self, length: int, slots: int):
        self.length = length
        self.mask = prefix_mask(length)
        #: masked network value -> entry (insertion-ordered)
        self.entries: Dict[int, RouteEntry] = {}
        self.slots = slots
        self.counters = bytearray(slots)

    def filter_positive(self, value: int, hash_count: int) -> bool:
        h1, h2 = _hash_pair(self.length, value)
        counters, slots = self.counters, self.slots
        for i in range(hash_count):
            if not counters[(h1 + i * h2) % slots]:
                return False
        return True

    def filter_add(self, value: int, hash_count: int) -> None:
        h1, h2 = _hash_pair(self.length, value)
        counters, slots = self.counters, self.slots
        for i in range(hash_count):
            index = (h1 + i * h2) % slots
            if counters[index] < 255:
                counters[index] += 1

    def filter_discard(self, value: int, hash_count: int) -> None:
        h1, h2 = _hash_pair(self.length, value)
        counters, slots = self.counters, self.slots
        for i in range(hash_count):
            index = (h1 + i * h2) % slots
            if 0 < counters[index] < 255:  # 255 is sticky (saturated)
                counters[index] -= 1


def _sized_slots(count: int, slots_per_entry: int) -> int:
    slots = _MIN_FILTER_SLOTS
    while slots < count * slots_per_entry:
        slots <<= 1
    return slots


class BloomRoutingTable(RoutingTable):
    """Per-length hash tables behind a parallel Bloom-filter bank."""

    kind = "bloom"
    hardware_search = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 slots_per_entry: int = DEFAULT_SLOTS_PER_ENTRY,
                 hash_count: int = DEFAULT_HASH_COUNT):
        super().__init__(capacity)
        if slots_per_entry < 2:
            raise RoutingTableError(
                f"slots_per_entry too small: {slots_per_entry}")
        if hash_count < 1:
            raise RoutingTableError(f"hash_count must be positive: {hash_count}")
        self.slots_per_entry = slots_per_entry
        self.hash_count = hash_count
        #: length -> class, kept keyed; probe order derived on demand
        self._classes: Dict[int, _LengthClass] = {}
        #: distinct lengths, descending (the probe order)
        self._lengths_desc: List[int] = []
        self._count = 0

    # -- length-class maintenance ---------------------------------------------

    def _class_for(self, length: int) -> _LengthClass:
        cls = self._classes.get(length)
        if cls is None:
            cls = _LengthClass(length, _sized_slots(1, self.slots_per_entry))
            self._classes[length] = cls
            self._lengths_desc.append(length)
            self._lengths_desc.sort(reverse=True)
        return cls

    def _drop_if_empty(self, cls: _LengthClass) -> None:
        if not cls.entries:
            del self._classes[cls.length]
            self._lengths_desc.remove(cls.length)

    def _maybe_grow(self, cls: _LengthClass) -> None:
        if len(cls.entries) * self.slots_per_entry <= cls.slots:
            return
        cls.slots = _sized_slots(len(cls.entries), self.slots_per_entry)
        cls.counters = bytearray(cls.slots)
        for value in cls.entries:
            cls.filter_add(value, self.hash_count)

    # -- core operations -------------------------------------------------------

    def _insert(self, entry: RouteEntry) -> int:
        prefix = entry.prefix
        cls = self._class_for(prefix.length)
        value = prefix.network.value
        if value in cls.entries:
            cls.entries[value] = entry
            return 2  # one table probe + one bucket write
        cls.entries[value] = entry
        cls.filter_add(value, self.hash_count)
        self._maybe_grow(cls)
        self._count += 1
        # one probe + one bucket write + the filter-counter updates
        return 2 + self.hash_count

    def _remove(self, prefix: Ipv6Prefix) -> int:
        cls = self._classes.get(prefix.length)
        value = prefix.network.value
        if cls is None or value not in cls.entries:
            raise RoutingTableError(f"no such route: {prefix}")
        del cls.entries[value]
        cls.filter_discard(value, self.hash_count)
        self._count -= 1
        self._drop_if_empty(cls)
        return 2 + self.hash_count

    def _lookup(self, address: Ipv6Address) -> Tuple[Optional[RouteEntry], int]:
        value = address.value
        steps = 1  # the parallel Bloom-bank probe counts once
        for length in self._lengths_desc:
            # .get, not []: a corrupted probe-order list must degrade to
            # skipping the phantom length, not crash with a KeyError
            cls = self._classes.get(length)
            if cls is None:
                continue
            masked = value & cls.mask
            if not cls.filter_positive(masked, self.hash_count):
                continue
            steps += 1  # off-filter hash-table access
            entry = cls.entries.get(masked)
            if entry is not None:
                return entry, steps
        return None, steps

    def get(self, prefix: Ipv6Prefix) -> Optional[RouteEntry]:
        cls = self._classes.get(prefix.length)
        if cls is None:
            return None
        return cls.entries.get(prefix.network.value)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[RouteEntry]:
        out: List[RouteEntry] = []
        for length in self._lengths_desc:
            out.extend(self._classes[length].entries.values())
        return iter(out)

    # -- bulk load -------------------------------------------------------------

    def load(self, entries: "list[RouteEntry]") -> None:
        """Bulk build from empty: fill the per-length tables first, then
        size each filter once from the final counts (the per-insert path
        pays power-of-two rebuild cascades)."""
        if self._count:
            super().load(entries)
            return
        self._check_bulk_capacity(entries)
        merged: Dict[Ipv6Prefix, RouteEntry] = {}
        for entry in entries:
            merged[entry.prefix] = entry
        for prefix, entry in merged.items():
            cls = self._class_for(prefix.length)
            cls.entries[prefix.network.value] = entry
        for cls in self._classes.values():
            cls.slots = _sized_slots(len(cls.entries), self.slots_per_entry)
            cls.counters = bytearray(cls.slots)
            for value in cls.entries:
                cls.filter_add(value, self.hash_count)
        self._count = len(merged)
        self._account_bulk_load(len(entries), len(merged))

    # -- hardware search model -------------------------------------------------

    def search_latency_cycles(self) -> int:
        return BLOOM_SEARCH_LATENCY_CYCLES

    # -- introspection ---------------------------------------------------------

    def table_memory_bytes(self) -> int:
        """On-chip footprint: the Bloom-filter bank at 4-bit hardware
        counters (the per-length hash tables live off-chip, like the
        CAM option's SRAM)."""
        return sum((cls.slots + 1) // 2 for cls in self._classes.values())

    # -- memory-state corruption seam ------------------------------------------
    #
    # Two sites:
    #
    # * ``bloom-filter`` — one record per length class (lengths
    #   descending): the class's whole counter vector. Flipping a bit
    #   that zeroes a counter a stored prefix hashes through creates a
    #   *false negative* — the filter now vetoes the off-chip probe and
    #   the lookup silently misses to a shorter prefix (the signature
    #   Bloom-bank SDC); flips that only raise counters merely cost
    #   false-positive steps.
    # * ``bloom-bucket`` — one record per stored entry (lengths
    #   descending, insertion order within a class): the 38-byte bucket
    #   payload, corrupted in place under its original hash key.

    def memory_sites(self) -> Tuple[str, ...]:
        return ("bloom-filter", "bloom-bucket")

    def _bucket_records(self) -> List[Tuple[_LengthClass, int]]:
        return [(cls, value)
                for length in self._lengths_desc
                if (cls := self._classes.get(length)) is not None
                for value in cls.entries]

    def memory_record_count(self, site: str) -> int:
        if site == "bloom-filter":
            return len(self._lengths_desc)
        if site == "bloom-bucket":
            return len(self._bucket_records())
        return super().memory_record_count(site)

    def memory_record(self, site: str, index: int) -> bytes:
        if site == "bloom-filter":
            self._check_memory_index(site, index, len(self._lengths_desc))
            cls = self._classes[self._lengths_desc[index]]
            return bytes(cls.counters)
        if site == "bloom-bucket":
            records = self._bucket_records()
            self._check_memory_index(site, index, len(records))
            cls, value = records[index]
            return pack_entry(cls.entries[value])
        return super().memory_record(site, index)

    def memory_records(self, site: str) -> List[bytes]:
        if site == "bloom-filter":
            return [bytes(self._classes[length].counters)
                    for length in self._lengths_desc]
        if site == "bloom-bucket":
            return [pack_entry(cls.entries[value])
                    for cls, value in self._bucket_records()]
        return super().memory_records(site)

    def corrupt_memory(self, site: str, index: int, bit: int) -> str:
        if site == "bloom-filter":
            self._check_memory_index(site, index, len(self._lengths_desc))
            cls = self._classes[self._lengths_desc[index]]
            cls.counters[bit // 8] ^= 1 << (bit % 8)
            return (f"bloom-filter[{index}] /{cls.length} "
                    f"counter {bit // 8} bit {bit % 8}")
        if site == "bloom-bucket":
            records = self._bucket_records()
            self._check_memory_index(site, index, len(records))
            cls, value = records[index]
            before = cls.entries[value].prefix
            cls.entries[value] = corrupt_entry(cls.entries[value], bit)
            return f"bloom-bucket[{index}] bit {bit} ({before})"
        return super().corrupt_memory(site, index, bit)

    def filter_info(self) -> "Dict[int, Tuple[int, int, int]]":
        """length -> (entries, filter slots, set counters) for tests and
        false-positive-rate reporting."""
        return {length: (len(cls.entries), cls.slots,
                         sum(1 for c in cls.counters if c))
                for length, cls in self._classes.items()}

    def check_invariants(self) -> None:
        """Raise if filter/table state diverged: every stored prefix must
        be filter-positive (no false negatives), counts must add up, and
        the probe order must be strictly descending."""
        total = 0
        for length, cls in self._classes.items():
            if not cls.entries:
                raise RoutingTableError(f"empty length class /{length}")
            total += len(cls.entries)
            for value in cls.entries:
                if not cls.filter_positive(value, self.hash_count):
                    raise RoutingTableError(
                        f"false negative for stored prefix at /{length}")
        if total != self._count:
            raise RoutingTableError(
                f"count {self._count} != stored {total}")
        if self._lengths_desc != sorted(self._classes, reverse=True):
            raise RoutingTableError("probe order diverged from classes")
