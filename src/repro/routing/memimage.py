"""Packed memory image of a stored route, and validation-free rebuild.

The routing structures model their resident state as 304-bit records
(network 128 + length 8 + next hop 128 + interface 16 + metric 8 +
route tag 16). The table-state fault injector
(:mod:`repro.faults.memory`) flips bits in this image and the
integrity wrapper (:mod:`repro.routing.protected`) computes its
parity/checksum words over it; both must agree on the layout, so it
lives here — a leaf module below every table implementation.

``unpack_entry_raw`` deliberately bypasses all constructor validation
(``object.__new__`` + slot assignment): a flipped prefix-length bit
yields a length of 203 that *exists silently in memory*, exactly like
real SRAM corruption, and fails — if ever — only when a lookup
evaluates ``mask()``/``contains()`` on it, which the hardened lookup
paths convert to a fail-stop ``RoutingTableError``.
"""

from __future__ import annotations

from repro.errors import FaultInjectionError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.routing.entry import RouteEntry

#: packed stored-route record layout (bytes, big-endian fields)
ENTRY_BYTES = 38
ENTRY_BITS = ENTRY_BYTES * 8


def pack_entry(entry: RouteEntry) -> bytes:
    """The 304-bit memory image of one stored route."""
    return (entry.prefix.network.value.to_bytes(16, "big")
            + bytes([entry.prefix.length & 0xFF])
            + entry.next_hop.value.to_bytes(16, "big")
            + (entry.interface & 0xFFFF).to_bytes(2, "big")
            + bytes([entry.metric & 0xFF])
            + (entry.route_tag & 0xFFFF).to_bytes(2, "big"))


def raw_address(value: int) -> Ipv6Address:
    """Construct an address without range validation (corruption path)."""
    address = object.__new__(Ipv6Address)
    address._value = value
    return address


def raw_prefix(network_value: int, length: int) -> Ipv6Prefix:
    """Construct a prefix without host-bit/length validation."""
    prefix = object.__new__(Ipv6Prefix)
    prefix._network = raw_address(network_value)
    prefix._length = length
    return prefix


def unpack_entry_raw(data: bytes) -> RouteEntry:
    """Rebuild a (possibly corrupted) route record without validation."""
    if len(data) != ENTRY_BYTES:
        raise FaultInjectionError(
            f"entry record must be {ENTRY_BYTES} bytes, got {len(data)}")
    entry = object.__new__(RouteEntry)
    object.__setattr__(entry, "prefix", raw_prefix(
        int.from_bytes(data[0:16], "big"), data[16]))
    object.__setattr__(entry, "next_hop",
                       raw_address(int.from_bytes(data[17:33], "big")))
    object.__setattr__(entry, "interface",
                       int.from_bytes(data[33:35], "big"))
    object.__setattr__(entry, "metric", data[35])
    object.__setattr__(entry, "route_tag",
                       int.from_bytes(data[36:38], "big"))
    return entry


def corrupt_entry(entry: RouteEntry, bit: int) -> RouteEntry:
    """*entry* with one bit of its packed memory image flipped."""
    if not 0 <= bit < ENTRY_BITS:
        raise FaultInjectionError(
            f"entry bit must be in [0, {ENTRY_BITS}), got {bit}")
    image = bytearray(pack_entry(entry))
    image[bit // 8] ^= 1 << (bit % 8)
    return unpack_entry_raw(bytes(image))


def flip_bit(data: bytes, bit: int) -> bytes:
    """*data* with *bit* (record-relative, LSB-first per byte) flipped."""
    if not 0 <= bit < len(data) * 8:
        raise FaultInjectionError(
            f"bit {bit} out of range for a {len(data)}-byte record")
    image = bytearray(data)
    image[bit // 8] ^= 1 << (bit % 8)
    return bytes(image)
