"""Routing-table entries and lookup results shared by all implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RoutingTableError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.ipv6.ripng import METRIC_INFINITY


@dataclass(frozen=True)
class RouteEntry:
    """One route: destination prefix, next hop, output interface, metric.

    *interface* is the index of the line card the datagram leaves on; a
    *next_hop* equal to the unspecified address means the destination is
    directly attached (deliver, don't relay).
    """

    prefix: Ipv6Prefix
    next_hop: Ipv6Address
    interface: int
    metric: int = 1
    route_tag: int = 0

    def __post_init__(self) -> None:
        if self.interface < 0:
            raise RoutingTableError(f"negative interface index: {self.interface}")
        if not 0 <= self.metric <= METRIC_INFINITY:
            raise RoutingTableError(f"metric out of range: {self.metric}")
        if not 0 <= self.route_tag <= 0xFFFF:
            raise RoutingTableError(f"route tag out of range: {self.route_tag}")

    def matches(self, address: Ipv6Address) -> bool:
        return self.prefix.contains(address)

    def is_directly_attached(self) -> bool:
        return self.next_hop.is_unspecified()

    def __str__(self) -> str:
        return (f"{self.prefix} via {self.next_hop} "
                f"dev {self.interface} metric {self.metric}")


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a longest-prefix-match lookup."""

    entry: RouteEntry
    steps: int
    """How many table elements the implementation examined — the quantity
    the per-implementation cycle models are built on (entries scanned for
    the sequential table, nodes visited for the tree, 1 for the CAM)."""

    @property
    def next_hop(self) -> Ipv6Address:
        return self.entry.next_hop

    @property
    def interface(self) -> int:
        return self.entry.interface

    @property
    def prefix_length(self) -> int:
        return self.entry.prefix.length


def more_specific(a: Optional[RouteEntry], b: Optional[RouteEntry]) -> Optional[RouteEntry]:
    """The better LPM candidate of two (longer prefix wins; ties keep *a*)."""
    if a is None:
        return b
    if b is None:
        return a
    return b if b.prefix.length > a.prefix.length else a
