"""Whole IPv6 datagrams: build, parse, validate, and the forwarding rewrite.

A :class:`Ipv6Datagram` owns the base header, the (possibly empty) extension
header chain, and the upper-layer payload. :func:`validate_for_forwarding`
encodes the checks the paper's router performs before consulting the routing
table ("check their validity for the right addressing and fields", §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from repro.errors import Ipv6Error
from repro.ipv6.address import Ipv6Address
from repro.ipv6.header import (
    BASE_HEADER_BYTES,
    ExtensionHeader,
    Ipv6Header,
    walk_extension_headers,
)


@dataclass(frozen=True)
class Ipv6Datagram:
    """A fully assembled IPv6 datagram, as a line card delivers it."""

    header: Ipv6Header
    extension_headers: Sequence[ExtensionHeader] = field(default_factory=tuple)
    payload: bytes = b""

    @classmethod
    def build(cls, source: Ipv6Address, destination: Ipv6Address,
              next_header: int, payload: bytes, hop_limit: int = 64,
              extension_headers: Sequence[ExtensionHeader] = (),
              traffic_class: int = 0, flow_label: int = 0) -> "Ipv6Datagram":
        """Assemble a datagram, computing payload length and chaining headers.

        *next_header* names the upper-layer protocol of *payload*; any
        extension headers are spliced in front of it automatically.
        """
        ext = tuple(extension_headers)
        ext_bytes = sum(e.length_octets for e in ext)
        total_payload = ext_bytes + len(payload)
        if total_payload > 0xFFFF:
            raise Ipv6Error(f"payload too long for IPv6: {total_payload}")
        first_protocol = ext[0].protocol if ext else next_header
        chained = []
        for i, e in enumerate(ext):
            following = ext[i + 1].protocol if i + 1 < len(ext) else next_header
            chained.append(ExtensionHeader(protocol=e.protocol,
                                           next_header=following, data=e.data))
        header = Ipv6Header(
            source=source, destination=destination,
            payload_length=total_payload, next_header=first_protocol,
            hop_limit=hop_limit, traffic_class=traffic_class,
            flow_label=flow_label,
        )
        return cls(header=header, extension_headers=tuple(chained), payload=payload)

    def to_bytes(self) -> bytes:
        parts = [self.header.to_bytes()]
        parts.extend(e.to_bytes() for e in self.extension_headers)
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv6Datagram":
        header = Ipv6Header.from_bytes(data)
        body = data[BASE_HEADER_BYTES:BASE_HEADER_BYTES + header.payload_length]
        if len(body) < header.payload_length:
            raise Ipv6Error(
                f"datagram truncated: payload length {header.payload_length}, "
                f"have {len(body)} bytes"
            )
        ext, _final_protocol, offset = walk_extension_headers(header.next_header, body)
        return cls(header=header, extension_headers=tuple(ext), payload=body[offset:])

    @property
    def upper_layer_protocol(self) -> int:
        """The protocol of the payload after any extension headers."""
        if self.extension_headers:
            return self.extension_headers[-1].next_header
        return self.header.next_header

    def total_length(self) -> int:
        return BASE_HEADER_BYTES + self.header.payload_length

    def forwarded(self) -> "Ipv6Datagram":
        """A copy with the hop limit decremented, as a router transmits it."""
        if self.header.hop_limit <= 1:
            raise Ipv6Error("hop limit exhausted; datagram must not be forwarded")
        return Ipv6Datagram(
            header=self.header.with_hop_limit(self.header.hop_limit - 1),
            extension_headers=self.extension_headers,
            payload=self.payload,
        )


class ValidationFailure(Enum):
    """Why a datagram was dropped (or punted) instead of forwarded."""

    BAD_VERSION = "bad-version"
    TRUNCATED = "truncated"
    HOP_LIMIT_EXCEEDED = "hop-limit-exceeded"
    UNSPECIFIED_SOURCE = "unspecified-source"
    MULTICAST_SOURCE = "multicast-source"
    LOOPBACK_DESTINATION = "loopback-destination"
    UNSPECIFIED_DESTINATION = "unspecified-destination"


def validate_for_forwarding(raw: bytes) -> Optional[ValidationFailure]:
    """Header checks a router applies before the routing-table lookup.

    Returns ``None`` when the datagram is forwardable, otherwise the first
    failure found. Mirrors RFC 2460 / RFC 4443 forwarding rules: version
    must be 6, the datagram must not be truncated, hop limit must allow one
    more hop, and degenerate source/destination addresses are rejected.
    """
    if len(raw) < BASE_HEADER_BYTES:
        return ValidationFailure.TRUNCATED
    if raw[0] >> 4 != 6:
        return ValidationFailure.BAD_VERSION
    payload_length = int.from_bytes(raw[4:6], "big")
    if len(raw) < BASE_HEADER_BYTES + payload_length:
        return ValidationFailure.TRUNCATED
    hop_limit = raw[7]
    if hop_limit <= 1:
        return ValidationFailure.HOP_LIMIT_EXCEEDED
    source = Ipv6Address.from_bytes(raw[8:24])
    destination = Ipv6Address.from_bytes(raw[24:40])
    if source.is_unspecified():
        return ValidationFailure.UNSPECIFIED_SOURCE
    if source.is_multicast():
        return ValidationFailure.MULTICAST_SOURCE
    if destination.is_unspecified():
        return ValidationFailure.UNSPECIFIED_DESTINATION
    if destination.is_loopback():
        return ValidationFailure.LOOPBACK_DESTINATION
    return None


def extension_header_chain(datagram: Ipv6Datagram) -> List[int]:
    """The protocol numbers along the header chain, ending at the payload."""
    chain = [datagram.header.next_header]
    for ext in datagram.extension_headers:
        chain.append(ext.next_header)
    return chain
