"""ICMPv6 (RFC 4443 subset, 2003-era RFC 2463 semantics).

The router emits Time Exceeded when a hop limit runs out and Destination
Unreachable (no route) when the longest-prefix match fails, so these two
messages plus Echo are modelled; anything else round-trips as a generic
message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChecksumError, Ipv6Error
from repro.ipv6.address import Ipv6Address
from repro.ipv6.checksum import transport_checksum, verify_transport_checksum
from repro.ipv6.header import PROTO_ICMPV6

ICMPV6_HEADER_BYTES = 4

TYPE_DESTINATION_UNREACHABLE = 1
TYPE_PACKET_TOO_BIG = 2
TYPE_TIME_EXCEEDED = 3
TYPE_PARAMETER_PROBLEM = 4
TYPE_ECHO_REQUEST = 128
TYPE_ECHO_REPLY = 129

CODE_NO_ROUTE = 0
CODE_HOP_LIMIT_EXCEEDED = 0

# RFC 4443 §2.4(c): error messages must not exceed the minimum IPv6 MTU.
MAX_ERROR_MESSAGE_BYTES = 1280


@dataclass(frozen=True)
class Icmpv6Message:
    """A generic ICMPv6 message: type, code, and the type-specific body."""

    type: int
    code: int
    body: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 0xFF:
            raise Ipv6Error(f"ICMPv6 type out of range: {self.type}")
        if not 0 <= self.code <= 0xFF:
            raise Ipv6Error(f"ICMPv6 code out of range: {self.code}")

    def is_error(self) -> bool:
        """Error messages have type < 128; informational ones >= 128."""
        return self.type < 128

    def to_bytes(self, source: Ipv6Address, destination: Ipv6Address) -> bytes:
        without_checksum = bytes([self.type, self.code, 0, 0]) + self.body
        checksum = transport_checksum(source, destination, PROTO_ICMPV6,
                                      without_checksum)
        return (without_checksum[:2] + checksum.to_bytes(2, "big")
                + without_checksum[4:])

    @classmethod
    def from_bytes(cls, data: bytes, source: Ipv6Address,
                   destination: Ipv6Address, verify: bool = True) -> "Icmpv6Message":
        if len(data) < ICMPV6_HEADER_BYTES:
            raise Ipv6Error(f"truncated ICMPv6 message: {len(data)} bytes")
        if verify and not verify_transport_checksum(source, destination,
                                                    PROTO_ICMPV6, data):
            raise ChecksumError("ICMPv6 checksum verification failed")
        return cls(type=data[0], code=data[1], body=bytes(data[4:]))


def _truncated_invoking_packet(invoking_datagram: bytes) -> bytes:
    """The invoking packet, truncated so the error fits the minimum MTU."""
    budget = MAX_ERROR_MESSAGE_BYTES - ICMPV6_HEADER_BYTES - 4 - 40
    return invoking_datagram[:budget]


def time_exceeded(invoking_datagram: bytes) -> Icmpv6Message:
    """Time Exceeded (hop limit) carrying as much of the packet as fits."""
    body = b"\x00\x00\x00\x00" + _truncated_invoking_packet(invoking_datagram)
    return Icmpv6Message(type=TYPE_TIME_EXCEEDED, code=CODE_HOP_LIMIT_EXCEEDED,
                         body=body)


def destination_unreachable(invoking_datagram: bytes,
                            code: int = CODE_NO_ROUTE) -> Icmpv6Message:
    """Destination Unreachable for a failed routing-table lookup."""
    body = b"\x00\x00\x00\x00" + _truncated_invoking_packet(invoking_datagram)
    return Icmpv6Message(type=TYPE_DESTINATION_UNREACHABLE, code=code, body=body)


def echo_request(identifier: int, sequence: int, data: bytes = b"") -> Icmpv6Message:
    if not 0 <= identifier <= 0xFFFF or not 0 <= sequence <= 0xFFFF:
        raise Ipv6Error("echo identifier/sequence out of range")
    body = identifier.to_bytes(2, "big") + sequence.to_bytes(2, "big") + data
    return Icmpv6Message(type=TYPE_ECHO_REQUEST, code=0, body=body)


def echo_reply_for(request: Icmpv6Message) -> Icmpv6Message:
    if request.type != TYPE_ECHO_REQUEST:
        raise Ipv6Error(f"not an echo request: type {request.type}")
    return Icmpv6Message(type=TYPE_ECHO_REPLY, code=0, body=request.body)
