"""UDP over IPv6 (RFC 768 + RFC 2460 §8.1). RIPng rides on UDP port 521."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChecksumError, Ipv6Error
from repro.ipv6.address import Ipv6Address
from repro.ipv6.checksum import transport_checksum, verify_transport_checksum
from repro.ipv6.header import PROTO_UDP

UDP_HEADER_BYTES = 8


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram (ports + payload); checksum handled at encode time."""

    source_port: int
    destination_port: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, port in (("source", self.source_port),
                           ("destination", self.destination_port)):
            if not 0 <= port <= 0xFFFF:
                raise Ipv6Error(f"{name} port out of range: {port}")
        if UDP_HEADER_BYTES + len(self.payload) > 0xFFFF:
            raise Ipv6Error("UDP payload too long")

    @property
    def length(self) -> int:
        return UDP_HEADER_BYTES + len(self.payload)

    def to_bytes(self, source: Ipv6Address, destination: Ipv6Address) -> bytes:
        """Encode with the mandatory (for IPv6) UDP checksum filled in."""
        without_checksum = (self.source_port.to_bytes(2, "big")
                            + self.destination_port.to_bytes(2, "big")
                            + self.length.to_bytes(2, "big")
                            + b"\x00\x00"
                            + self.payload)
        checksum = transport_checksum(source, destination, PROTO_UDP, without_checksum)
        return without_checksum[:6] + checksum.to_bytes(2, "big") + without_checksum[8:]

    @classmethod
    def from_bytes(cls, data: bytes, source: Ipv6Address,
                   destination: Ipv6Address, verify: bool = True) -> "UdpDatagram":
        if len(data) < UDP_HEADER_BYTES:
            raise Ipv6Error(f"truncated UDP header: {len(data)} bytes")
        length = int.from_bytes(data[4:6], "big")
        if length < UDP_HEADER_BYTES or length > len(data):
            raise Ipv6Error(f"bad UDP length field: {length}")
        checksum = int.from_bytes(data[6:8], "big")
        if verify:
            if checksum == 0:
                # RFC 2460 §8.1: a zero UDP checksum is illegal under IPv6.
                raise ChecksumError("UDP checksum of zero is invalid over IPv6")
            if not verify_transport_checksum(source, destination, PROTO_UDP,
                                             data[:length]):
                raise ChecksumError("UDP checksum verification failed")
        return cls(
            source_port=int.from_bytes(data[0:2], "big"),
            destination_port=int.from_bytes(data[2:4], "big"),
            payload=bytes(data[UDP_HEADER_BYTES:length]),
        )
