"""IPv6 protocol substrate: addresses, datagrams, UDP, ICMPv6, and RIPng.

This subpackage is a from-scratch implementation of the protocol machinery
the paper's router manipulates. It is pure data-plane code — the TACO
processor model in :mod:`repro.tta` operates on the byte images these
classes produce.
"""

from repro.ipv6.address import Ipv6Address, Ipv6Prefix, prefix_mask
from repro.ipv6.checksum import (
    internet_checksum,
    ones_complement_sum,
    transport_checksum,
    verify_transport_checksum,
)
from repro.ipv6.header import (
    BASE_HEADER_BYTES,
    PROTO_HOP_BY_HOP,
    PROTO_ICMPV6,
    PROTO_NO_NEXT_HEADER,
    PROTO_TCP,
    PROTO_UDP,
    ExtensionHeader,
    Ipv6Header,
)
from repro.ipv6.icmpv6 import Icmpv6Message, destination_unreachable, time_exceeded
from repro.ipv6.packet import Ipv6Datagram, ValidationFailure, validate_for_forwarding
from repro.ipv6.ripng import (
    RIPNG_MULTICAST_GROUP,
    RIPNG_PORT,
    METRIC_INFINITY,
    NextHopEntry,
    RipngMessage,
    RouteTableEntry,
)
from repro.ipv6.udp import UdpDatagram

__all__ = [
    "Ipv6Address", "Ipv6Prefix", "prefix_mask",
    "internet_checksum", "ones_complement_sum",
    "transport_checksum", "verify_transport_checksum",
    "BASE_HEADER_BYTES", "PROTO_HOP_BY_HOP", "PROTO_ICMPV6",
    "PROTO_NO_NEXT_HEADER", "PROTO_TCP", "PROTO_UDP",
    "ExtensionHeader", "Ipv6Header",
    "Icmpv6Message", "destination_unreachable", "time_exceeded",
    "Ipv6Datagram", "ValidationFailure", "validate_for_forwarding",
    "RIPNG_MULTICAST_GROUP", "RIPNG_PORT", "METRIC_INFINITY",
    "NextHopEntry", "RipngMessage", "RouteTableEntry",
    "UdpDatagram",
]
