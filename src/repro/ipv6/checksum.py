"""Internet checksum (RFC 1071) and the IPv6 pseudo-header (RFC 2460 §8.1).

IPv6 itself carries no header checksum, but upper-layer protocols carried by
the router's control traffic (UDP for RIPng, ICMPv6) checksum their payload
together with a pseudo-header. The TACO Checksum functional unit implements
the same ones'-complement accumulation word by word; this module is the
reference implementation it is tested against.
"""

from __future__ import annotations

from repro.ipv6.address import Ipv6Address


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Accumulate 16-bit big-endian words with end-around carry.

    Odd-length input is zero-padded on the right, per RFC 1071.
    Returns the 16-bit accumulated sum (not complemented).
    """
    total = initial & 0xFFFF
    if len(data) % 2:
        data = data + b"\x00"
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    # A final fold: the loop keeps the carry bounded but a straggler can remain.
    total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """The RFC 1071 checksum: complement of the ones'-complement sum."""
    return (~ones_complement_sum(data, initial)) & 0xFFFF


def pseudo_header(source: Ipv6Address, destination: Ipv6Address,
                  upper_layer_length: int, next_header: int) -> bytes:
    """The IPv6 pseudo-header prepended when checksumming UDP/ICMPv6."""
    if upper_layer_length < 0 or upper_layer_length > 0xFFFFFFFF:
        raise ValueError(f"upper-layer length out of range: {upper_layer_length}")
    if not 0 <= next_header <= 0xFF:
        raise ValueError(f"next header out of range: {next_header}")
    return (source.to_bytes()
            + destination.to_bytes()
            + upper_layer_length.to_bytes(4, "big")
            + b"\x00\x00\x00"
            + bytes([next_header]))


def transport_checksum(source: Ipv6Address, destination: Ipv6Address,
                       next_header: int, payload: bytes) -> int:
    """Checksum for an upper-layer payload under IPv6, pseudo-header included.

    Per RFC 2460 §8.1 / RFC 768: if UDP computes a checksum of zero it must
    transmit 0xFFFF instead (zero means "no checksum"). We apply the same
    substitution for all transports; it is a no-op for ICMPv6 in practice.
    """
    header = pseudo_header(source, destination, len(payload), next_header)
    checksum = internet_checksum(header + payload)
    return 0xFFFF if checksum == 0 else checksum


def verify_transport_checksum(source: Ipv6Address, destination: Ipv6Address,
                              next_header: int, payload_with_checksum: bytes) -> bool:
    """True when a received payload (checksum field in place) verifies.

    The ones'-complement sum over pseudo-header plus payload, including the
    transmitted checksum, must be 0xFFFF.
    """
    header = pseudo_header(source, destination, len(payload_with_checksum), next_header)
    return ones_complement_sum(header + payload_with_checksum) == 0xFFFF
