"""RIPng message codec (RFC 2080).

RIPng is the routing protocol the paper's router runs to build and maintain
its routing table ("an IPv6 router that uses the Routing Information
Protocol (RIPng)", §1). Messages are UDP datagrams on port 521, normally
multicast to ``ff02::9``. A message is a 4-byte header followed by 20-byte
route table entries (RTEs); a special RTE with metric 0xFF carries the next
hop for the RTEs that follow it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import RipngError
from repro.ipv6.address import Ipv6Address, Ipv6Prefix

RIPNG_PORT = 521
RIPNG_MULTICAST_GROUP = Ipv6Address.parse("ff02::9")

COMMAND_REQUEST = 1
COMMAND_RESPONSE = 2
RIPNG_VERSION = 1

METRIC_MIN = 1
METRIC_INFINITY = 16
NEXT_HOP_METRIC = 0xFF

RTE_BYTES = 20
HEADER_BYTES = 4

#: the most RTEs one message can carry without exceeding the minimum IPv6
#: MTU (RFC 2080 §2.1: 1280 bytes minus IPv6, UDP, and RIPng headers).
#: Senders split larger updates; receivers treat anything bigger as hostile.
MAX_RTES_PER_MESSAGE = (1280 - 40 - 8 - HEADER_BYTES) // RTE_BYTES

# RFC 2080 timer defaults (seconds). The paper notes stabilised-network
# updates arrive "once in 2 minutes"; the base RFC interval is 30 s with
# garbage collection after expiry — both are configurable in our engine.
UPDATE_INTERVAL_S = 30.0
ROUTE_TIMEOUT_S = 180.0
GARBAGE_COLLECTION_S = 120.0


@dataclass(frozen=True)
class RouteTableEntry:
    """One 20-byte RTE: prefix, route tag, prefix length, metric."""

    prefix: Ipv6Prefix
    metric: int
    route_tag: int = 0

    def __post_init__(self) -> None:
        if not METRIC_MIN <= self.metric <= METRIC_INFINITY:
            raise RipngError(f"metric out of range: {self.metric}")
        if not 0 <= self.route_tag <= 0xFFFF:
            raise RipngError(f"route tag out of range: {self.route_tag}")

    def to_bytes(self) -> bytes:
        return (self.prefix.network.to_bytes()
                + self.route_tag.to_bytes(2, "big")
                + bytes([self.prefix.length, self.metric]))


@dataclass(frozen=True)
class NextHopEntry:
    """The RTE variant (metric 0xFF) naming the next hop for following RTEs.

    An unspecified address (``::``) means "use the originator of the
    message" — the common case.
    """

    next_hop: Ipv6Address

    def to_bytes(self) -> bytes:
        return self.next_hop.to_bytes() + b"\x00\x00\x00" + bytes([NEXT_HOP_METRIC])


@dataclass(frozen=True)
class RipngMessage:
    """A full RIPng message: command plus an ordered entry list."""

    command: int
    entries: Sequence[object] = field(default_factory=tuple)  # RTE | NextHopEntry
    version: int = RIPNG_VERSION

    def __post_init__(self) -> None:
        if self.command not in (COMMAND_REQUEST, COMMAND_RESPONSE):
            raise RipngError(f"unknown RIPng command: {self.command}")
        if self.version != RIPNG_VERSION:
            raise RipngError(f"unsupported RIPng version: {self.version}")
        for entry in self.entries:
            if not isinstance(entry, (RouteTableEntry, NextHopEntry)):
                raise RipngError(f"invalid entry type: {type(entry).__name__}")

    def to_bytes(self) -> bytes:
        parts = [bytes([self.command, self.version, 0, 0])]
        parts.extend(e.to_bytes() for e in self.entries)  # type: ignore[union-attr]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RipngMessage":
        if len(data) < HEADER_BYTES:
            raise RipngError(f"truncated RIPng header: {len(data)} bytes")
        command, version = data[0], data[1]
        body = data[HEADER_BYTES:]
        if len(body) % RTE_BYTES:
            raise RipngError(
                f"RIPng body is not a whole number of RTEs: {len(body)} bytes")
        entries: List[object] = []
        for offset in range(0, len(body), RTE_BYTES):
            entries.append(_parse_entry(body[offset:offset + RTE_BYTES]))
        return cls(command=command, entries=tuple(entries), version=version)

    def routes(self) -> List[Tuple[RouteTableEntry, Optional[Ipv6Address]]]:
        """Pair each route RTE with its effective next hop (None = sender)."""
        current_next_hop: Optional[Ipv6Address] = None
        pairs: List[Tuple[RouteTableEntry, Optional[Ipv6Address]]] = []
        for entry in self.entries:
            if isinstance(entry, NextHopEntry):
                if entry.next_hop.is_unspecified():
                    current_next_hop = None
                else:
                    current_next_hop = entry.next_hop
            else:
                pairs.append((entry, current_next_hop))  # type: ignore[arg-type]
        return pairs


def _parse_entry(chunk: bytes) -> object:
    metric = chunk[19]
    if metric == NEXT_HOP_METRIC:
        if chunk[16:19] != b"\x00\x00\x00":
            raise RipngError("next-hop RTE has non-zero tag/length fields")
        return NextHopEntry(next_hop=Ipv6Address.from_bytes(chunk[0:16]))
    prefix_length = chunk[18]
    address = Ipv6Address.from_bytes(chunk[0:16])
    # Receivers must tolerate host bits below the prefix length (RFC 2080
    # says to ignore invalid entries; we normalise instead of rejecting).
    prefix = Ipv6Prefix.of(address, prefix_length) if prefix_length <= 128 else None
    if prefix is None:
        raise RipngError(f"invalid prefix length: {prefix_length}")
    return RouteTableEntry(
        prefix=prefix,
        route_tag=int.from_bytes(chunk[16:18], "big"),
        metric=metric,
    )


def request_full_table() -> RipngMessage:
    """The RFC 2080 §2.4.1 "send me everything" request: one RTE,
    prefix ::/0, metric infinity."""
    entry = RouteTableEntry(prefix=Ipv6Prefix.parse("::/0"),
                            metric=METRIC_INFINITY)
    return RipngMessage(command=COMMAND_REQUEST, entries=(entry,))


def response(entries: Sequence[RouteTableEntry]) -> RipngMessage:
    return RipngMessage(command=COMMAND_RESPONSE, entries=tuple(entries))


def is_full_table_request(message: RipngMessage) -> bool:
    if message.command != COMMAND_REQUEST or len(message.entries) != 1:
        return False
    entry = message.entries[0]
    return (isinstance(entry, RouteTableEntry)
            and entry.prefix.length == 0
            and entry.metric == METRIC_INFINITY)
