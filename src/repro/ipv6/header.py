"""IPv6 base header and extension headers (RFC 2460).

The base header is the fixed 40-byte structure every datagram starts with.
Extension headers are the reason the paper's router copies the *entire*
datagram into processor memory: "in IPv6 the IP header can be accompanied by
a variable number of extension headers that also have to be taken into
consideration" (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import Ipv6Error
from repro.ipv6.address import Ipv6Address

IPV6_VERSION = 6
BASE_HEADER_BYTES = 40

# IANA protocol numbers used in this library.
PROTO_HOP_BY_HOP = 0
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ROUTING = 43
PROTO_FRAGMENT = 44
PROTO_ICMPV6 = 58
PROTO_NO_NEXT_HEADER = 59
PROTO_DESTINATION_OPTIONS = 60

EXTENSION_HEADER_PROTOCOLS = frozenset({
    PROTO_HOP_BY_HOP, PROTO_ROUTING, PROTO_FRAGMENT, PROTO_DESTINATION_OPTIONS,
})


@dataclass(frozen=True)
class Ipv6Header:
    """The fixed IPv6 base header."""

    source: Ipv6Address
    destination: Ipv6Address
    payload_length: int
    next_header: int
    hop_limit: int
    traffic_class: int = 0
    flow_label: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.payload_length <= 0xFFFF:
            raise Ipv6Error(f"payload length out of range: {self.payload_length}")
        if not 0 <= self.next_header <= 0xFF:
            raise Ipv6Error(f"next header out of range: {self.next_header}")
        if not 0 <= self.hop_limit <= 0xFF:
            raise Ipv6Error(f"hop limit out of range: {self.hop_limit}")
        if not 0 <= self.traffic_class <= 0xFF:
            raise Ipv6Error(f"traffic class out of range: {self.traffic_class}")
        if not 0 <= self.flow_label <= 0xFFFFF:
            raise Ipv6Error(f"flow label out of range: {self.flow_label}")

    def to_bytes(self) -> bytes:
        first_word = ((IPV6_VERSION << 28)
                      | (self.traffic_class << 20)
                      | self.flow_label)
        return (first_word.to_bytes(4, "big")
                + self.payload_length.to_bytes(2, "big")
                + bytes([self.next_header, self.hop_limit])
                + self.source.to_bytes()
                + self.destination.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv6Header":
        if len(data) < BASE_HEADER_BYTES:
            raise Ipv6Error(f"truncated IPv6 header: {len(data)} bytes")
        first_word = int.from_bytes(data[0:4], "big")
        version = first_word >> 28
        if version != IPV6_VERSION:
            raise Ipv6Error(f"not an IPv6 datagram (version {version})")
        return cls(
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
            payload_length=int.from_bytes(data[4:6], "big"),
            next_header=data[6],
            hop_limit=data[7],
            source=Ipv6Address.from_bytes(data[8:24]),
            destination=Ipv6Address.from_bytes(data[24:40]),
        )

    def with_hop_limit(self, hop_limit: int) -> "Ipv6Header":
        """A copy with the hop limit replaced (the forwarding update)."""
        return Ipv6Header(
            source=self.source, destination=self.destination,
            payload_length=self.payload_length, next_header=self.next_header,
            hop_limit=hop_limit, traffic_class=self.traffic_class,
            flow_label=self.flow_label,
        )


@dataclass(frozen=True)
class ExtensionHeader:
    """A generic TLV-style extension header.

    All RFC 2460 extension headers except Fragment share the layout
    ``next_header (1) | hdr_ext_len (1) | data (6 + 8*hdr_ext_len)``;
    we model that shape and validate the length arithmetic.
    """

    protocol: int
    next_header: int
    data: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if self.protocol not in EXTENSION_HEADER_PROTOCOLS:
            raise Ipv6Error(f"not an extension-header protocol: {self.protocol}")
        if not 0 <= self.next_header <= 0xFF:
            raise Ipv6Error(f"next header out of range: {self.next_header}")
        if (len(self.data) + 2) % 8 != 0:
            raise Ipv6Error(
                f"extension header body must pad to a multiple of 8 bytes, "
                f"got {len(self.data) + 2}"
            )
        if len(self.data) + 2 > 8 * 256:
            raise Ipv6Error("extension header too long")

    @classmethod
    def padded(cls, protocol: int, next_header: int, data: bytes = b"") -> "ExtensionHeader":
        """Build with PadN-style zero padding up to the 8-byte boundary."""
        total = len(data) + 2
        pad = (-total) % 8
        return cls(protocol=protocol, next_header=next_header, data=data + b"\x00" * pad)

    @property
    def length_octets(self) -> int:
        return len(self.data) + 2

    def to_bytes(self) -> bytes:
        hdr_ext_len = (len(self.data) + 2) // 8 - 1
        return bytes([self.next_header, hdr_ext_len]) + self.data

    @classmethod
    def from_bytes(cls, protocol: int, data: bytes) -> Tuple["ExtensionHeader", int]:
        """Parse one extension header; returns (header, bytes consumed)."""
        if len(data) < 2:
            raise Ipv6Error("truncated extension header")
        next_header = data[0]
        total = (data[1] + 1) * 8
        if len(data) < total:
            raise Ipv6Error(f"extension header needs {total} bytes, have {len(data)}")
        return cls(protocol=protocol, next_header=next_header,
                   data=bytes(data[2:total])), total


def walk_extension_headers(first_protocol: int,
                           payload: bytes) -> Tuple[List[ExtensionHeader], int, int]:
    """Walk the extension-header chain at the front of a payload.

    Returns ``(headers, final_protocol, offset)`` where *offset* is where the
    upper-layer payload begins and *final_protocol* identifies it.
    """
    headers: List[ExtensionHeader] = []
    protocol = first_protocol
    offset = 0
    while protocol in EXTENSION_HEADER_PROTOCOLS:
        header, consumed = ExtensionHeader.from_bytes(protocol, payload[offset:])
        headers.append(header)
        offset += consumed
        protocol = header.next_header
        if len(headers) > 16:
            raise Ipv6Error("extension header chain too long (>16)")
    return headers, protocol, offset
