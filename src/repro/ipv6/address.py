"""IPv6 addresses and prefixes (RFC 4291 textual forms, RFC 2460 semantics).

Implemented from scratch rather than via :mod:`ipaddress` because the TACO
functional units operate on the raw 128-bit value split into 32-bit words;
this module is the single source of truth for that word-level view.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import Ipv6Error

ADDRESS_BITS = 128
WORD_BITS = 32
WORDS_PER_ADDRESS = ADDRESS_BITS // WORD_BITS
_MAX = (1 << ADDRESS_BITS) - 1


class Ipv6Address:
    """An immutable 128-bit IPv6 address.

    Construct from an integer, 16 bytes, or RFC 4291 text (including the
    ``::`` zero-compression form).
    """

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise Ipv6Error(f"address value must be int, got {type(value).__name__}")
        if not 0 <= value <= _MAX:
            raise Ipv6Error(f"address value out of 128-bit range: {value:#x}")
        self._value = value

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv6Address":
        if len(data) != 16:
            raise Ipv6Error(f"IPv6 address needs 16 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def from_groups(cls, groups: Iterable[int]) -> "Ipv6Address":
        """Build from eight 16-bit groups (the colon-separated fields)."""
        gs = list(groups)
        if len(gs) != 8:
            raise Ipv6Error(f"IPv6 address needs 8 groups, got {len(gs)}")
        value = 0
        for g in gs:
            if not 0 <= g <= 0xFFFF:
                raise Ipv6Error(f"group out of range: {g:#x}")
            value = (value << 16) | g
        return cls(value)

    @classmethod
    def from_words(cls, words: Iterable[int]) -> "Ipv6Address":
        """Build from four 32-bit words, most significant first.

        This is the representation the 32-bit TACO datapath uses.
        """
        ws = list(words)
        if len(ws) != WORDS_PER_ADDRESS:
            raise Ipv6Error(f"IPv6 address needs {WORDS_PER_ADDRESS} words, got {len(ws)}")
        value = 0
        for w in ws:
            if not 0 <= w <= 0xFFFFFFFF:
                raise Ipv6Error(f"word out of range: {w:#x}")
            value = (value << 32) | w
        return cls(value)

    @classmethod
    def parse(cls, text: str) -> "Ipv6Address":
        """Parse RFC 4291 text, e.g. ``2001:db8::1`` or ``::ffff:1.2.3.4``."""
        if not isinstance(text, str):
            raise Ipv6Error(f"cannot parse {type(text).__name__} as IPv6 address")
        text = text.strip()
        if text.count("::") > 1:
            raise Ipv6Error(f"more than one '::' in {text!r}")
        if ":::" in text:
            raise Ipv6Error(f"':::' is invalid in {text!r}")

        # RFC 4291 §2.2(3): a trailing dotted quad stands for two groups
        if "." in text:
            head, _, quad = text.rpartition(":")
            if not head:
                raise Ipv6Error(f"dotted quad needs a ':' prefix: {text!r}")
            octets = quad.split(".")
            if len(octets) != 4:
                raise Ipv6Error(f"bad dotted quad in {text!r}")
            try:
                values = [int(o) for o in octets]
            except ValueError:
                raise Ipv6Error(f"bad dotted quad in {text!r}") from None
            if any(not 0 <= v <= 255 for v in values):
                raise Ipv6Error(f"dotted quad octet out of range in {text!r}")
            groups_tail = (f"{(values[0] << 8) | values[1]:x}:"
                           f"{(values[2] << 8) | values[3]:x}")
            text = head + ":" + groups_tail

        if "::" in text:
            head_text, tail_text = text.split("::")
            head = cls._parse_groups(head_text)
            tail = cls._parse_groups(tail_text)
            missing = 8 - len(head) - len(tail)
            if missing < 1:
                raise Ipv6Error(f"'::' must replace at least one group in {text!r}")
            groups = head + [0] * missing + tail
        else:
            groups = cls._parse_groups(text)
            if len(groups) != 8:
                raise Ipv6Error(f"expected 8 groups in {text!r}, got {len(groups)}")
        return cls.from_groups(groups)

    @staticmethod
    def _parse_groups(text: str) -> List[int]:
        if not text:
            return []
        groups = []
        for part in text.split(":"):
            if not part:
                raise Ipv6Error(f"empty group in {text!r}")
            if len(part) > 4:
                raise Ipv6Error(f"group too long: {part!r}")
            try:
                groups.append(int(part, 16))
            except ValueError:
                raise Ipv6Error(f"invalid hex group: {part!r}") from None
        return groups

    # -- views -------------------------------------------------------------

    @property
    def value(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(16, "big")

    def groups(self) -> Tuple[int, ...]:
        """The eight 16-bit groups, most significant first."""
        return tuple((self._value >> (16 * (7 - i))) & 0xFFFF for i in range(8))

    def words(self) -> Tuple[int, int, int, int]:
        """The four 32-bit words, most significant first (TACO view)."""
        return tuple(  # type: ignore[return-value]
            (self._value >> (32 * (3 - i))) & 0xFFFFFFFF for i in range(4)
        )

    # -- classification (RFC 4291) ----------------------------------------

    def is_unspecified(self) -> bool:
        return self._value == 0

    def is_loopback(self) -> bool:
        return self._value == 1

    def is_multicast(self) -> bool:
        return (self._value >> 120) == 0xFF

    def is_link_local(self) -> bool:
        return (self._value >> 112) & 0xFFC0 == 0xFE80

    def is_ipv4_mapped(self) -> bool:
        """::ffff:0:0/96, the RFC 4291 §2.5.5.2 embedding."""
        return (self._value >> 32) == 0xFFFF

    def is_global_unicast(self) -> bool:
        return not (self.is_unspecified() or self.is_loopback() or
                    self.is_multicast() or self.is_link_local())

    # -- formatting --------------------------------------------------------

    def compressed(self) -> str:
        """RFC 5952-style text with the longest zero run compressed."""
        if self.is_ipv4_mapped():
            low = self._value & 0xFFFFFFFF
            return ("::ffff:" + ".".join(
                str((low >> shift) & 0xFF) for shift in (24, 16, 8, 0)))
        groups = self.groups()
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, g in enumerate(groups):
            if g == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len < 2:
            return ":".join(f"{g:x}" for g in groups)
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
        return f"{head}::{tail}"

    def exploded(self) -> str:
        return ":".join(f"{g:04x}" for g in self.groups())

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv6Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "Ipv6Address") -> bool:
        if isinstance(other, Ipv6Address):
            return self._value < other._value
        return NotImplemented

    def __le__(self, other: "Ipv6Address") -> bool:
        if isinstance(other, Ipv6Address):
            return self._value <= other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"Ipv6Address('{self.compressed()}')"

    def __str__(self) -> str:
        return self.compressed()


class Ipv6Prefix:
    """An IPv6 prefix ``address/length`` with host bits required to be zero."""

    __slots__ = ("_network", "_length")

    def __init__(self, network: Ipv6Address, length: int):
        if not 0 <= length <= ADDRESS_BITS:
            raise Ipv6Error(f"prefix length out of range: {length}")
        mask = prefix_mask(length)
        if network.value & ~mask & _MAX:
            raise Ipv6Error(
                f"host bits set in prefix {network}/{length}; "
                f"use Ipv6Prefix.of() to truncate"
            )
        self._network = network
        self._length = length

    @classmethod
    def of(cls, address: Ipv6Address, length: int) -> "Ipv6Prefix":
        """Build a prefix from any address by zeroing the host bits."""
        if not 0 <= length <= ADDRESS_BITS:
            raise Ipv6Error(f"prefix length out of range: {length}")
        return cls(Ipv6Address(address.value & prefix_mask(length)), length)

    @classmethod
    def parse(cls, text: str) -> "Ipv6Prefix":
        """Parse ``2001:db8::/32`` style text."""
        if "/" not in text:
            raise Ipv6Error(f"prefix needs '/length': {text!r}")
        addr_text, _, len_text = text.partition("/")
        try:
            length = int(len_text)
        except ValueError:
            raise Ipv6Error(f"invalid prefix length: {len_text!r}") from None
        return cls(Ipv6Address.parse(addr_text), length)

    @property
    def network(self) -> Ipv6Address:
        return self._network

    @property
    def length(self) -> int:
        return self._length

    def mask(self) -> int:
        return prefix_mask(self._length)

    def mask_words(self) -> Tuple[int, int, int, int]:
        """The 128-bit mask as four 32-bit words (TACO view)."""
        m = self.mask()
        return tuple((m >> (32 * (3 - i))) & 0xFFFFFFFF for i in range(4))  # type: ignore

    def contains(self, address: Ipv6Address) -> bool:
        return (address.value & self.mask()) == self._network.value

    def overlaps(self, other: "Ipv6Prefix") -> bool:
        short, long_ = (self, other) if self._length <= other._length else (other, self)
        return short.contains(long_.network)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv6Prefix):
            return (self._network, self._length) == (other._network, other._length)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._length))

    def __repr__(self) -> str:
        return f"Ipv6Prefix('{self}')"

    def __str__(self) -> str:
        return f"{self._network}/{self._length}"


def prefix_mask(length: int) -> int:
    """The 128-bit network mask for a prefix of the given length."""
    if not 0 <= length <= ADDRESS_BITS:
        raise Ipv6Error(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (_MAX >> (ADDRESS_BITS - length)) << (ADDRESS_BITS - length)
