#!/usr/bin/env python
"""RIPng in action: a ring of IPv6 routers converging and self-healing.

The paper's router "builds up the Routing Table by listening for specific
datagrams broadcasted by the adjacent routers" (§3). This example builds
a five-router ring, watches RIPng converge to shortest paths, cuts a
link, and watches the routes time out and heal the long way around.

Run:  python examples/ripng_network.py
"""

from repro.ipv6.address import Ipv6Prefix
from repro.reporting import render_rows
from repro.router import ring_topology


def metric_table(network, prefix):
    return [[name, network.route_metric(name, prefix)]
            for name in network.routers]


def main() -> None:
    network = ring_topology(5)
    probe = Ipv6Prefix.parse("2001:db8:0:1::/64")  # r0's first interface

    report = network.run_until_converged()
    print(f"converged in {report.rounds} rounds "
          f"({report.messages_delivered} RIPng datagrams)\n")
    print("distance to r0's subnet around the ring:")
    print(render_rows(["router", "metric"], metric_table(network, probe)))

    print("\ncutting the ring-closing link (r0 <-> r4)...")
    network.links[-1].up = False
    for _ in range(400):  # past route timeout + garbage collection
        network.step()

    print("after failure recovery (paths re-learned the long way):")
    print(render_rows(["router", "metric"], metric_table(network, probe)))

    r4_metric = network.route_metric("r4", probe)
    print(f"\nr4 now reaches r0 in {r4_metric} hops "
          f"(was 2 over the direct link)")


if __name__ == "__main__":
    main()
