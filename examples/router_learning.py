#!/usr/bin/env python
"""A TACO router that learns its routes: fast path + RIPng slow path.

The paper's processor both forwards datagrams and "takes care of building
and maintaining its routing table" (§3). This example runs that whole
loop: the generated TACO program punts a neighbour's RIPng announcement
to the control plane, the distance-vector engine installs the route, the
Routing Table Unit re-materialises its memory image, and the very next
datagram to the announced prefix leaves on the learned interface.

Run:  python examples/router_learning.py
"""

from repro.dse.config import ArchitectureConfiguration
from repro.ipv6.address import Ipv6Address, Ipv6Prefix
from repro.ipv6.header import PROTO_UDP
from repro.ipv6.packet import Ipv6Datagram
from repro.ipv6.ripng import (
    RIPNG_MULTICAST_GROUP,
    RIPNG_PORT,
    RouteTableEntry,
    response,
)
from repro.ipv6.udp import UdpDatagram
from repro.programs.forwarding import build_forwarding_program
from repro.programs.machine import build_machine
from repro.routing.entry import RouteEntry
from repro.tta.simulator import Simulator
from repro.workload import build_datagram

NEIGHBOUR = Ipv6Address.parse("fe80::beef")
PREFIX = Ipv6Prefix.parse("2001:bb::/32")
PROBE = Ipv6Address.parse("2001:bb::7")


def announcement(metric=2):
    entry = RouteTableEntry(prefix=PREFIX, metric=metric)
    udp = UdpDatagram(RIPNG_PORT, RIPNG_PORT, response([entry]).to_bytes())
    datagram = Ipv6Datagram.build(
        source=NEIGHBOUR, destination=RIPNG_MULTICAST_GROUP,
        next_header=PROTO_UDP,
        payload=udp.to_bytes(NEIGHBOUR, RIPNG_MULTICAST_GROUP),
        hop_limit=255)
    return datagram.to_bytes()


def drain(machine):
    program = build_forwarding_program(machine)
    machine.processor.reset()
    report = Simulator(machine.processor, program).run()
    return report


def main() -> None:
    machine = build_machine(ArchitectureConfiguration(
        bus_count=3, table_kind="balanced-tree"))
    machine.load_routes([RouteEntry(prefix=Ipv6Prefix.parse("::/0"),
                                    next_hop=Ipv6Address.parse("fe80::1"),
                                    interface=0)])
    machine.attach_ripng([Ipv6Address.parse(f"2001:db8:{i:x}::1")
                          for i in range(4)])

    print("1. before learning: probe datagram follows the default route")
    machine.offered_load(0, build_datagram(PROBE))
    drain(machine)
    print(f"   -> left on interface 0 "
          f"({len(machine.line_cards[0].transmitted)} datagram)\n")

    print(f"2. neighbour announces {PREFIX} (metric 2) on interface 2")
    machine.offered_load(2, announcement())
    report = drain(machine)
    print(f"   fast path punted it to the slow path in "
          f"{report.cycles} cycles")
    machine.process_punted(now=1.0)
    route = machine.table.lookup(PROBE)
    print(f"   control plane installed: {route.entry}\n")

    print("3. after learning: the same probe leaves on interface 2")
    machine.offered_load(0, build_datagram(PROBE))
    drain(machine)
    print(f"   -> interface 2 carried "
          f"{len(machine.line_cards[2].transmitted)} datagram(s)")
    print(f"   routing table now has {len(machine.table)} entries; the "
          f"RTU image was re-materialised in data memory")


if __name__ == "__main__":
    main()
