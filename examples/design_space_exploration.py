#!/usr/bin/env python
"""Design-space exploration: regenerate Table 1 and pick a design.

Runs the paper's §4 evaluation — nine architecture instances, each
simulated and physically estimated — then goes beyond it with the
automated explorer the paper names as future work: a 36-point space,
a Pareto front, and a constraint-based selection.

Run:  python examples/design_space_exploration.py
"""

from repro.dse import (
    DesignConstraints,
    DesignSpace,
    Evaluator,
    GreedyExplorer,
    generate_table1,
    pareto_front,
    render_table1,
    shape_checks,
)
from repro.reporting import render_rows


def main() -> None:
    evaluator = Evaluator(table_entries=100, packet_batch=10)

    print("=== Table 1 (paper) vs this reproduction ===")
    rows = generate_table1(evaluator)
    print(render_table1(rows))
    violations = shape_checks(rows)
    print(f"\nqualitative shape checks: "
          f"{'all passed' if not violations else violations}")

    print("\n=== Extension: automated exploration (paper future work) ===")
    space = DesignSpace(bus_counts=(1, 2, 3, 4), fu_set_counts=(1, 2, 3))
    constraints = DesignConstraints(max_power_w=25.0)
    explorer = GreedyExplorer(evaluator, constraints)
    outcome = explorer.explore(space)
    print(f"space: {space.size()} configurations; heuristic evaluated "
          f"{outcome.evaluations_used}")
    assert outcome.best is not None
    print(f"selected design: {outcome.best.summary()}")

    front = pareto_front(outcome.evaluated)
    table = [[r.config.describe(), round(r.required_clock_hz / 1e6),
              round(r.area_mm2, 1), round(r.power.system_w, 2)]
             for r in sorted(front, key=lambda r: r.required_clock_hz)]
    print("\nPareto front over (clock, area, system power):")
    print(render_rows(["design", "clock MHz", "area mm2", "power W"],
                      table))


if __name__ == "__main__":
    main()
