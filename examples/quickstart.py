#!/usr/bin/env python
"""Quickstart: build a TACO processor, write a program, simulate it.

Reproduces the paper's Figure 3 flow on the expression ``a = (b*2+c)/4``:
author sequential move IR, let the toolchain optimise and bus-schedule
it, and run it on the cycle-accurate TTA model — once on one bus, once
on three.

Run:  python examples/quickstart.py
"""

from repro.asm import ProgramBuilder, assemble, format_program
from repro.tta import (
    DataMemory,
    Interconnect,
    PortRef,
    RegisterFileUnit,
    TacoProcessor,
    simulate,
)
from repro.tta.fus import Counter, Shifter

P = PortRef


def build_expression_ir(b_value: int, c_value: int):
    """a = (b*2 + c) / 4 as naive sequential moves (Fig. 3, left side)."""
    b = ProgramBuilder()
    b.block("entry")
    b.move(b_value, P("gpr", "r1"))                # R1 = b
    b.move(c_value, P("gpr", "r3"))                # R3 = c
    b.move(1, P("shf0", "o"))
    b.move(P("gpr", "r1"), P("shf0", "t_sll"))     # Mul2(R1) -> shifter
    b.move(P("shf0", "r"), P("gpr", "r5"))         # R5 = b*2
    b.move(P("gpr", "r3"), P("cnt0", "o"))
    b.move(P("gpr", "r5"), P("cnt0", "t_add"))     # Add(R5, R3)
    b.move(P("cnt0", "r"), P("gpr", "r6"))         # R6 = b*2 + c
    b.move(2, P("shf0", "o"))
    b.move(P("gpr", "r6"), P("shf0", "t_srl"))     # Div4(R6)
    b.move(P("shf0", "r"), P("gpr", "r7"))         # R7 = a
    b.halt()
    return b.build()


def main() -> None:
    ir = build_expression_ir(b_value=7, c_value=10)
    temps = [P("gpr", f"r{i}") for i in (1, 3, 5, 6)]

    for buses in (1, 3):
        processor = TacoProcessor(
            Interconnect(bus_count=buses),
            [Counter("cnt0"), Shifter("shf0"), RegisterFileUnit("gpr", 8)],
            data_memory=DataMemory(64))

        naive = assemble(ir, processor, optimize_code=False)
        optimised = assemble(ir, processor, optimize_code=True,
                             temp_registers=temps)

        report_naive = simulate(processor, naive)
        report_opt = simulate(processor, optimised)
        a = processor.fu("gpr").ports["r7"].value

        print(f"== {buses} bus(es) ==")
        print(f"  a = (7*2 + 10)/4 = {a}")
        print(f"  naive:     {report_naive.moves_executed:2d} moves, "
              f"{report_naive.cycles:2d} cycles")
        print(f"  optimised: {report_opt.moves_executed:2d} moves, "
              f"{report_opt.cycles:2d} cycles "
              f"(bus utilisation {report_opt.bus_utilization * 100:.0f}%)")
        if buses == 3:
            print("\nOptimised 3-bus schedule (one instruction per cycle):")
            print(format_program(optimised))


if __name__ == "__main__":
    main()
