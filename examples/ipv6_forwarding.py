#!/usr/bin/env python
"""Forward real IPv6 datagrams through a TACO protocol processor.

Builds the paper's router around an architecture instance, loads a
100-entry routing table, offers a batch of synthetic IPv6 traffic to the
line cards, and lets the generated TACO forwarding program route every
datagram — cycle-accurately, with the ippu/oppu DMA engines moving the
bytes. Results are checked against the golden software router.

Run:  python examples/ipv6_forwarding.py
"""

from repro.dse.config import ArchitectureConfiguration
from repro.estimation.frequency import ThroughputConstraint
from repro.programs import run_forwarding
from repro.workload import forwarding_workload, generate_routes


def main() -> None:
    routes = generate_routes(100)
    packets = forwarding_workload(routes, 24, default_route_fraction=0.2)
    constraint = ThroughputConstraint()
    print(f"constraint: {constraint.describe()}")
    print(f"workload:   {len(packets)} datagrams over "
          f"{len(routes)}-entry table\n")

    for kind in ("sequential", "balanced-tree", "cam"):
        config = ArchitectureConfiguration(bus_count=3, table_kind=kind)
        result = run_forwarding(config, routes, packets)
        assert result.correct, result.mismatches
        clock = constraint.required_clock(result.cycles_per_packet)
        print(f"{config.describe()}")
        print(f"  {result.report.cycles} cycles total, "
              f"{result.cycles_per_packet:.1f} cycles/datagram")
        print(f"  bus utilisation {result.bus_utilization * 100:.0f}%, "
              f"forwarded {result.packets_forwarded}/"
              f"{result.packets_offered}")
        print(f"  -> minimum clock for 10 Gbps: {clock / 1e6:.0f} MHz\n")

    print("every datagram matched the golden software router bit-for-bit")


if __name__ == "__main__":
    main()
