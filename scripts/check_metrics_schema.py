#!/usr/bin/env python3
"""Validate the ``metrics`` section of an ``--output`` JSON document.

Usage::

    python scripts/check_metrics_schema.py table1.json [more.json ...]

Each document must carry a ``metrics`` key conforming to
``schemas/metrics.schema.json``. Uses ``jsonschema`` when it is
importable; otherwise falls back to a built-in validator covering the
schema subset the checked-in schema actually uses (type, required,
properties, additionalProperties, items, $ref into #/definitions), so CI
needs no extra dependency.
"""

from __future__ import annotations

import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "schemas", "metrics.schema.json")

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "boolean": bool,
}


def _validate(instance, schema, root, path="$"):
    """Minimal draft-07 subset validator; returns a list of error strings."""
    ref = schema.get("$ref")
    if ref is not None:
        target = root
        for part in ref.lstrip("#/").split("/"):
            target = target[part]
        return _validate(instance, target, root, path)
    errors = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if not isinstance(instance, python_type) or \
                (expected == "number" and isinstance(instance, bool)):
            return [f"{path}: expected {expected}, "
                    f"got {type(instance).__name__}"]
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in properties:
                errors.extend(_validate(value, properties[key], root,
                                        f"{path}.{key}"))
            elif isinstance(additional, dict):
                errors.extend(_validate(value, additional, root,
                                        f"{path}.{key}"))
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(_validate(item, schema["items"], root,
                                    f"{path}[{i}]"))
    return errors


#: (section, metric name, label name, definitions key) rows the
#: structural pass cannot express: every such label value must be in
#: the named enum
_LABEL_DOMAINS = (
    ("counters", "sdc_outcomes_total", "outcome", "sdc_outcome"),
    ("counters", "service_jobs_total", "state", "job_state"),
    ("counters", "service_cache_requests_total", "result", "cache_result"),
    ("counters", "tta_runs_total", "backend", "simulator_backend"),
    ("counters", "tta_cycles_total", "backend", "simulator_backend"),
    ("counters", "tta_moves_total", "backend", "simulator_backend"),
    ("gauges", "tta_cycles_per_second", "backend", "simulator_backend"),
    ("gauges", "tta_moves_per_second", "backend", "simulator_backend"),
    ("histograms", "tta_run_seconds", "backend", "simulator_backend"),
    ("counters", "simulator_fallback_total", "reason", "fallback_reason"),
    ("counters", "routing_lookups_total", "kind", "routing_table_kind"),
    ("counters", "routing_lookups_total", "outcome",
     "routing_lookup_outcome"),
    ("counters", "routing_lookup_steps_total", "kind", "routing_table_kind"),
    ("counters", "routing_updates_total", "kind", "routing_table_kind"),
    ("counters", "routing_updates_total", "op", "routing_update_op"),
    ("counters", "routing_update_steps_total", "kind", "routing_table_kind"),
    ("counters", "routing_corruption_detected_total", "kind",
     "routing_table_kind"),
    ("counters", "routing_corruption_detected_total", "protection",
     "protection"),
    ("counters", "routing_degraded_lookups_total", "kind",
     "routing_table_kind"),
    ("counters", "routing_degraded_lookups_total", "protection",
     "protection"),
    ("counters", "sdc_memory_injections_total", "memory_site",
     "memory_site"),
    ("counters", "sdc_memory_injections_total", "protection",
     "protection"),
)


def _check_outcome_labels(metrics: dict, schema: dict) -> list:
    """Domain-check enumerated label values against their definitions."""
    errors = []
    for section, metric_name, label, definition in _LABEL_DOMAINS:
        allowed = set(schema["definitions"][definition]["enum"])
        metric = metrics.get(section, {}).get(metric_name)
        if not isinstance(metric, dict):
            continue
        for i, entry in enumerate(metric.get("values", [])):
            value = entry.get("labels", {}).get(label)
            if value not in allowed:
                errors.append(
                    f"$.{section}.{metric_name}.values[{i}]: {label} "
                    f"{value!r} is not one of {sorted(allowed)}")
    return errors


def check(document_path: str, schema: dict) -> int:
    with open(document_path, encoding="utf-8") as handle:
        document = json.load(handle)
    metrics = document.get("metrics")
    if metrics is None:
        print(f"{document_path}: FAIL — no 'metrics' section")
        return 1
    try:
        import jsonschema
    except ImportError:
        errors = _validate(metrics, schema, schema)
    else:
        validator = jsonschema.Draft7Validator(schema)
        errors = [f"$.{'.'.join(map(str, e.absolute_path))}: {e.message}"
                  for e in validator.iter_errors(metrics)]
    errors.extend(_check_outcome_labels(metrics, schema))
    if errors:
        print(f"{document_path}: FAIL")
        for error in errors:
            print(f"  {error}")
        return 1
    counts = {section: len(metrics[section])
              for section in ("counters", "gauges", "histograms")}
    print(f"{document_path}: OK — "
          + ", ".join(f"{n} {kind}" for kind, n in counts.items()))
    return 0


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    return max(check(path, schema) for path in argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
