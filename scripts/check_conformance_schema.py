#!/usr/bin/env python3
"""Validate a ``conformance --output`` JSON document.

Usage::

    python scripts/check_conformance_schema.py conformance.json [...]

Each document must conform to ``schemas/conformance.schema.json``.
Structural validation reuses :mod:`check_metrics_schema`'s built-in
draft-07 subset validator (``jsonschema`` when importable), then domain
checks cover what the structural pass cannot express: every case status
is one of pass/fail/skip, the counts add up to the case list, and the
``passed`` flag agrees with the failure count.
"""

from __future__ import annotations

import json
import os
import sys

_SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _SCRIPTS_DIR)

from check_metrics_schema import _validate  # noqa: E402

SCHEMA_PATH = os.path.join(_SCRIPTS_DIR, os.pardir, "schemas",
                           "conformance.schema.json")


def _check_consistency(document: dict, schema: dict) -> list:
    errors = []
    allowed = set(schema["definitions"]["case_status"]["enum"])
    cases = document.get("cases", [])
    tally = {status: 0 for status in allowed}
    for i, case in enumerate(cases):
        status = case.get("status")
        if status not in allowed:
            errors.append(f"$.cases[{i}]: status {status!r} is not one "
                          f"of {sorted(allowed)}")
        else:
            tally[status] += 1
    counts = document.get("counts", {})
    for status in sorted(allowed):
        if counts.get(status) != tally[status]:
            errors.append(
                f"$.counts.{status}: {counts.get(status)!r} does not "
                f"match the {tally[status]} case(s) with that status")
    if document.get("passed") != (tally.get("fail", 0) == 0):
        errors.append(
            f"$.passed: {document.get('passed')!r} disagrees with "
            f"{tally.get('fail', 0)} failing case(s)")
    return errors


def check(document_path: str, schema: dict) -> int:
    with open(document_path, encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        import jsonschema
    except ImportError:
        errors = _validate(document, schema, schema)
    else:
        validator = jsonschema.Draft7Validator(schema)
        errors = [f"$.{'.'.join(map(str, e.absolute_path))}: {e.message}"
                  for e in validator.iter_errors(document)]
    if isinstance(document, dict):
        errors.extend(_check_consistency(document, schema))
    if errors:
        print(f"{document_path}: FAIL")
        for error in errors:
            print(f"  {error}")
        return 1
    counts = document.get("counts", {})
    extra = ", with replay section" if "replay" in document else ""
    print(f"{document_path}: OK — {len(document.get('cases', []))} cases "
          f"({counts.get('pass', 0)} pass, {counts.get('fail', 0)} fail, "
          f"{counts.get('skip', 0)} skip){extra}")
    return 0


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    return max(check(path, schema) for path in argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
