"""E6 — extension: parallel sweep speedup over a process pool.

The paper's pitch is *fast* evaluation of protocol-processor design
spaces; a sweep is embarrassingly parallel, so the obvious next speedup
is to fan it out over worker processes. This experiment sweeps the
paper's 12-configuration space with 1, 2 and 4 workers and reports the
wall-clock speedup curve, asserting at least 2x at 4 workers — while
also asserting the parallel artifact is byte-identical to the sequential
one (parallelism must never change the science).

The swept evaluator is *throttled*: each evaluation carries a fixed
sleep standing in for the large-table workloads (1000+ route entries)
where a single simulate+estimate turn takes seconds. Sleeps overlap
across worker processes exactly as real simulation time does, so the
measured curve reflects pool scaling even on single-core CI runners
where a CPU-bound sweep could never beat sequential. A second,
unthrottled measurement runs on hosts with enough cores and reports
(but does not assert) the CPU-bound curve.
"""

from __future__ import annotations

import os
import time
from functools import partial

import pytest

from repro.dse import (
    ArchitectureEvaluator,
    CampaignRunner,
    ParallelCampaignRunner,
    paper_space,
)

#: per-evaluation stand-in for heavy simulation time (seconds)
THROTTLE_SECONDS = 0.25

small_factory = partial(ArchitectureEvaluator, table_entries=20,
                        packet_batch=4)


class ThrottledEvaluator:
    """A real (small) evaluator plus a fixed per-evaluation delay."""

    def __init__(self):
        self.evaluator = small_factory()

    def evaluate(self, config, max_cycles=None):
        time.sleep(THROTTLE_SECONDS)
        return self.evaluator.evaluate(config, max_cycles=max_cycles)


def _sweep(factory, jobs, configs):
    """One timed sweep; returns (wall seconds, campaign)."""
    if jobs == 1:
        runner = CampaignRunner(factory())
    else:
        runner = ParallelCampaignRunner(factory, jobs=jobs, chunk_size=1)
    start = time.perf_counter()
    campaign = runner.run(configs)
    return time.perf_counter() - start, campaign


def _speedup_curve(factory, configs, worker_counts=(1, 2, 4)):
    times = {}
    renders = {}
    for jobs in worker_counts:
        times[jobs], campaign = _sweep(factory, jobs, configs)
        renders[jobs] = campaign.render()
        assert len(campaign.results) == len(configs)
    return times, renders


def test_parallel_speedup(benchmark):
    configs = paper_space().configurations()
    times, renders = benchmark.pedantic(
        _speedup_curve, args=(ThrottledEvaluator, configs),
        rounds=1, iterations=1)

    print("\nE6: parallel sweep wall clock "
          f"({len(configs)} configs, {THROTTLE_SECONDS:g} s throttle)")
    for jobs in sorted(times):
        print(f"  jobs={jobs}: {times[jobs]:6.2f} s  "
              f"(speedup {times[1] / times[jobs]:4.2f}x)")

    # parallelism never changes the science
    assert renders[2] == renders[1]
    assert renders[4] == renders[1]
    # the headline claim: >= 2x wall-clock speedup at 4 workers
    assert times[1] / times[4] >= 2.0, (
        f"expected >= 2x speedup at 4 workers, got "
        f"{times[1] / times[4]:.2f}x ({times})")


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="CPU-bound scaling needs >= 2 cores")
def test_parallel_speedup_cpu_bound():
    """Unthrottled curve on multi-core hosts: reported, not asserted
    (pool overhead can eat the gain on small per-evaluation costs)."""
    configs = paper_space().configurations()
    times, renders = _speedup_curve(small_factory, configs,
                                    worker_counts=(1, 2))
    print(f"\nE6 (cpu-bound): jobs=1 {times[1]:.2f} s, "
          f"jobs=2 {times[2]:.2f} s "
          f"(speedup {times[1] / times[2]:.2f}x)")
    assert renders[2] == renders[1]
