"""E10 — extension: campaign service recovery overhead and cache payoff.

The self-healing campaign service (`repro.service`) promises two things
with a measurable cost model: faults cost a bounded amount of extra wall
clock (re-probe + pool refill, not a restart from zero), and the
content-addressed evaluation cache makes a repeated plan almost free.
This experiment runs the same Table 1 plan through one service spool
three ways — clean and cold, with a worker killed and a cache record
corrupted on disk, and warm — and reports all three wall clocks. Every
run must produce the byte-identical journal records and rendered
artifact of a plain sequential sweep.
"""

from __future__ import annotations

import time

from repro.dse import CampaignRunner, Evaluator, config_key
from repro.faults import ChaosEvaluatorFactory, corrupt_file
from repro.service import CampaignService, SupervisionPolicy
from repro.service.jobs import normalise_plan, plan_configs

PLAN = {"kind": "table1", "entries": 60, "packets": 6}
SPEEDUP_FLOOR = 5.0


def _run(service, plan=PLAN):
    job_id = service.submit(plan)
    started = time.perf_counter()
    service.run_pending()
    return service.fetch(job_id), time.perf_counter() - started


def test_service_recovery_and_cache(benchmark, tmp_path):
    configs = plan_configs(normalise_plan(PLAN))
    baseline = CampaignRunner(Evaluator(
        table_entries=PLAN["entries"],
        packet_batch=PLAN["packets"])).run(configs)

    # clean cold run: the service's baseline cost over a bare sweep
    root = str(tmp_path / "svc")
    service = CampaignService(root, jobs=2, sleep_fn=lambda s: None)
    clean, clean_seconds = benchmark.pedantic(
        _run, args=(service,), rounds=1, iterations=1)
    assert clean["result"]["records"] == baseline.records
    assert clean["render"] == baseline.render()

    # faulted run against the same spool: corrupt one cache entry on
    # disk, and kill the worker that re-evaluates it — the one
    # configuration the cache can no longer serve
    victim = configs[0]
    corrupt_file(service.last_runner.cache.entry_path(config_key(victim)),
                 seed=3)
    faulted_service = CampaignService(
        root, jobs=2, sleep_fn=lambda s: None,
        supervision=SupervisionPolicy(backoff_base_seconds=0.0),
        evaluator_wrapper=lambda inner: ChaosEvaluatorFactory(
            inner, sentinel_dir=str(tmp_path / "sentinels"),
            kill_config=victim))
    faulted, faulted_seconds = _run(faulted_service)
    assert faulted["result"]["records"] == baseline.records
    assert faulted["render"] == baseline.render()
    assert faulted["service"]["worker_crashes"] >= 1
    assert faulted["service"]["cache_corrupt"] == 1
    # recovery is incremental: every undamaged entry is a cache hit, so
    # only the quarantined configuration is re-simulated
    assert faulted["service"]["cache_hits"] == len(configs) - 1

    # warm run: every record served from the (healed) cache
    warm, warm_seconds = _run(service)
    assert warm["result"]["records"] == baseline.records
    assert warm["render"] == baseline.render()
    assert warm["service"]["cache_hits"] == len(configs)
    assert clean_seconds >= SPEEDUP_FLOOR * warm_seconds

    print(f"\nE10: service wall clock over {len(configs)} configurations "
          f"(entries={PLAN['entries']}, packets={PLAN['packets']}):")
    print(f"  clean cold run   {clean_seconds:8.3f} s")
    print(f"  kill+corruption  {faulted_seconds:8.3f} s "
          f"({faulted_seconds / clean_seconds:.2f}x of clean; "
          f"crashes={faulted['service']['worker_crashes']}, "
          f"corrupt={faulted['service']['cache_corrupt']}, "
          f"shrinks={faulted['service']['pool_shrinks']})")
    print(f"  warm cache       {warm_seconds:8.3f} s "
          f"({clean_seconds / max(warm_seconds, 1e-9):.1f}x faster "
          f"than cold)")
