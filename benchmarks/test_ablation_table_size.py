"""A3 — ablation: required clock vs routing-table size.

The paper fixes 100 entries; this ablation sweeps the size and shows the
asymptotic separation driving its conclusions — the sequential scan's
required clock grows linearly, the balanced tree's logarithmically, and
the CAM's not at all. The fitted analytic model is cross-checked against
cycle-accurate simulation at every swept size.
"""

from __future__ import annotations

import pytest

from repro.dse.config import ArchitectureConfiguration
from repro.estimation.frequency import ThroughputConstraint
from repro.programs.cycle_model import (
    crossover_entries,
    fit_cycle_model,
    measure_cycles,
)
from repro.reporting import render_sweep

SIZES = (16, 40, 100, 220)


def sweep(kind):
    config = ArchitectureConfiguration(bus_count=3, table_kind=kind)
    model = fit_cycle_model(config, sizes=(22, 64), packets=5)
    points = []
    for size in SIZES:
        simulated = measure_cycles(config, size, packets=5, seed=31)
        predicted = model.predict(size)
        points.append((size, simulated, predicted))
    return model, points


def test_table_size_scaling(benchmark):
    constraint = ThroughputConstraint()
    series = {}
    models = {}
    for kind in ("sequential", "balanced-tree", "cam"):
        model, points = sweep(kind)
        models[kind] = model
        series[kind] = [(n, round(constraint.required_clock(sim) / 1e6))
                        for n, sim, _pred in points]
        # the analytic model tracks the simulator across the sweep
        for n, simulated, predicted in points:
            assert predicted == pytest.approx(simulated, rel=0.35), (kind, n)
    benchmark.pedantic(measure_cycles,
                       args=(ArchitectureConfiguration(
                           bus_count=3, table_kind="cam"), 100),
                       kwargs={"packets": 5}, rounds=1, iterations=1)
    print()
    print(render_sweep("required clock [MHz] vs table size (3 buses)",
                       "entries", series))

    seq = dict(series["sequential"])
    tree = dict(series["balanced-tree"])
    cam = dict(series["cam"])
    # linear vs logarithmic vs constant growth
    assert seq[220] > 4 * seq[16]
    assert tree[220] < 2.5 * tree[16]
    assert cam[220] == pytest.approx(cam[16], rel=0.1)

    # the tree overtakes the scan at small sizes already
    crossover = crossover_entries(models["sequential"],
                                  models["balanced-tree"])
    assert crossover is not None and crossover < 40
    print(f"\ntree beats sequential from {crossover} entries up")
