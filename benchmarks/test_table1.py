"""T1 — regenerate the paper's Table 1 (the headline experiment).

Nine rows: {sequential, balanced tree, CAM} x {1BUS/1FU, 3BUS/1FU,
3BUS/3CNT,3CMP,3M}: minimum clock for 10 Gbps with a 100-entry table,
bus utilisation, area, power. The benchmark times one full nine-row
regeneration (simulation + estimation); the assertions check the
qualitative shape the paper's §4 draws from the table.
"""

from __future__ import annotations

import pytest

from repro.dse import generate_table1, render_table1, shape_checks
from repro.estimation.technology import MAX_CLOCK_HZ


def test_table1_regeneration(benchmark, evaluator):
    rows = benchmark.pedantic(generate_table1, args=(evaluator,),
                              rounds=1, iterations=1)
    print()
    print(render_table1(rows))

    assert shape_checks(rows) == []
    by_key = {(r.paper.table_kind, r.paper.config_label): r for r in rows}

    # calibration anchor: sequential 1-bus sits at the paper's 6 GHz
    anchor = by_key[("sequential", "1BUS/1FU")]
    assert anchor.measured.required_clock_hz == \
        pytest.approx(6.0e9, rel=0.05)

    # every sequential configuration exceeds the 0.18um library: NA rows
    for label in ("1BUS/1FU", "3BUS/1FU"):
        row = by_key[("sequential", label)]
        assert not row.measured.feasible
        assert row.measured.area_mm2 is None

    # the balanced tree's multi-bus configurations are feasible...
    assert by_key[("balanced-tree", "3BUS/1FU")].measured.feasible
    # ...and land near the paper's 600 MHz
    assert by_key[("balanced-tree", "3BUS/1FU")].measured.required_clock_hz \
        == pytest.approx(600e6, rel=0.25)

    # every CAM configuration is comfortably feasible and low-power
    for label in ("1BUS/1FU", "3BUS/1FU", "3BUS/3CNT,3CMP,3M"):
        row = by_key[("cam", label)]
        assert row.measured.feasible
        assert row.measured.required_clock_hz < 0.5 * MAX_CLOCK_HZ
        assert row.measured.power_w < 2.0

    # §4: "Multiplying the number of functional units does not anymore
    # seem to offer considerable increase in routing table access
    # performance [with a CAM], instead it actually causes the power and
    # area requirements to increase."
    cam_bus = by_key[("cam", "3BUS/1FU")].measured
    cam_fu = by_key[("cam", "3BUS/3CNT,3CMP,3M")].measured
    assert cam_fu.required_clock_hz >= 0.9 * cam_bus.required_clock_hz
    assert cam_fu.area_mm2 > cam_bus.area_mm2
    assert cam_fu.power_w > cam_bus.power_w
