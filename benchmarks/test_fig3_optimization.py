"""F3 — the paper's Figure 3: TACO code optimisation.

Figure 3 shows ``a = (b*2 + c) / 4`` going from a naive move sequence
(with register-file temporaries) to TTA-optimised code via bypassing,
operand sharing, and dead-register elimination. We regenerate both code
versions, report transport (move) counts and cycle counts, and benchmark
the optimisation pipeline itself.
"""

from __future__ import annotations

from repro.asm import ProgramBuilder, assemble
from repro.reporting import render_rows
from repro.tta import (
    DataMemory,
    Interconnect,
    PortRef,
    RegisterFileUnit,
    TacoProcessor,
    simulate,
)
from repro.tta.fus import Counter, Shifter

P = PortRef
TEMPS = [P("gpr", f"r{i}") for i in (1, 3, 5, 6)]


def fig3_ir():
    b = ProgramBuilder()
    b.block("entry")
    b.move(7, P("gpr", "r1"))                      # R1 = b
    b.move(10, P("gpr", "r3"))                     # R3 = c
    b.move(1, P("shf0", "o"))
    b.move(P("gpr", "r1"), P("shf0", "t_sll"))     # Mul2(R1) -> R5
    b.move(P("shf0", "r"), P("gpr", "r5"))
    b.move(P("gpr", "r3"), P("cnt0", "o"))
    b.move(P("gpr", "r5"), P("cnt0", "t_add"))     # Add(R5, R3) -> R6
    b.move(P("cnt0", "r"), P("gpr", "r6"))
    b.move(2, P("shf0", "o"))
    b.move(P("gpr", "r6"), P("shf0", "t_srl"))     # Div4(R6) -> R7
    b.move(P("shf0", "r"), P("gpr", "r7"))
    b.halt()
    return b.build()


def make_processor(buses):
    return TacoProcessor(
        Interconnect(bus_count=buses),
        [Counter("cnt0"), Shifter("shf0"), RegisterFileUnit("gpr", 8)],
        data_memory=DataMemory(64))


def compile_both(buses):
    processor = make_processor(buses)
    unoptimised = assemble(fig3_ir(), processor, optimize_code=False)
    optimised = assemble(fig3_ir(), processor, optimize_code=True,
                         temp_registers=TEMPS)
    return processor, unoptimised, optimised


def test_fig3_code_optimization(benchmark):
    _, _, _ = benchmark.pedantic(compile_both, args=(3,),
                                 rounds=3, iterations=1)
    rows = []
    for buses in (1, 2, 3):
        processor, unoptimised, optimised = compile_both(buses)
        unopt_report = simulate(processor, unoptimised)
        assert processor.fu("gpr").ports["r7"].value == 6  # (7*2+10)/4
        unopt_moves = unopt_report.moves_executed
        opt_report = simulate(processor, optimised)
        assert processor.fu("gpr").ports["r7"].value == 6
        rows.append([f"{buses} bus", unopt_moves, unopt_report.cycles,
                     opt_report.moves_executed, opt_report.cycles])
    print()
    print(render_rows(["config", "moves (naive)", "cycles (naive)",
                       "moves (optimised)", "cycles (optimised)"], rows))

    # the optimised code moves strictly less data and finishes sooner
    for _config, unopt_moves, unopt_cycles, opt_moves, opt_cycles in rows:
        assert opt_moves < unopt_moves
        assert opt_cycles < unopt_cycles
    # bus scheduling alone also shortens the naive code (1 -> 3 buses)
    assert rows[2][2] < rows[0][2]
