"""Shared fixtures for the benchmark harness.

Every benchmark regenerates a table/figure/claim from the paper's
evaluation (see DESIGN.md §4 for the experiment index) and prints the
regenerated rows; run with ``-s`` to see them. Shape assertions guard the
qualitative conclusions; absolute cycle counts are reported, not asserted.
"""

from __future__ import annotations

import pytest

from repro.dse import Evaluator
from repro.workload import generate_routes, worst_case_workload


@pytest.fixture(scope="session")
def routes100():
    return generate_routes(100)


@pytest.fixture(scope="session")
def worst_packets(routes100):
    return worst_case_workload(routes100, 10)


@pytest.fixture(scope="session")
def evaluator(routes100, worst_packets):
    return Evaluator(routes=routes100, packets=worst_packets)
